//! Recall and precision accounting.
//!
//! Detections are timestamps returned by an application's classifier;
//! events are ground-truth intervals of the application's target kind. An
//! event is *recalled* when at least one detection falls within it (with
//! a small tolerance); a detection is a *true positive* when it falls
//! within some event. The paper calibrates all strategies to 100 % recall
//! where possible (§5) and reports recall separately for duty cycling
//! (Fig. 6).

use sidewinder_sensors::{EventKind, GroundTruth, Micros};

/// A recall/precision summary.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DetectionStats {
    /// Ground-truth events of the target kind.
    pub events: usize,
    /// Events with at least one matching detection.
    pub recalled: usize,
    /// Total detections produced.
    pub detections: usize,
    /// Detections that fall within an event (with tolerance).
    pub true_positives: usize,
}

impl DetectionStats {
    /// Matches `detections` against ground-truth events of any of
    /// `kinds`.
    ///
    /// `tolerance` expands each event interval on both sides before
    /// matching, absorbing classifier latency (windows report at their
    /// end) and label edge effects.
    pub fn match_events(
        ground_truth: &GroundTruth,
        kinds: &[EventKind],
        detections: &[Micros],
        tolerance: Micros,
    ) -> DetectionStats {
        let events: Vec<_> = kinds
            .iter()
            .flat_map(|&k| ground_truth.of_kind(k))
            .collect();
        let mut recalled = 0usize;
        for event in &events {
            let lo = event.start().saturating_sub(tolerance);
            let hi = event.end() + tolerance;
            if detections.iter().any(|&d| d >= lo && d < hi) {
                recalled += 1;
            }
        }
        let mut true_positives = 0usize;
        for &d in detections {
            let hit = events.iter().any(|event| {
                d >= event.start().saturating_sub(tolerance) && d < event.end() + tolerance
            });
            if hit {
                true_positives += 1;
            }
        }
        DetectionStats {
            events: events.len(),
            recalled,
            detections: detections.len(),
            true_positives,
        }
    }

    /// Recall in `[0, 1]`; 1.0 when there are no events to recall.
    pub fn recall(&self) -> f64 {
        if self.events == 0 {
            1.0
        } else {
            self.recalled as f64 / self.events as f64
        }
    }

    /// Precision in `[0, 1]`; 1.0 when there are no detections.
    pub fn precision(&self) -> f64 {
        if self.detections == 0 {
            1.0
        } else {
            self.true_positives as f64 / self.detections as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sidewinder_sensors::LabeledInterval;

    fn gt(intervals: &[(u64, u64)]) -> GroundTruth {
        intervals
            .iter()
            .map(|&(s, e)| {
                LabeledInterval::new(
                    EventKind::Headbutt,
                    Micros::from_secs(s),
                    Micros::from_secs(e),
                )
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn perfect_detection() {
        let truth = gt(&[(10, 11), (20, 21)]);
        let detections = [Micros::from_millis(10_500), Micros::from_millis(20_200)];
        let stats =
            DetectionStats::match_events(&truth, &[EventKind::Headbutt], &detections, Micros::ZERO);
        assert_eq!(stats.recall(), 1.0);
        assert_eq!(stats.precision(), 1.0);
        assert_eq!(stats.events, 2);
        assert_eq!(stats.true_positives, 2);
    }

    #[test]
    fn missed_event_reduces_recall() {
        let truth = gt(&[(10, 11), (20, 21)]);
        let detections = [Micros::from_millis(10_500)];
        let stats =
            DetectionStats::match_events(&truth, &[EventKind::Headbutt], &detections, Micros::ZERO);
        assert_eq!(stats.recall(), 0.5);
        assert_eq!(stats.precision(), 1.0);
    }

    #[test]
    fn false_positive_reduces_precision() {
        let truth = gt(&[(10, 11)]);
        let detections = [Micros::from_millis(10_500), Micros::from_secs(50)];
        let stats =
            DetectionStats::match_events(&truth, &[EventKind::Headbutt], &detections, Micros::ZERO);
        assert_eq!(stats.recall(), 1.0);
        assert_eq!(stats.precision(), 0.5);
    }

    #[test]
    fn tolerance_absorbs_latency() {
        let truth = gt(&[(10, 11)]);
        let late = [Micros::from_millis(11_800)];
        let strict =
            DetectionStats::match_events(&truth, &[EventKind::Headbutt], &late, Micros::ZERO);
        assert_eq!(strict.recall(), 0.0);
        let lenient = DetectionStats::match_events(
            &truth,
            &[EventKind::Headbutt],
            &late,
            Micros::from_secs(1),
        );
        assert_eq!(lenient.recall(), 1.0);
    }

    #[test]
    fn no_events_means_full_recall() {
        let truth = GroundTruth::new();
        let stats = DetectionStats::match_events(
            &truth,
            &[EventKind::Headbutt],
            &[Micros::from_secs(5)],
            Micros::ZERO,
        );
        assert_eq!(stats.recall(), 1.0);
        assert_eq!(stats.precision(), 0.0);
    }

    #[test]
    fn no_detections_means_full_precision() {
        let truth = gt(&[(10, 11)]);
        let stats = DetectionStats::match_events(&truth, &[EventKind::Headbutt], &[], Micros::ZERO);
        assert_eq!(stats.precision(), 1.0);
        assert_eq!(stats.recall(), 0.0);
    }

    #[test]
    fn only_matching_kind_counts() {
        let mut truth = gt(&[(10, 11)]);
        truth.push(
            LabeledInterval::new(
                EventKind::Walking,
                Micros::from_secs(30),
                Micros::from_secs(40),
            )
            .unwrap(),
        );
        let stats = DetectionStats::match_events(
            &truth,
            &[EventKind::Headbutt],
            &[Micros::from_secs(35)],
            Micros::ZERO,
        );
        // The detection inside the walking interval is a false positive
        // for the headbutt application.
        assert_eq!(stats.precision(), 0.0);
        assert_eq!(stats.events, 1);
    }
}
