//! Recall and precision accounting.
//!
//! Detections are timestamps returned by an application's classifier;
//! events are ground-truth intervals of the application's target kind. An
//! event is *recalled* when at least one detection falls within it (with
//! a small tolerance); a detection is a *true positive* when it falls
//! within some event. The paper calibrates all strategies to 100 % recall
//! where possible (§5) and reports recall separately for duty cycling
//! (Fig. 6).

use sidewinder_sensors::{EventKind, GroundTruth, Micros};

/// A recall/precision summary.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DetectionStats {
    /// Ground-truth events of the target kind.
    pub events: usize,
    /// Events with at least one matching detection.
    pub recalled: usize,
    /// Total detections produced.
    pub detections: usize,
    /// Detections that fall within an event (with tolerance).
    pub true_positives: usize,
}

impl DetectionStats {
    /// Matches `detections` against ground-truth events of any of
    /// `kinds`.
    ///
    /// `tolerance` expands each event interval on both sides before
    /// matching, absorbing classifier latency (windows report at their
    /// end) and label edge effects.
    pub fn match_events(
        ground_truth: &GroundTruth,
        kinds: &[EventKind],
        detections: &[Micros],
        tolerance: Micros,
    ) -> DetectionStats {
        let events: Vec<_> = kinds
            .iter()
            .flat_map(|&k| ground_truth.of_kind(k))
            .collect();
        let mut recalled = 0usize;
        for event in &events {
            let lo = event.start().saturating_sub(tolerance);
            let hi = event.end() + tolerance;
            if detections.iter().any(|&d| d >= lo && d < hi) {
                recalled += 1;
            }
        }
        let mut true_positives = 0usize;
        for &d in detections {
            let hit = events.iter().any(|event| {
                d >= event.start().saturating_sub(tolerance) && d < event.end() + tolerance
            });
            if hit {
                true_positives += 1;
            }
        }
        DetectionStats {
            events: events.len(),
            recalled,
            detections: detections.len(),
            true_positives,
        }
    }

    /// Recall in `[0, 1]`; 1.0 when there are no events to recall.
    pub fn recall(&self) -> f64 {
        if self.events == 0 {
            1.0
        } else {
            self.recalled as f64 / self.events as f64
        }
    }

    /// Precision in `[0, 1]`; 1.0 when there are no detections.
    pub fn precision(&self) -> f64 {
        if self.detections == 0 {
            1.0
        } else {
            self.true_positives as f64 / self.detections as f64
        }
    }
}

/// Counters accumulated while simulating under a fault schedule.
///
/// All zeros (the [`Default`]) means the run saw no faults — the invariant
/// the empty-schedule conformance tests pin.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultCounters {
    /// Wake/probe frame transfer attempts, including retries.
    pub frames_sent: u64,
    /// Attempts that arrived with a CRC mismatch and were discarded.
    pub frames_corrupted: u64,
    /// Attempts that never arrived (detected by timeout).
    pub frames_dropped: u64,
    /// Retransmissions issued after a corrupted or dropped attempt.
    pub frames_retried: u64,
    /// Frames abandoned after the retry budget was exhausted.
    pub frames_lost: u64,
    /// Hub watchdog resets taken.
    pub hub_resets: u64,
    /// Program re-downloads performed after resets.
    pub redownloads: u64,
    /// Sensor samples the hub never saw (downtime or channel dropout).
    pub samples_dropped: u64,
    /// Time spent in the degraded duty-cycling fallback.
    pub degraded_time: Micros,
    /// Phone-side time spent on recovery work (backoff waits, probes,
    /// retransmissions, re-downloads) — charged at awake power.
    pub recovery_time: Micros,
}

impl FaultCounters {
    /// Whether the run completed without any fault activity.
    pub fn is_clean(&self) -> bool {
        *self == FaultCounters::default()
    }

    /// Accumulates another run's counters into this one.
    pub fn merge(&mut self, other: &FaultCounters) {
        self.frames_sent += other.frames_sent;
        self.frames_corrupted += other.frames_corrupted;
        self.frames_dropped += other.frames_dropped;
        self.frames_retried += other.frames_retried;
        self.frames_lost += other.frames_lost;
        self.hub_resets += other.hub_resets;
        self.redownloads += other.redownloads;
        self.samples_dropped += other.samples_dropped;
        self.degraded_time += other.degraded_time;
        self.recovery_time += other.recovery_time;
    }

    /// Seconds spent in the degraded fallback.
    pub fn degraded_s(&self) -> f64 {
        self.degraded_time.as_secs_f64()
    }

    /// Energy attributable to recovery, in millijoules, at the given
    /// awake power draw.
    pub fn recovery_energy_mj(&self, awake_power_mw: f64) -> f64 {
        awake_power_mw * self.recovery_time.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sidewinder_sensors::LabeledInterval;

    #[test]
    fn fault_counters_default_is_clean_and_merge_accumulates() {
        let mut a = FaultCounters::default();
        assert!(a.is_clean());
        let b = FaultCounters {
            frames_sent: 3,
            frames_corrupted: 1,
            frames_retried: 1,
            hub_resets: 2,
            degraded_time: Micros::from_secs(5),
            recovery_time: Micros::from_millis(400),
            ..FaultCounters::default()
        };
        assert!(!b.is_clean());
        a.merge(&b);
        a.merge(&b);
        assert_eq!(a.frames_sent, 6);
        assert_eq!(a.hub_resets, 4);
        assert_eq!(a.degraded_s(), 10.0);
        // 0.8 s of recovery at 323 mW.
        assert!((a.recovery_energy_mj(323.0) - 258.4).abs() < 1e-9);
    }

    fn gt(intervals: &[(u64, u64)]) -> GroundTruth {
        intervals
            .iter()
            .map(|&(s, e)| {
                LabeledInterval::new(
                    EventKind::Headbutt,
                    Micros::from_secs(s),
                    Micros::from_secs(e),
                )
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn perfect_detection() {
        let truth = gt(&[(10, 11), (20, 21)]);
        let detections = [Micros::from_millis(10_500), Micros::from_millis(20_200)];
        let stats =
            DetectionStats::match_events(&truth, &[EventKind::Headbutt], &detections, Micros::ZERO);
        assert_eq!(stats.recall(), 1.0);
        assert_eq!(stats.precision(), 1.0);
        assert_eq!(stats.events, 2);
        assert_eq!(stats.true_positives, 2);
    }

    #[test]
    fn missed_event_reduces_recall() {
        let truth = gt(&[(10, 11), (20, 21)]);
        let detections = [Micros::from_millis(10_500)];
        let stats =
            DetectionStats::match_events(&truth, &[EventKind::Headbutt], &detections, Micros::ZERO);
        assert_eq!(stats.recall(), 0.5);
        assert_eq!(stats.precision(), 1.0);
    }

    #[test]
    fn false_positive_reduces_precision() {
        let truth = gt(&[(10, 11)]);
        let detections = [Micros::from_millis(10_500), Micros::from_secs(50)];
        let stats =
            DetectionStats::match_events(&truth, &[EventKind::Headbutt], &detections, Micros::ZERO);
        assert_eq!(stats.recall(), 1.0);
        assert_eq!(stats.precision(), 0.5);
    }

    #[test]
    fn tolerance_absorbs_latency() {
        let truth = gt(&[(10, 11)]);
        let late = [Micros::from_millis(11_800)];
        let strict =
            DetectionStats::match_events(&truth, &[EventKind::Headbutt], &late, Micros::ZERO);
        assert_eq!(strict.recall(), 0.0);
        let lenient = DetectionStats::match_events(
            &truth,
            &[EventKind::Headbutt],
            &late,
            Micros::from_secs(1),
        );
        assert_eq!(lenient.recall(), 1.0);
    }

    #[test]
    fn no_events_means_full_recall() {
        let truth = GroundTruth::new();
        let stats = DetectionStats::match_events(
            &truth,
            &[EventKind::Headbutt],
            &[Micros::from_secs(5)],
            Micros::ZERO,
        );
        assert_eq!(stats.recall(), 1.0);
        assert_eq!(stats.precision(), 0.0);
    }

    #[test]
    fn no_detections_means_full_precision() {
        let truth = gt(&[(10, 11)]);
        let stats = DetectionStats::match_events(&truth, &[EventKind::Headbutt], &[], Micros::ZERO);
        assert_eq!(stats.precision(), 1.0);
        assert_eq!(stats.recall(), 0.0);
    }

    #[test]
    fn only_matching_kind_counts() {
        let mut truth = gt(&[(10, 11)]);
        truth.push(
            LabeledInterval::new(
                EventKind::Walking,
                Micros::from_secs(30),
                Micros::from_secs(40),
            )
            .unwrap(),
        );
        let stats = DetectionStats::match_events(
            &truth,
            &[EventKind::Headbutt],
            &[Micros::from_secs(35)],
            Micros::ZERO,
        );
        // The detection inside the walking interval is a false positive
        // for the headbutt application.
        assert_eq!(stats.precision(), 0.0);
        assert_eq!(stats.events, 1);
    }
}
