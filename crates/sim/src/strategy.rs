//! The sensing configurations under evaluation (paper §4.2).

use sidewinder_ir::Program;
use sidewinder_sensors::Micros;

/// A sensing strategy: how the phone decides when to be awake.
#[derive(Debug, Clone, PartialEq)]
pub enum Strategy {
    /// The phone never sleeps; the application sees everything.
    AlwaysAwake,
    /// Wake at fixed intervals, sample for the awake chunk (4 s in the
    /// paper), stay awake in 4 s extensions while events are being
    /// detected, then sleep for `sleep`.
    DutyCycle {
        /// Sleep interval between awake chunks (the paper sweeps 2, 5,
        /// 10, 20, 30 s).
        sleep: Micros,
    },
    /// Like duty cycling, but a low-power hub caches sensor data while
    /// the phone sleeps, so the application processes the entire batch on
    /// each wake-up: perfect recall, delayed detection, hub power added.
    Batching {
        /// Interval between batch deliveries.
        interval: Micros,
        /// Hub power, mW (the paper uses the MSP430 at 3.6 mW).
        hub_mw: f64,
    },
    /// A hub-resident wake-up condition: Predefined Activity and
    /// Sidewinder both take this form, differing in the program and the
    /// microcontroller it needs.
    HubWake {
        /// The intermediate-language wake-up condition.
        program: Program,
        /// Hub power, mW.
        hub_mw: f64,
        /// Display label (`"PA"` or `"Sw"`).
        label: &'static str,
    },
    /// [`Strategy::HubWake`] hardened for faulty hardware: while the hub
    /// is down (watchdog reset, brown-out) or the link has blown through
    /// its retry budget, the phone falls back to duty-cycling on the main
    /// CPU so wake conditions keep firing — late and at higher energy —
    /// instead of never.
    HubWakeDegraded {
        /// The intermediate-language wake-up condition.
        program: Program,
        /// Hub power, mW.
        hub_mw: f64,
        /// Display label (e.g. `"Sw+"`).
        label: &'static str,
        /// Sleep interval of the duty-cycle fallback while degraded.
        fallback_sleep: Micros,
    },
    /// The hypothetical ideal: awake exactly during events of interest,
    /// perfect recall and precision, no hub (paper §4.2).
    Oracle,
}

impl Strategy {
    /// Short label used in figures (AA, DC-10, Ba-10, PA, Sw, Oracle).
    pub fn label(&self) -> String {
        match self {
            Strategy::AlwaysAwake => "AA".to_string(),
            Strategy::DutyCycle { sleep } => {
                format!("DC-{}", sleep.as_secs_f64().round() as u64)
            }
            Strategy::Batching { interval, .. } => {
                format!("Ba-{}", interval.as_secs_f64().round() as u64)
            }
            Strategy::HubWake { label, .. } | Strategy::HubWakeDegraded { label, .. } => {
                (*label).to_string()
            }
            Strategy::Oracle => "Oracle".to_string(),
        }
    }

    /// The hub draw this strategy adds, mW.
    pub fn hub_mw(&self) -> f64 {
        match self {
            Strategy::Batching { hub_mw, .. }
            | Strategy::HubWake { hub_mw, .. }
            | Strategy::HubWakeDegraded { hub_mw, .. } => *hub_mw,
            _ => 0.0,
        }
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_figure_conventions() {
        assert_eq!(Strategy::AlwaysAwake.label(), "AA");
        assert_eq!(
            Strategy::DutyCycle {
                sleep: Micros::from_secs(10)
            }
            .label(),
            "DC-10"
        );
        assert_eq!(
            Strategy::Batching {
                interval: Micros::from_secs(10),
                hub_mw: 3.6
            }
            .label(),
            "Ba-10"
        );
        assert_eq!(Strategy::Oracle.label(), "Oracle");
        assert_eq!(Strategy::Oracle.to_string(), "Oracle");
    }

    #[test]
    fn degraded_variant_reports_label_and_hub_power() {
        let s = Strategy::HubWakeDegraded {
            program: Program::new(),
            hub_mw: 3.6,
            label: "Sw+",
            fallback_sleep: Micros::from_secs(10),
        };
        assert_eq!(s.label(), "Sw+");
        assert_eq!(s.hub_mw(), 3.6);
    }

    #[test]
    fn hub_power_only_for_hub_strategies() {
        assert_eq!(Strategy::AlwaysAwake.hub_mw(), 0.0);
        assert_eq!(Strategy::Oracle.hub_mw(), 0.0);
        assert_eq!(
            Strategy::Batching {
                interval: Micros::from_secs(10),
                hub_mw: 3.6
            }
            .hub_mw(),
            3.6
        );
    }
}
