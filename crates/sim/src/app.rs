//! The application interface the simulator drives.

use sidewinder_ir::Program;
use sidewinder_sensors::{EventKind, Micros, SensorTrace};

/// A continuous-sensing application as the simulator sees it: the event
/// it cares about, its main-CPU classifier, and its hub wake-up
/// condition.
///
/// The six evaluation applications of the paper (§3.7) implement this in
/// `sidewinder-apps`.
pub trait Application {
    /// Application name for reports (e.g. `"steps"`).
    fn name(&self) -> &str;

    /// The ground-truth event kinds this application detects (the
    /// transitions application targets both `SitToStand` and
    /// `StandToSit`).
    fn target_kinds(&self) -> Vec<EventKind>;

    /// Runs the full-quality main-CPU classifier over the trace data
    /// visible in `[start, end)` and returns detection timestamps.
    ///
    /// This is the "high recall *and* high precision" second stage of the
    /// paper's pipeline structure (§2): it only runs while the phone is
    /// awake, on whatever data the strategy makes visible.
    fn classify(&self, trace: &SensorTrace, start: Micros, end: Micros) -> Vec<Micros>;

    /// The Sidewinder wake-up condition for this application, compiled to
    /// the intermediate language.
    fn wake_condition(&self) -> Program;

    /// Hub always-on power (mW) for the wake condition: the cheapest
    /// microcontroller that can run it in real time.
    fn wake_condition_hub_mw(&self) -> f64;
}

/// Blanket impl so `&A` works wherever an `Application` is expected.
impl<A: Application + ?Sized> Application for &A {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn target_kinds(&self) -> Vec<EventKind> {
        (**self).target_kinds()
    }
    fn classify(&self, trace: &SensorTrace, start: Micros, end: Micros) -> Vec<Micros> {
        (**self).classify(trace, start, end)
    }
    fn wake_condition(&self) -> Program {
        (**self).wake_condition()
    }
    fn wake_condition_hub_mw(&self) -> f64 {
        (**self).wake_condition_hub_mw()
    }
}
