//! The trace-driven simulation engine.
//!
//! [`simulate`] replays one trace through one application under one
//! strategy and produces the quantities the paper reports (§4.3): "the
//! amount of sleep and awake time, the total number of wake-up events,
//! and the recall and precision of the application", plus the average
//! power estimated from the Table 1 model.

use crate::app::Application;
use crate::intervals::IntervalSet;
use crate::metrics::{DetectionStats, FaultCounters};
use crate::power::{PhonePowerProfile, PowerBreakdown};
use crate::strategy::Strategy;
use sidewinder_hub::fault::{
    FaultSchedule, FrameFate, HUB_REBOOT_TIME, PROBE_FRAME_BYTES, WAKE_FRAME_BYTES,
};
use sidewinder_hub::link::SerialLink;
use sidewinder_hub::runtime::{ChannelRates, HubRuntime};
use sidewinder_hub::{HubError, Sample};
use sidewinder_ir::Program;
use sidewinder_obs::{Event, EventSink, FrameOutcome, NullSink};
use sidewinder_sensors::{Micros, SensorChannel, SensorTrace};

/// Tunable simulation constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// How long the phone stays awake per wake-up to sample and process
    /// (the paper uses 4 s chunks for duty cycling).
    pub awake_chunk: Micros,
    /// How long the phone stays awake after a *hub* wake-up: the hub
    /// hands over a buffer of already-collected data, so processing is
    /// brief; sustained events keep producing wake-ups that merge into a
    /// continuous awake span.
    pub hub_chunk: Micros,
    /// How much buffered raw data the hub hands to the application on a
    /// wake-up (§3.8 "our current implementation passes a buffer of raw
    /// sensor data").
    pub lookback: Micros,
    /// Awake periods closer than this merge into one (the phone cannot
    /// complete a sleep/wake round trip faster than the two 1 s
    /// transitions).
    pub merge_gap: Micros,
    /// Tolerance when matching detections to ground-truth events.
    pub match_tolerance: Micros,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            awake_chunk: Micros::from_secs(4),
            hub_chunk: Micros::from_millis(500),
            lookback: Micros::from_secs(4),
            merge_gap: Micros::from_secs(2),
            match_tolerance: Micros::from_secs(2),
        }
    }
}

/// Simulation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The hub rejected or failed to execute the wake-up condition.
    Hub(HubError),
    /// The trace lacks a channel the wake-up condition reads.
    MissingChannel(sidewinder_sensors::SensorChannel),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Hub(e) => write!(f, "hub failure: {e}"),
            SimError::MissingChannel(c) => {
                write!(f, "trace does not record channel {c}")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<HubError> for SimError {
    fn from(e: HubError) -> Self {
        SimError::Hub(e)
    }
}

/// The outcome of one simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Strategy label (AA, DC-10, …).
    pub strategy: String,
    /// Application name.
    pub app: String,
    /// Trace name.
    pub trace: String,
    /// Time spent per phone state.
    pub breakdown: PowerBreakdown,
    /// Average power, mW, under the profile used.
    pub average_power_mw: f64,
    /// Number of disjoint awake periods (wake-up events).
    pub wake_ups: usize,
    /// Recall/precision against ground truth.
    pub stats: DetectionStats,
    /// De-duplicated detection timestamps.
    pub detections: Vec<Micros>,
    /// Per-detection discovery delay: how long after the event appeared
    /// in the data the application actually processed it. Zero for live
    /// strategies; up to one interval for batching — the paper's §5.4
    /// timeliness objection.
    pub discovery_delays: Vec<Micros>,
    /// Fault activity during the run; all zeros for fault-free runs.
    pub fault: FaultCounters,
}

impl SimResult {
    /// Recall shorthand.
    pub fn recall(&self) -> f64 {
        self.stats.recall()
    }

    /// Precision shorthand.
    pub fn precision(&self) -> f64 {
        self.stats.precision()
    }

    /// Mean discovery delay in seconds (zero when every detection was
    /// processed live).
    pub fn mean_discovery_delay_s(&self) -> f64 {
        if self.discovery_delays.is_empty() {
            return 0.0;
        }
        self.discovery_delays
            .iter()
            .map(|d| d.as_secs_f64())
            .sum::<f64>()
            / self.discovery_delays.len() as f64
    }

    /// Largest discovery delay in seconds.
    pub fn max_discovery_delay_s(&self) -> f64 {
        self.discovery_delays
            .iter()
            .map(|d| d.as_secs_f64())
            .fold(0.0, f64::max)
    }
}

/// Replays `trace` through `app` under `strategy`.
///
/// # Errors
///
/// Returns [`SimError`] if a hub wake-up condition cannot be loaded or
/// executed on the trace.
pub fn simulate(
    trace: &SensorTrace,
    app: &dyn Application,
    strategy: &Strategy,
    profile: &PhonePowerProfile,
    config: &SimConfig,
) -> Result<SimResult, SimError> {
    simulate_traced(trace, app, strategy, profile, config, &mut NullSink)
}

/// [`simulate`] with the hub interpreter running its vector pipeline at
/// single precision — the hardware-faithful hub mode (the paper's MCUs
/// have at most an f32 FPU). Phone-side strategies (Always Awake, Duty
/// Cycling, Batching, Oracle) are unaffected: the precision parameter
/// only governs windows and spectra buffered *on the hub*, so their
/// results are identical to [`simulate`]. Hub-resident strategies may
/// wake at slightly different sample positions when a feature value sits
/// within single-precision rounding of its threshold.
///
/// # Errors
///
/// Returns [`SimError`] if a hub wake-up condition cannot be loaded or
/// executed on the trace.
pub fn simulate_f32(
    trace: &SensorTrace,
    app: &dyn Application,
    strategy: &Strategy,
    profile: &PhonePowerProfile,
    config: &SimConfig,
) -> Result<SimResult, SimError> {
    simulate_traced_f32(trace, app, strategy, profile, config, &mut NullSink)
}

/// [`simulate`] with an observability sink attached.
///
/// Hub-resident strategies thread `sink` into the [`HubRuntime`], so it
/// sees every node execution and wake emission; the engine additionally
/// moves the sink's time cursor to each sample's trace time and reports
/// one delivered link frame per wake. With [`NullSink`] this *is*
/// [`simulate`]: the instrumentation compiles out and the sample replay
/// takes the identical batched path (pinned by the obs conformance
/// suite).
///
/// # Errors
///
/// Returns [`SimError`] if a hub wake-up condition cannot be loaded or
/// executed on the trace.
pub fn simulate_traced<S: EventSink>(
    trace: &SensorTrace,
    app: &dyn Application,
    strategy: &Strategy,
    profile: &PhonePowerProfile,
    config: &SimConfig,
    sink: &mut S,
) -> Result<SimResult, SimError> {
    simulate_traced_generic::<S, f64>(trace, app, strategy, profile, config, sink)
}

/// [`simulate_f32`] with an observability sink attached; see
/// [`simulate_traced`] for what the sink observes.
///
/// # Errors
///
/// Returns [`SimError`] if a hub wake-up condition cannot be loaded or
/// executed on the trace.
pub fn simulate_traced_f32<S: EventSink>(
    trace: &SensorTrace,
    app: &dyn Application,
    strategy: &Strategy,
    profile: &PhonePowerProfile,
    config: &SimConfig,
    sink: &mut S,
) -> Result<SimResult, SimError> {
    simulate_traced_generic::<S, f32>(trace, app, strategy, profile, config, sink)
}

/// The precision-generic replay behind [`simulate_traced`] and
/// [`simulate_traced_f32`]: `P` is the hub's vector sample precision.
fn simulate_traced_generic<S: EventSink, P: Sample>(
    trace: &SensorTrace,
    app: &dyn Application,
    strategy: &Strategy,
    profile: &PhonePowerProfile,
    config: &SimConfig,
    sink: &mut S,
) -> Result<SimResult, SimError> {
    let duration = trace.duration();
    let mut discovery_delays = Vec::new();
    let (awake, mut detections) = match strategy {
        Strategy::AlwaysAwake => {
            let detections = app.classify(trace, Micros::ZERO, duration);
            (
                IntervalSet::from_spans(vec![(Micros::ZERO, duration)], Micros::ZERO),
                detections,
            )
        }
        Strategy::DutyCycle { sleep } => duty_cycle(trace, app, *sleep, profile, config),
        Strategy::Batching { interval, .. } => {
            let (awake, detections, delays) = batching(trace, app, *interval, profile, config);
            discovery_delays = delays;
            (awake, detections)
        }
        Strategy::HubWake { program, .. } | Strategy::HubWakeDegraded { program, .. } => {
            // With no faults to degrade under, the hardened strategy *is*
            // plain hub wake-up.
            hub_wake::<S, P>(trace, app, program, config, sink)?
        }
        Strategy::Oracle => {
            let spans: Vec<(Micros, Micros)> = app
                .target_kinds()
                .iter()
                .flat_map(|&k| trace.ground_truth().of_kind(k))
                .map(|iv| (iv.start(), iv.end()))
                .collect();
            let detections = spans.iter().map(|(s, e)| *s + (*e - *s) / 2).collect();
            (IntervalSet::from_spans(spans, config.merge_gap), detections)
        }
    };

    let awake = awake.clip(duration);
    detections.sort();
    detections.dedup();

    let stats = DetectionStats::match_events(
        trace.ground_truth(),
        &app.target_kinds(),
        &detections,
        config.match_tolerance,
    );

    let breakdown = integrate(&awake, duration, profile, strategy.hub_mw());
    Ok(SimResult {
        strategy: strategy.label(),
        app: app.name().to_string(),
        trace: trace.name().to_string(),
        average_power_mw: breakdown.average_power_mw(profile),
        wake_ups: awake.len(),
        breakdown,
        stats,
        detections,
        discovery_delays,
        fault: FaultCounters::default(),
    })
}

/// Replays `trace` through `app` under `strategy` while injecting the
/// faults described by `schedule`.
///
/// With an empty schedule this is exactly [`simulate`] — bit-identical
/// results, zeroed [`FaultCounters`]. Faults live on the phone↔hub link
/// and the hub itself, so only the hub-resident strategies
/// ([`Strategy::HubWake`], [`Strategy::HubWakeDegraded`]) are affected;
/// phone-only strategies delegate to [`simulate`] unchanged.
///
/// # Errors
///
/// Returns [`SimError`] if the wake-up condition cannot be loaded or
/// executed on the trace.
pub fn simulate_with_faults(
    trace: &SensorTrace,
    app: &dyn Application,
    strategy: &Strategy,
    profile: &PhonePowerProfile,
    config: &SimConfig,
    schedule: &FaultSchedule,
) -> Result<SimResult, SimError> {
    simulate_with_faults_traced(
        trace,
        app,
        strategy,
        profile,
        config,
        schedule,
        &mut NullSink,
    )
}

/// [`simulate_with_faults`] with an observability sink attached: on top
/// of what [`simulate_traced`] reports, the sink sees every link-frame
/// fate and retry, lost frames, dropped samples, hub resets with their
/// program re-downloads, and degraded-mode entries/exits.
///
/// # Errors
///
/// Returns [`SimError`] if the wake-up condition cannot be loaded or
/// executed on the trace.
pub fn simulate_with_faults_traced<S: EventSink>(
    trace: &SensorTrace,
    app: &dyn Application,
    strategy: &Strategy,
    profile: &PhonePowerProfile,
    config: &SimConfig,
    schedule: &FaultSchedule,
    sink: &mut S,
) -> Result<SimResult, SimError> {
    if schedule.is_empty() {
        return simulate_traced(trace, app, strategy, profile, config, sink);
    }
    let (program, fallback) = match strategy {
        Strategy::HubWake { program, .. } => (program, None),
        Strategy::HubWakeDegraded {
            program,
            fallback_sleep,
            ..
        } => (program, Some(*fallback_sleep)),
        _ => return simulate_traced(trace, app, strategy, profile, config, sink),
    };
    let duration = trace.duration();
    let (awake, mut detections, fault) = hub_wake_faulted(
        trace, app, program, config, profile, schedule, fallback, sink,
    )?;
    let awake = awake.clip(duration);
    detections.sort();
    detections.dedup();

    let stats = DetectionStats::match_events(
        trace.ground_truth(),
        &app.target_kinds(),
        &detections,
        config.match_tolerance,
    );

    let mut breakdown = integrate(&awake, duration, profile, strategy.hub_mw());
    // Recovery work (backoff waits, probes, retransmissions, program
    // re-downloads) keeps the phone out of sleep: move that time from the
    // sleep budget to awake, preserving the trace-time partition.
    let recovery_awake = fault.recovery_time.min(breakdown.asleep);
    breakdown.awake += recovery_awake;
    breakdown.asleep -= recovery_awake;
    Ok(SimResult {
        strategy: strategy.label(),
        app: app.name().to_string(),
        trace: trace.name().to_string(),
        average_power_mw: breakdown.average_power_mw(profile),
        wake_ups: awake.len(),
        breakdown,
        stats,
        detections,
        discovery_delays: Vec::new(),
        fault,
    })
}

/// Converts awake spans into the per-state time breakdown, charging one
/// wake and one sleep transition per disjoint awake period out of the
/// sleep budget.
fn integrate(
    awake: &IntervalSet,
    duration: Micros,
    profile: &PhonePowerProfile,
    hub_mw: f64,
) -> PowerBreakdown {
    let t_awake = awake.total().min(duration);
    let sleep_budget = duration.saturating_sub(t_awake);
    let wanted_overhead = profile.transition_time * (2 * awake.len() as u64);
    let overhead = wanted_overhead.min(sleep_budget);
    PowerBreakdown {
        awake: t_awake,
        asleep: sleep_budget.saturating_sub(overhead),
        waking: overhead / 2,
        sleeping: overhead - overhead / 2,
        hub_mw,
    }
}

/// Duty cycling: wake, sample for one chunk, extend while the classifier
/// keeps detecting, then sleep.
fn duty_cycle(
    trace: &SensorTrace,
    app: &dyn Application,
    sleep: Micros,
    profile: &PhonePowerProfile,
    config: &SimConfig,
) -> (IntervalSet, Vec<Micros>) {
    let duration = trace.duration();
    let chunk = config.awake_chunk;
    let mut spans = Vec::new();
    let mut detections = Vec::new();
    let mut t = Micros::ZERO;
    while t < duration {
        let mut end = (t + chunk).min(duration);
        loop {
            let chunk_start = end.saturating_sub(chunk).max(t);
            let found = app.classify(trace, chunk_start, end);
            let fresh: Vec<Micros> = found
                .into_iter()
                .filter(|&d| d >= chunk_start && d < end)
                .collect();
            let keep_going = !fresh.is_empty() && end < duration;
            detections.extend(fresh);
            if !keep_going {
                break;
            }
            end = (end + chunk).min(duration);
        }
        spans.push((t, end));
        // The sleep interval is the total gap between sampling windows;
        // the two 1 s transitions live inside it (and consume it
        // entirely at the paper's shortest 2 s interval, which is why
        // DC-2 costs *more* than Always Awake — §5.4's 339 mW).
        t = end + sleep.max(profile.transition_time * 2);
    }
    // Duty-cycle spans are genuinely disjoint: the phone transitions
    // between every pair, so no gap merging applies.
    (IntervalSet::from_spans(spans, Micros::ZERO), detections)
}

/// Batching: the hub caches data while the phone sleeps; on each wake the
/// application processes the entire batch.
fn batching(
    trace: &SensorTrace,
    app: &dyn Application,
    interval: Micros,
    profile: &PhonePowerProfile,
    config: &SimConfig,
) -> (IntervalSet, Vec<Micros>, Vec<Micros>) {
    let duration = trace.duration();
    let mut spans = Vec::new();
    let mut detections = Vec::new();
    let mut delays = Vec::new();
    let mut processed_to = Micros::ZERO;
    let mut t = interval;
    while processed_to < duration {
        let wake_at = t.min(duration);
        // Process everything cached since the last batch; each detection
        // is only *discovered* now, a batch interval after the fact.
        for d in app.classify(trace, processed_to, wake_at) {
            delays.push(wake_at.saturating_sub(d));
            detections.push(d);
        }
        processed_to = wake_at;
        if wake_at >= duration {
            break;
        }
        spans.push((wake_at, (wake_at + config.awake_chunk).min(duration)));
        t = wake_at + config.awake_chunk + interval.max(profile.transition_time * 2);
    }
    (
        IntervalSet::from_spans(spans, Micros::ZERO),
        detections,
        delays,
    )
}

/// Hub-resident wake-up condition (Predefined Activity or Sidewinder),
/// interpreted at vector precision `P`.
fn hub_wake<S: EventSink, P: Sample>(
    trace: &SensorTrace,
    app: &dyn Application,
    program: &Program,
    config: &SimConfig,
    sink: &mut S,
) -> Result<(IntervalSet, Vec<Micros>), SimError> {
    // Configure hub channel rates from the trace itself.
    let mut rates = ChannelRates::default();
    let channels = program.channels();
    for &channel in &channels {
        let series = trace
            .channel(channel)
            .ok_or(SimError::MissingChannel(channel))?;
        rates = rates.with_rate(channel, series.rate_hz());
    }
    let mut hub = HubRuntime::<_, P>::load_generic(program, &rates, &mut *sink)?;

    // Replay samples in time order across the program's channels and
    // collect wake times. Consecutive samples from one channel are pushed
    // as a single batch; the batch boundary reproduces the serial pick
    // exactly (first channel index with a strictly minimal time wins), so
    // the hub sees the samples in the identical order.
    let mut wake_times: Vec<Micros> = Vec::new();
    let mut cursors: Vec<(sidewinder_sensors::SensorChannel, usize)> =
        channels.iter().map(|&c| (c, 0usize)).collect();
    loop {
        // Pick the channel whose next sample is earliest.
        let mut best: Option<(usize, Micros)> = None;
        for (i, &(channel, idx)) in cursors.iter().enumerate() {
            let series = trace.channel(channel).expect("checked above");
            if idx < series.len() {
                let t = series.time_of(idx);
                if best.map(|(_, bt)| t < bt).unwrap_or(true) {
                    best = Some((i, t));
                }
            }
        }
        let Some((i, _)) = best else { break };
        let (channel, idx) = cursors[i];
        let series = trace.channel(channel).expect("checked above");
        // The other channels' next-sample times are fixed while this
        // channel runs, so the run extends as long as this channel keeps
        // winning the serial pick: strictly earlier than channels at a
        // smaller index, no later than channels at a larger index.
        let mut before_min: Option<Micros> = None;
        let mut after_min: Option<Micros> = None;
        for (j, &(other, jdx)) in cursors.iter().enumerate() {
            if j == i {
                continue;
            }
            let other_series = trace.channel(other).expect("checked above");
            if jdx < other_series.len() {
                let tj = other_series.time_of(jdx);
                let slot = if j < i {
                    &mut before_min
                } else {
                    &mut after_min
                };
                *slot = Some(slot.map_or(tj, |m| m.min(tj)));
            }
        }
        let wins = |t: Micros| before_min.is_none_or(|m| t < m) && after_min.is_none_or(|m| t <= m);
        let mut end = idx + 1;
        while end < series.len() && wins(series.time_of(end)) {
            end += 1;
        }
        cursors[i].1 = end;
        // Within one channel, a sample's sequence number is its series
        // index, so each wake's trigger time is recoverable from its tag.
        if S::ENABLED {
            // Traced: feed one sample at a time so each event is stamped
            // with its sample's trace time, and report each wake's frame
            // crossing the link. Batch-equivalence of the two paths is
            // pinned by the hub's conformance tests.
            for s in idx..end {
                hub.sink_mut().set_time(series.time_of(s));
                let wakes = hub.push_sample(channel, series.samples()[s])?;
                for w in &wakes {
                    wake_times.push(series.time_of(w.seq as usize));
                }
                for _ in &wakes {
                    hub.sink_mut().record(Event::LinkFrame {
                        outcome: FrameOutcome::Delivered,
                        attempt: 1,
                    });
                }
            }
        } else {
            let wakes = hub.push_samples(channel, &series.samples()[idx..end])?;
            wake_times.extend(wakes.iter().map(|w| series.time_of(w.seq as usize)));
        }
    }

    // Each wake keeps the phone up briefly; close wakes merge into a
    // continuous awake span covering the event.
    let spans: Vec<(Micros, Micros)> = wake_times
        .iter()
        .map(|&w| (w, w + config.hub_chunk))
        .collect();
    let awake = IntervalSet::from_spans(spans, config.merge_gap);

    // The application classifies over each awake period plus the raw
    // buffer the hub hands over.
    let mut detections = Vec::new();
    for &(start, end) in awake.spans() {
        detections.extend(app.classify(trace, start.saturating_sub(config.lookback), end));
    }
    Ok((awake, detections))
}

/// [`hub_wake`] under an active fault schedule: the serial link corrupts
/// and drops frames, the hub resets and browns out, sensor channels fall
/// silent. The phone retries frames with capped exponential backoff,
/// probes hub health after timeouts, and re-downloads the program after
/// each reset; when `fallback` is set it additionally duty-cycles on the
/// main CPU through every window where the hub is unusable.
#[allow(clippy::too_many_arguments)]
fn hub_wake_faulted<S: EventSink>(
    trace: &SensorTrace,
    app: &dyn Application,
    program: &Program,
    config: &SimConfig,
    profile: &PhonePowerProfile,
    schedule: &FaultSchedule,
    fallback: Option<Micros>,
    sink: &mut S,
) -> Result<(IntervalSet, Vec<Micros>, FaultCounters), SimError> {
    let duration = trace.duration();
    let mut rates = ChannelRates::default();
    let channels = program.channels();
    for &channel in &channels {
        let series = trace
            .channel(channel)
            .ok_or(SimError::MissingChannel(channel))?;
        rates = rates.with_rate(channel, series.rate_hz());
    }
    let mut hub = HubRuntime::load_with_sink(program, &rates, &mut *sink)?;

    // Link-cost model: every transfer is CRC-framed; a health probe is a
    // round trip; recovering from a hub reset takes the reboot, a program
    // re-download, and a probe to confirm the hub is back.
    let link = SerialLink::NEXUS4_UART;
    let frame_time = link.framed_transfer_time(WAKE_FRAME_BYTES);
    let probe_time = link.framed_transfer_time(PROBE_FRAME_BYTES) * 2;
    let program_bytes = program.to_string().len();
    let recovery = HUB_REBOOT_TIME + link.framed_transfer_time(program_bytes) + probe_time;
    let mut plan = schedule.plan(duration, recovery);
    let retry = plan.retry();
    let mut fault = FaultCounters::default();

    // Wake times that actually reached the phone, and windows in which the
    // link blew through its retry budget (feeding the degraded fallback).
    let mut wake_times: Vec<Micros> = Vec::new();
    let mut saturated: Vec<(Micros, Micros)> = Vec::new();
    // Per program channel, the series index of each sample the hub has
    // consumed since its last reset: a wake's `seq` tag indexes this map
    // to recover the trigger time. Cleared on reset, exactly as the hub
    // clears its per-channel sequence counters.
    let mut consumed: Vec<Vec<usize>> = vec![Vec::new(); channels.len()];
    let mut next_reset = 0usize;

    // Same time-ordered serial pick as `hub_wake`, but samples feed the
    // hub one at a time so each can be checked against the fault plan.
    let mut cursors: Vec<(SensorChannel, usize)> = channels.iter().map(|&c| (c, 0usize)).collect();
    loop {
        let mut best: Option<(usize, Micros)> = None;
        for (i, &(channel, idx)) in cursors.iter().enumerate() {
            let series = trace.channel(channel).expect("checked above");
            if idx < series.len() {
                let t = series.time_of(idx);
                if best.map(|(_, bt)| t < bt).unwrap_or(true) {
                    best = Some((i, t));
                }
            }
        }
        let Some((i, _)) = best else { break };
        let (channel, idx) = cursors[i];
        let series = trace.channel(channel).expect("checked above");
        let mut before_min: Option<Micros> = None;
        let mut after_min: Option<Micros> = None;
        for (j, &(other, jdx)) in cursors.iter().enumerate() {
            if j == i {
                continue;
            }
            let other_series = trace.channel(other).expect("checked above");
            if jdx < other_series.len() {
                let tj = other_series.time_of(jdx);
                let slot = if j < i {
                    &mut before_min
                } else {
                    &mut after_min
                };
                *slot = Some(slot.map_or(tj, |m| m.min(tj)));
            }
        }
        let wins = |t: Micros| before_min.is_none_or(|m| t < m) && after_min.is_none_or(|m| t <= m);
        let mut end = idx + 1;
        while end < series.len() && wins(series.time_of(end)) {
            end += 1;
        }
        cursors[i].1 = end;

        for s in idx..end {
            let t = series.time_of(s);
            // Fire any watchdog reset that has come due: the hub loses
            // all filter state and its sequence counters, and the phone
            // pays reboot + re-download + probe to bring it back.
            while next_reset < plan.resets().len() && plan.resets()[next_reset] <= t {
                if S::ENABLED {
                    hub.sink_mut().set_time(plan.resets()[next_reset]);
                }
                hub.reset();
                if S::ENABLED {
                    hub.sink_mut().record(Event::ProgramRedownload);
                }
                for map in &mut consumed {
                    map.clear();
                }
                fault.hub_resets += 1;
                fault.redownloads += 1;
                fault.recovery_time += recovery;
                next_reset += 1;
            }
            if S::ENABLED {
                hub.sink_mut().set_time(t);
            }
            if plan.hub_down_at(t) || plan.channel_dropped(channel, t) {
                fault.samples_dropped += 1;
                if S::ENABLED {
                    hub.sink_mut().record(Event::SampleDropped { channel });
                }
                continue;
            }
            consumed[i].push(s);
            let wakes = hub.push_sample(channel, series.samples()[s])?;
            for wake in wakes {
                let tw = series.time_of(consumed[i][wake.seq as usize]);
                // Transfer the wake notification: retry corrupted/dropped
                // frames with capped exponential backoff until delivery or
                // budget exhaustion. A clean first attempt costs nothing
                // extra — the fault-free path stays bit-identical.
                let mut delay = Micros::ZERO;
                let mut attempt = 1u32;
                loop {
                    fault.frames_sent += 1;
                    let fate = plan.next_frame_fate();
                    if S::ENABLED {
                        let outcome = match fate {
                            FrameFate::Delivered => FrameOutcome::Delivered,
                            FrameFate::Corrupted => FrameOutcome::Corrupted,
                            FrameFate::Dropped => FrameOutcome::Dropped,
                        };
                        hub.sink_mut().record(Event::LinkFrame { outcome, attempt });
                    }
                    match fate {
                        FrameFate::Delivered => {
                            wake_times.push((tw + delay).min(duration));
                            break;
                        }
                        FrameFate::Corrupted => fault.frames_corrupted += 1,
                        FrameFate::Dropped => fault.frames_dropped += 1,
                    }
                    if attempt >= retry.max_attempts {
                        fault.frames_lost += 1;
                        if S::ENABLED {
                            hub.sink_mut().record(Event::FrameLost);
                        }
                        if let Some(fb) = fallback {
                            // The link is saturated past its budget: cover
                            // the loss with one fallback duty cycle.
                            saturated.push((tw, (tw + fb + config.awake_chunk).min(duration)));
                        }
                        break;
                    }
                    fault.frames_retried += 1;
                    delay = delay + retry.backoff_before(attempt) + probe_time + frame_time;
                    fault.recovery_time += probe_time + frame_time;
                    attempt += 1;
                }
            }
        }
    }

    // Delivered wakes behave exactly as in the fault-free path.
    let spans: Vec<(Micros, Micros)> = wake_times
        .iter()
        .map(|&w| (w, w + config.hub_chunk))
        .collect();
    let hub_awake = IntervalSet::from_spans(spans, config.merge_gap);
    let mut detections = Vec::new();
    for &(start, end) in hub_awake.spans() {
        detections.extend(app.classify(trace, start.saturating_sub(config.lookback), end));
    }

    // Degraded mode: while the hub is down or the link saturated, fall
    // back to duty-cycling on the main CPU — the paper's DC strategy,
    // bounded to the outage window, so wake conditions keep firing (late,
    // at phone power) instead of never.
    let mut all_spans: Vec<(Micros, Micros)> = hub_awake.spans().to_vec();
    if let Some(sleep) = fallback {
        let mut windows: Vec<(Micros, Micros)> = plan.downtime().to_vec();
        windows.extend(saturated);
        let windows = IntervalSet::from_spans(windows, Micros::ZERO);
        let chunk = config.awake_chunk;
        for &(win_start, win_end) in windows.spans() {
            fault.degraded_time += win_end - win_start;
            if S::ENABLED {
                hub.sink_mut().set_time(win_start);
                hub.sink_mut().record(Event::Degraded { entered: true });
            }
            // The exact duty_cycle pacing loop, bounded to the window, so
            // a full-trace outage reproduces DutyCycle detections
            // identically.
            let mut t = win_start;
            while t < win_end {
                let mut end = (t + chunk).min(win_end);
                loop {
                    let chunk_start = end.saturating_sub(chunk).max(t);
                    let found = app.classify(trace, chunk_start, end);
                    let fresh: Vec<Micros> = found
                        .into_iter()
                        .filter(|&d| d >= chunk_start && d < end)
                        .collect();
                    let keep_going = !fresh.is_empty() && end < win_end;
                    detections.extend(fresh);
                    if !keep_going {
                        break;
                    }
                    end = (end + chunk).min(win_end);
                }
                all_spans.push((t, end));
                t = end + sleep.max(profile.transition_time * 2);
            }
            if S::ENABLED {
                hub.sink_mut().set_time(win_end);
                hub.sink_mut().record(Event::Degraded { entered: false });
            }
        }
    }
    let awake = IntervalSet::from_spans(all_spans, Micros::ZERO);
    Ok((awake, detections, fault))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sidewinder_sensors::{EventKind, LabeledInterval, SensorChannel, TimeSeries};

    /// A toy application over a synthetic square-wave trace: events are
    /// intervals where ACC_X exceeds 5; the classifier finds them
    /// perfectly within the data it sees.
    struct ToyApp;

    impl Application for ToyApp {
        fn name(&self) -> &str {
            "toy"
        }
        fn target_kinds(&self) -> Vec<EventKind> {
            vec![EventKind::Headbutt]
        }
        fn classify(&self, trace: &SensorTrace, start: Micros, end: Micros) -> Vec<Micros> {
            let series = trace.channel(SensorChannel::AccX).unwrap();
            let rate = series.rate_hz();
            let mut out = Vec::new();
            let slice = series.slice(start, end);
            let offset = (start.as_secs_f64() * rate).ceil() as usize;
            let mut in_event = false;
            for (i, &v) in slice.iter().enumerate() {
                if v > 5.0 && !in_event {
                    in_event = true;
                    out.push(sidewinder_sensors::time::sample_time(offset + i, rate));
                } else if v <= 5.0 {
                    in_event = false;
                }
            }
            out
        }
        fn wake_condition(&self) -> Program {
            "ACC_X -> movingAvg(id=1, params={2});
             1 -> minThreshold(id=2, params={5});
             2 -> OUT;"
                .parse()
                .unwrap()
        }
        fn wake_condition_hub_mw(&self) -> f64 {
            3.6
        }
    }

    /// 120 s at 50 Hz with bursts of 10 at [30,32) and [90,92).
    fn toy_trace() -> SensorTrace {
        let rate = 50.0;
        let n = 120 * 50;
        let mut x = vec![0.0f64; n];
        let mut trace = SensorTrace::new("toy");
        let mut gt = sidewinder_sensors::GroundTruth::new();
        for (s, e) in [(30u64, 32u64), (90, 92)] {
            for sample in &mut x[(s * 50) as usize..(e * 50) as usize] {
                *sample = 10.0;
            }
            gt.push(
                LabeledInterval::new(
                    EventKind::Headbutt,
                    Micros::from_secs(s),
                    Micros::from_secs(e),
                )
                .unwrap(),
            );
        }
        trace.insert(
            SensorChannel::AccX,
            TimeSeries::from_samples(rate, x).unwrap(),
        );
        *trace.ground_truth_mut() = gt;
        trace
    }

    fn run(strategy: Strategy) -> SimResult {
        simulate(
            &toy_trace(),
            &ToyApp,
            &strategy,
            &PhonePowerProfile::NEXUS4,
            &SimConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn always_awake_sees_everything_at_full_power() {
        let r = run(Strategy::AlwaysAwake);
        assert_eq!(r.recall(), 1.0);
        assert_eq!(r.precision(), 1.0);
        assert!((r.average_power_mw - 323.0).abs() < 1e-9);
        assert_eq!(r.breakdown.asleep, Micros::ZERO);
        assert_eq!(r.wake_ups, 1);
    }

    #[test]
    fn oracle_has_perfect_metrics_at_minimal_power() {
        let r = run(Strategy::Oracle);
        assert_eq!(r.recall(), 1.0);
        assert_eq!(r.precision(), 1.0);
        // Awake only 4 s of 120 s plus transitions.
        assert_eq!(r.breakdown.awake, Micros::from_secs(4));
        assert_eq!(r.wake_ups, 2);
        assert!(r.average_power_mw < 35.0, "{}", r.average_power_mw);
        // And strictly cheaper than Always Awake.
        assert!(r.average_power_mw < run(Strategy::AlwaysAwake).average_power_mw);
    }

    #[test]
    fn sidewinder_wakes_on_events_only() {
        let r = run(Strategy::HubWake {
            program: ToyApp.wake_condition(),
            hub_mw: 3.6,
            label: "Sw",
        });
        assert_eq!(r.recall(), 1.0, "sidewinder must catch both events");
        assert_eq!(r.wake_ups, 2);
        // Hub draw is included.
        assert!(r.breakdown.hub_mw == 3.6);
        // Power sits between Oracle and Always Awake.
        let oracle = run(Strategy::Oracle).average_power_mw;
        let aa = run(Strategy::AlwaysAwake).average_power_mw;
        assert!(r.average_power_mw > oracle);
        assert!(r.average_power_mw < aa / 3.0);
    }

    #[test]
    fn f32_hub_mode_detects_the_same_toy_events() {
        let r64 = run(sidewinder());
        let r32 = simulate_f32(
            &toy_trace(),
            &ToyApp,
            &sidewinder(),
            &PhonePowerProfile::NEXUS4,
            &SimConfig::default(),
        )
        .unwrap();
        assert_eq!(r32.recall(), 1.0);
        assert_eq!(r32.wake_ups, r64.wake_ups);
        assert_eq!(r32.detections, r64.detections);
        // Phone-side strategies are precision-independent: the hub never
        // buffers their data, so f32 mode must be exactly f64 mode.
        let aa64 = run(Strategy::AlwaysAwake);
        let aa32 = simulate_f32(
            &toy_trace(),
            &ToyApp,
            &Strategy::AlwaysAwake,
            &PhonePowerProfile::NEXUS4,
            &SimConfig::default(),
        )
        .unwrap();
        assert_eq!(aa64, aa32);
    }

    #[test]
    fn duty_cycle_recall_degrades_with_sleep_interval() {
        let short = run(Strategy::DutyCycle {
            sleep: Micros::from_secs(2),
        });
        let long = run(Strategy::DutyCycle {
            sleep: Micros::from_secs(30),
        });
        assert!(short.recall() >= long.recall());
        // Long sleep must miss at least one 2 s event.
        assert!(long.recall() < 1.0);
        // And long sleeping saves power.
        assert!(long.average_power_mw < short.average_power_mw);
    }

    #[test]
    fn short_duty_cycle_burns_power_on_transitions() {
        // With a 2 s sleep interval the phone spends much of its time
        // transitioning — the paper measures 339 mW, *above* Always
        // Awake.
        let r = run(Strategy::DutyCycle {
            sleep: Micros::from_secs(2),
        });
        assert!(
            r.average_power_mw > 200.0,
            "DC-2 should be expensive, got {}",
            r.average_power_mw
        );
    }

    #[test]
    fn batching_has_perfect_recall_with_low_power() {
        let r = run(Strategy::Batching {
            interval: Micros::from_secs(10),
            hub_mw: 3.6,
        });
        assert_eq!(r.recall(), 1.0, "batching sees all data");
        let aa = run(Strategy::AlwaysAwake).average_power_mw;
        assert!(r.average_power_mw < aa / 2.0);
    }

    #[test]
    fn hub_wake_fails_cleanly_on_missing_channel() {
        let mut trace = SensorTrace::new("no-acc");
        trace.insert(
            SensorChannel::Mic,
            TimeSeries::from_samples(8000.0, vec![0.0; 100]).unwrap(),
        );
        let err = simulate(
            &trace,
            &ToyApp,
            &Strategy::HubWake {
                program: ToyApp.wake_condition(),
                hub_mw: 3.6,
                label: "Sw",
            },
            &PhonePowerProfile::NEXUS4,
            &SimConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err, SimError::MissingChannel(SensorChannel::AccX));
        assert!(err.to_string().contains("ACC_X"));
    }

    #[test]
    fn breakdown_times_partition_the_trace() {
        for strategy in [
            Strategy::AlwaysAwake,
            Strategy::Oracle,
            Strategy::DutyCycle {
                sleep: Micros::from_secs(5),
            },
            Strategy::Batching {
                interval: Micros::from_secs(10),
                hub_mw: 3.6,
            },
            Strategy::HubWake {
                program: ToyApp.wake_condition(),
                hub_mw: 3.6,
                label: "Sw",
            },
        ] {
            let r = run(strategy.clone());
            assert_eq!(
                r.breakdown.total(),
                Micros::from_secs(120),
                "{} does not partition time",
                strategy.label()
            );
        }
    }

    #[test]
    fn detections_are_sorted_and_unique() {
        let r = run(Strategy::AlwaysAwake);
        let mut sorted = r.detections.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(r.detections, sorted);
        assert!(!r.detections.is_empty());
    }

    fn run_faulted(strategy: Strategy, schedule: &FaultSchedule) -> SimResult {
        simulate_with_faults(
            &toy_trace(),
            &ToyApp,
            &strategy,
            &PhonePowerProfile::NEXUS4,
            &SimConfig::default(),
            schedule,
        )
        .unwrap()
    }

    fn sidewinder() -> Strategy {
        Strategy::HubWake {
            program: ToyApp.wake_condition(),
            hub_mw: 3.6,
            label: "Sw",
        }
    }

    fn sidewinder_degraded(fallback_sleep: Micros) -> Strategy {
        Strategy::HubWakeDegraded {
            program: ToyApp.wake_condition(),
            hub_mw: 3.6,
            label: "Sw+",
            fallback_sleep,
        }
    }

    #[test]
    fn empty_schedule_is_bit_identical_to_fault_free_path() {
        for strategy in [
            Strategy::AlwaysAwake,
            Strategy::DutyCycle {
                sleep: Micros::from_secs(5),
            },
            sidewinder(),
            sidewinder_degraded(Micros::from_secs(5)),
        ] {
            let clean = run(strategy.clone());
            let faulted = run_faulted(strategy, &FaultSchedule::none());
            assert_eq!(clean, faulted);
            assert!(faulted.fault.is_clean());
        }
    }

    #[test]
    fn corrupted_frames_are_retried_and_recovered() {
        let schedule = FaultSchedule::seeded(11).with_frame_corruption(0.4);
        let r = run_faulted(sidewinder(), &schedule);
        assert!(r.fault.frames_corrupted > 0);
        assert!(r.fault.frames_retried > 0);
        assert!(r.fault.frames_sent > r.fault.frames_retried);
        assert!(r.fault.recovery_time > Micros::ZERO);
        // Retransmissions are plentiful enough that both events still get
        // through, just at a higher energy bill than the clean run.
        assert_eq!(r.recall(), 1.0);
        assert!(r.average_power_mw > run(sidewinder()).average_power_mw);
    }

    #[test]
    fn hub_reset_forces_program_redownload() {
        let schedule = FaultSchedule::seeded(1).with_hub_reset_at(Micros::from_secs(60));
        let r = run_faulted(sidewinder(), &schedule);
        assert_eq!(r.fault.hub_resets, 1);
        assert_eq!(r.fault.redownloads, 1);
        assert!(r.fault.recovery_time >= HUB_REBOOT_TIME);
        // The reset lands between the two events, so both still fire.
        assert_eq!(r.recall(), 1.0);
    }

    #[test]
    fn downtime_without_fallback_misses_events() {
        // Hub down across the first event: plain HubWake loses it.
        let schedule = FaultSchedule::seeded(1)
            .with_hub_downtime(Micros::from_secs(20), Micros::from_secs(40));
        let r = run_faulted(sidewinder(), &schedule);
        assert!(r.fault.samples_dropped > 0);
        assert!(r.recall() < 1.0, "recall {}", r.recall());
    }

    #[test]
    fn degraded_mode_covers_downtime_like_duty_cycling() {
        // Hub down for the whole trace: the degraded strategy must fire
        // exactly the detections DutyCycle fires at the fallback interval.
        let sleep = Micros::from_secs(5);
        let schedule =
            FaultSchedule::seeded(1).with_hub_downtime(Micros::ZERO, Micros::from_secs(120));
        let degraded = run_faulted(sidewinder_degraded(sleep), &schedule);
        let dc = run(Strategy::DutyCycle { sleep });
        assert_eq!(degraded.detections, dc.detections);
        assert_eq!(degraded.stats, dc.stats);
        assert_eq!(degraded.wake_ups, dc.wake_ups);
        assert_eq!(degraded.fault.degraded_time, Micros::from_secs(120));
        assert_eq!(degraded.fault.samples_dropped, 6000);
    }

    #[test]
    fn faulted_runs_are_reproducible() {
        let schedule = FaultSchedule::seeded(99)
            .with_frame_corruption(0.3)
            .with_frame_drops(0.2)
            .with_hub_resets_every(Micros::from_secs(40));
        let a = run_faulted(sidewinder_degraded(Micros::from_secs(5)), &schedule);
        let b = run_faulted(sidewinder_degraded(Micros::from_secs(5)), &schedule);
        assert_eq!(a, b);
        assert!(!a.fault.is_clean());
    }

    #[test]
    fn breakdown_still_partitions_time_under_faults() {
        let schedule = FaultSchedule::seeded(5)
            .with_frame_corruption(0.5)
            .with_hub_reset_at(Micros::from_secs(50));
        let r = run_faulted(sidewinder_degraded(Micros::from_secs(5)), &schedule);
        assert_eq!(r.breakdown.total(), Micros::from_secs(120));
    }
}
