//! Awake-interval set algebra.

use sidewinder_sensors::Micros;

/// A sorted, disjoint set of half-open `[start, end)` intervals.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IntervalSet {
    spans: Vec<(Micros, Micros)>,
}

impl IntervalSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        IntervalSet::default()
    }

    /// Builds a set from possibly overlapping spans, merging any pair
    /// closer than `merge_gap` (the phone would not finish a sleep/wake
    /// round trip in a shorter gap).
    pub fn from_spans(mut raw: Vec<(Micros, Micros)>, merge_gap: Micros) -> IntervalSet {
        raw.retain(|(s, e)| e > s);
        raw.sort();
        let mut spans: Vec<(Micros, Micros)> = Vec::with_capacity(raw.len());
        for (s, e) in raw {
            match spans.last_mut() {
                Some((_, last_end)) if s <= *last_end + merge_gap => {
                    *last_end = (*last_end).max(e);
                }
                _ => spans.push((s, e)),
            }
        }
        IntervalSet { spans }
    }

    /// The disjoint spans in order.
    pub fn spans(&self) -> &[(Micros, Micros)] {
        &self.spans
    }

    /// Number of disjoint spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Total covered time.
    pub fn total(&self) -> Micros {
        self.spans
            .iter()
            .fold(Micros::ZERO, |acc, (s, e)| acc + (*e - *s))
    }

    /// Clips every span to `[0, end)` and drops empties.
    pub fn clip(&self, end: Micros) -> IntervalSet {
        IntervalSet {
            spans: self
                .spans
                .iter()
                .filter_map(|(s, e)| {
                    let e = (*e).min(end);
                    (e > *s).then_some((*s, e))
                })
                .collect(),
        }
    }

    /// Whether time `t` is covered.
    pub fn contains(&self, t: Micros) -> bool {
        self.spans.iter().any(|(s, e)| t >= *s && t < *e)
    }

    /// Whether `[start, end)` overlaps any span.
    pub fn overlaps(&self, start: Micros, end: Micros) -> bool {
        self.spans.iter().any(|(s, e)| *s < end && start < *e)
    }
}

impl FromIterator<(Micros, Micros)> for IntervalSet {
    /// Collects spans, merging only adjacent/overlapping ones (zero gap).
    fn from_iter<T: IntoIterator<Item = (Micros, Micros)>>(iter: T) -> Self {
        IntervalSet::from_spans(iter.into_iter().collect(), Micros::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(a: u64, b: u64) -> (Micros, Micros) {
        (Micros::from_secs(a), Micros::from_secs(b))
    }

    #[test]
    fn merges_overlapping_spans() {
        let set = IntervalSet::from_spans(vec![s(0, 5), s(3, 8), s(10, 12)], Micros::ZERO);
        assert_eq!(set.spans(), &[s(0, 8), s(10, 12)]);
        assert_eq!(set.total(), Micros::from_secs(10));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn merges_within_gap() {
        let set = IntervalSet::from_spans(vec![s(0, 5), s(6, 8)], Micros::from_secs(2));
        assert_eq!(set.spans(), &[s(0, 8)]);
        // Without gap tolerance they stay separate.
        let set = IntervalSet::from_spans(vec![s(0, 5), s(6, 8)], Micros::ZERO);
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let set = IntervalSet::from_spans(vec![s(10, 12), s(0, 2)], Micros::ZERO);
        assert_eq!(set.spans(), &[s(0, 2), s(10, 12)]);
    }

    #[test]
    fn empty_spans_are_dropped() {
        let set = IntervalSet::from_spans(vec![s(5, 5), s(7, 6)], Micros::ZERO);
        assert!(set.is_empty());
        assert_eq!(set.total(), Micros::ZERO);
    }

    #[test]
    fn clip_truncates_and_drops() {
        let set = IntervalSet::from_spans(vec![s(0, 5), s(8, 12)], Micros::ZERO);
        let clipped = set.clip(Micros::from_secs(9));
        assert_eq!(clipped.spans(), &[s(0, 5), s(8, 9)]);
        let clipped = set.clip(Micros::from_secs(7));
        assert_eq!(clipped.spans(), &[s(0, 5)]);
    }

    #[test]
    fn contains_and_overlaps() {
        let set = IntervalSet::from_spans(vec![s(2, 4)], Micros::ZERO);
        assert!(set.contains(Micros::from_secs(2)));
        assert!(set.contains(Micros::from_secs(3)));
        assert!(!set.contains(Micros::from_secs(4)));
        assert!(set.overlaps(Micros::from_secs(3), Micros::from_secs(10)));
        assert!(!set.overlaps(Micros::from_secs(4), Micros::from_secs(10)));
    }

    #[test]
    fn from_iterator_merges_adjacent() {
        let set: IntervalSet = vec![s(0, 2), s(2, 4)].into_iter().collect();
        assert_eq!(set.spans(), &[s(0, 4)]);
    }
}
