//! The phone power model.
//!
//! Table 1 of the paper gives the measured Google Nexus 4 profile this
//! model reproduces:
//!
//! | State                       | Power (mW) | Duration |
//! |-----------------------------|------------|----------|
//! | Awake, running application  | 323        | —        |
//! | Asleep                      | 9.7        | —        |
//! | Asleep-to-awake transition  | 384        | 1 s      |
//! | Awake-to-asleep transition  | 341        | 1 s      |

use sidewinder_sensors::Micros;

/// Measured power constants of the main processor platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhonePowerProfile {
    /// Power while awake running the sensing application, mW.
    pub awake_mw: f64,
    /// Power while asleep, mW.
    pub asleep_mw: f64,
    /// Power during the asleep→awake transition, mW.
    pub wake_transition_mw: f64,
    /// Power during the awake→asleep transition, mW.
    pub sleep_transition_mw: f64,
    /// Duration of each transition.
    pub transition_time: Micros,
}

impl PhonePowerProfile {
    /// The paper's measured Nexus 4 profile (Table 1).
    pub const NEXUS4: PhonePowerProfile = PhonePowerProfile {
        awake_mw: 323.0,
        asleep_mw: 9.7,
        wake_transition_mw: 384.0,
        sleep_transition_mw: 341.0,
        transition_time: Micros::from_secs(1),
    };
}

impl Default for PhonePowerProfile {
    fn default() -> Self {
        PhonePowerProfile::NEXUS4
    }
}

/// Time spent in each phone state over a simulated trace, plus the hub's
/// always-on draw.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PowerBreakdown {
    /// Time awake.
    pub awake: Micros,
    /// Time asleep.
    pub asleep: Micros,
    /// Time in asleep→awake transitions.
    pub waking: Micros,
    /// Time in awake→asleep transitions.
    pub sleeping: Micros,
    /// Hub (microcontroller) always-on power, mW; zero when the strategy
    /// uses no hub.
    pub hub_mw: f64,
}

impl PowerBreakdown {
    /// Total accounted time.
    pub fn total(&self) -> Micros {
        self.awake + self.asleep + self.waking + self.sleeping
    }

    /// Average power in mW under `profile`, including the hub draw.
    ///
    /// Returns the hub draw alone for an empty (zero-duration) breakdown.
    pub fn average_power_mw(&self, profile: &PhonePowerProfile) -> f64 {
        let total = self.total().as_secs_f64();
        if total <= 0.0 {
            return self.hub_mw;
        }
        let energy_mj = profile.awake_mw * self.awake.as_secs_f64()
            + profile.asleep_mw * self.asleep.as_secs_f64()
            + profile.wake_transition_mw * self.waking.as_secs_f64()
            + profile.sleep_transition_mw * self.sleeping.as_secs_f64();
        energy_mj / total + self.hub_mw
    }

    /// Fraction of time the phone is awake (transitions excluded).
    pub fn awake_fraction(&self) -> f64 {
        let total = self.total().as_secs_f64();
        if total <= 0.0 {
            0.0
        } else {
            self.awake.as_secs_f64() / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nexus4_matches_table_1() {
        let p = PhonePowerProfile::NEXUS4;
        assert_eq!(p.awake_mw, 323.0);
        assert_eq!(p.asleep_mw, 9.7);
        assert_eq!(p.wake_transition_mw, 384.0);
        assert_eq!(p.sleep_transition_mw, 341.0);
        assert_eq!(p.transition_time, Micros::from_secs(1));
        assert_eq!(PhonePowerProfile::default(), p);
    }

    #[test]
    fn always_awake_draws_awake_power() {
        let b = PowerBreakdown {
            awake: Micros::from_secs(100),
            ..PowerBreakdown::default()
        };
        assert!((b.average_power_mw(&PhonePowerProfile::NEXUS4) - 323.0).abs() < 1e-9);
        assert_eq!(b.awake_fraction(), 1.0);
    }

    #[test]
    fn always_asleep_draws_sleep_power() {
        let b = PowerBreakdown {
            asleep: Micros::from_secs(100),
            ..PowerBreakdown::default()
        };
        assert!((b.average_power_mw(&PhonePowerProfile::NEXUS4) - 9.7).abs() < 1e-9);
        assert_eq!(b.awake_fraction(), 0.0);
    }

    #[test]
    fn mixed_states_average_proportionally() {
        // 50 s asleep + 48 s awake + 1 s each transition over 100 s.
        let b = PowerBreakdown {
            awake: Micros::from_secs(48),
            asleep: Micros::from_secs(50),
            waking: Micros::from_secs(1),
            sleeping: Micros::from_secs(1),
            hub_mw: 0.0,
        };
        let expected = (323.0 * 48.0 + 9.7 * 50.0 + 384.0 + 341.0) / 100.0;
        assert!((b.average_power_mw(&PhonePowerProfile::NEXUS4) - expected).abs() < 1e-9);
        assert_eq!(b.total(), Micros::from_secs(100));
    }

    #[test]
    fn hub_power_adds_linearly() {
        let b = PowerBreakdown {
            asleep: Micros::from_secs(10),
            hub_mw: 3.6,
            ..PowerBreakdown::default()
        };
        assert!((b.average_power_mw(&PhonePowerProfile::NEXUS4) - 13.3).abs() < 1e-9);
    }

    #[test]
    fn empty_breakdown_is_hub_only() {
        let b = PowerBreakdown {
            hub_mw: 49.4,
            ..PowerBreakdown::default()
        };
        assert_eq!(b.average_power_mw(&PhonePowerProfile::NEXUS4), 49.4);
        assert_eq!(b.awake_fraction(), 0.0);
    }
}
