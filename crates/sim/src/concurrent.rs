//! Concurrent multi-application simulation.
//!
//! The paper's §7 raises "supporting multiple concurrent applications
//! while still maintaining predictable performance" as future work: one
//! phone runs several continuous-sensing applications, each with its own
//! hub-resident wake-up condition, sharing a single main processor.
//! [`simulate_concurrent`] models that: the hub runs every condition,
//! the phone wakes for the *union* of their wake-ups, and each awake
//! period is visible to every application's classifier (a wake-up for
//! one application lets the others piggyback on the data).

use crate::app::Application;
use crate::engine::{SimConfig, SimError};
use crate::intervals::IntervalSet;
use crate::metrics::DetectionStats;
use crate::power::{PhonePowerProfile, PowerBreakdown};
use sidewinder_hub::runtime::{ChannelRates, HubRuntime};
use sidewinder_sensors::{Micros, SensorChannel, SensorTrace};

/// Per-application outcome within a concurrent simulation.
#[derive(Debug, Clone)]
pub struct ConcurrentAppResult {
    /// Application name.
    pub app: String,
    /// Wake-ups raised by this application's own condition.
    pub own_wake_ups: usize,
    /// Recall/precision of this application's classifier over the shared
    /// awake time.
    pub stats: DetectionStats,
}

/// The outcome of running several applications on one phone.
#[derive(Debug, Clone)]
pub struct ConcurrentResult {
    /// Shared phone state breakdown (awake = union of all conditions'
    /// wake spans).
    pub breakdown: PowerBreakdown,
    /// Average power of the shared phone, mW.
    pub average_power_mw: f64,
    /// Disjoint awake periods of the shared phone.
    pub wake_ups: usize,
    /// Per-application detection quality.
    pub per_app: Vec<ConcurrentAppResult>,
}

/// Runs every application's wake-up condition concurrently on one hub
/// and one phone.
///
/// The hub draw is the most expensive microcontroller any condition
/// needs (one hub serves all conditions, sized for the most demanding —
/// the same rule `SidewinderSensorManager` applies).
///
/// # Errors
///
/// Returns [`SimError`] if any condition cannot be loaded or executed on
/// the trace.
pub fn simulate_concurrent(
    trace: &SensorTrace,
    apps: &[&dyn Application],
    profile: &PhonePowerProfile,
    config: &SimConfig,
) -> Result<ConcurrentResult, SimError> {
    let duration = trace.duration();

    // Load one runtime per application and collect the union of the
    // channels they read.
    let mut runtimes = Vec::new();
    let mut channels: Vec<SensorChannel> = Vec::new();
    for app in apps {
        let program = app.wake_condition();
        let mut rates = ChannelRates::default();
        for channel in program.channels() {
            let series = trace
                .channel(channel)
                .ok_or(SimError::MissingChannel(channel))?;
            rates = rates.with_rate(channel, series.rate_hz());
            if !channels.contains(&channel) {
                channels.push(channel);
            }
        }
        runtimes.push(HubRuntime::load(&program, &rates)?);
    }
    channels.sort();

    // Replay the trace once, feeding every runtime.
    let mut wake_times: Vec<Vec<Micros>> = vec![Vec::new(); apps.len()];
    let mut cursors: Vec<(SensorChannel, usize)> = channels.iter().map(|&c| (c, 0)).collect();
    loop {
        let mut best: Option<(usize, Micros)> = None;
        for (i, &(channel, idx)) in cursors.iter().enumerate() {
            let series = trace.channel(channel).expect("checked above");
            if idx < series.len() {
                let t = series.time_of(idx);
                if best.map(|(_, bt)| t < bt).unwrap_or(true) {
                    best = Some((i, t));
                }
            }
        }
        let Some((i, t)) = best else { break };
        let (channel, idx) = cursors[i];
        let sample = trace.channel(channel).expect("checked above").samples()[idx];
        cursors[i].1 += 1;
        for (app_idx, runtime) in runtimes.iter_mut().enumerate() {
            if !runtime.push_sample(channel, sample)?.is_empty() {
                wake_times[app_idx].push(t);
            }
        }
    }

    // The phone wakes for the union of all conditions' spans.
    let all_spans: Vec<(Micros, Micros)> = wake_times
        .iter()
        .flatten()
        .map(|&w| (w, w + config.hub_chunk))
        .collect();
    let awake = IntervalSet::from_spans(all_spans, config.merge_gap).clip(duration);

    // Every application classifies over every awake period (plus the
    // hub's raw buffer) — piggybacking on each other's wake-ups.
    let mut per_app = Vec::new();
    for (app_idx, app) in apps.iter().enumerate() {
        let mut detections = Vec::new();
        for &(start, end) in awake.spans() {
            detections.extend(app.classify(trace, start.saturating_sub(config.lookback), end));
        }
        detections.sort();
        detections.dedup();
        let own_spans = IntervalSet::from_spans(
            wake_times[app_idx]
                .iter()
                .map(|&w| (w, w + config.hub_chunk))
                .collect(),
            config.merge_gap,
        );
        per_app.push(ConcurrentAppResult {
            app: app.name().to_string(),
            own_wake_ups: own_spans.len(),
            stats: DetectionStats::match_events(
                trace.ground_truth(),
                &app.target_kinds(),
                &detections,
                config.match_tolerance,
            ),
        });
    }

    // One hub serves all conditions: charge the most expensive MCU.
    let hub_mw = apps
        .iter()
        .map(|a| a.wake_condition_hub_mw())
        .fold(0.0, f64::max);

    let t_awake = awake.total().min(duration);
    let sleep_budget = duration.saturating_sub(t_awake);
    let wanted = profile.transition_time * (2 * awake.len() as u64);
    let overhead = wanted.min(sleep_budget);
    let breakdown = PowerBreakdown {
        awake: t_awake,
        asleep: sleep_budget.saturating_sub(overhead),
        waking: overhead / 2,
        sleeping: overhead - overhead / 2,
        hub_mw,
    };

    Ok(ConcurrentResult {
        average_power_mw: breakdown.average_power_mw(profile),
        wake_ups: awake.len(),
        breakdown,
        per_app,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;
    use sidewinder_ir::Program;
    use sidewinder_sensors::{EventKind, GroundTruth, LabeledInterval, TimeSeries};

    /// Two toy applications watching different thresholds on the same
    /// channel.
    struct LevelApp {
        name: &'static str,
        kind: EventKind,
        level: f64,
    }

    impl Application for LevelApp {
        fn name(&self) -> &str {
            self.name
        }
        fn target_kinds(&self) -> Vec<EventKind> {
            vec![self.kind]
        }
        fn classify(&self, trace: &SensorTrace, start: Micros, end: Micros) -> Vec<Micros> {
            let series = trace.channel(SensorChannel::AccX).unwrap();
            let rate = series.rate_hz();
            let offset = ((start.as_secs_f64() * rate - 1e-9).ceil()).max(0.0) as usize;
            let mut out = Vec::new();
            let mut inside = false;
            for (i, &v) in series.slice(start, end).iter().enumerate() {
                let hit = v > self.level && v < self.level + 3.0;
                if hit && !inside {
                    out.push(sidewinder_sensors::time::sample_time(offset + i, rate));
                }
                inside = hit;
            }
            out
        }
        fn wake_condition(&self) -> Program {
            format!(
                "ACC_X -> movingAvg(id=1, params={{2}});
                 1 -> bandThreshold(id=2, params={{{}, {}}});
                 2 -> OUT;",
                self.level,
                self.level + 3.0
            )
            .parse()
            .unwrap()
        }
        fn wake_condition_hub_mw(&self) -> f64 {
            3.6
        }
    }

    /// Bursts at level 6 (t=20..22) and level 12 (t=60..62).
    fn two_kind_trace() -> SensorTrace {
        let mut x = vec![0.0f64; 120 * 50];
        let mut gt = GroundTruth::new();
        for (t0, level, kind) in [
            (20u64, 6.0, EventKind::Headbutt),
            (60, 20.0, EventKind::Siren),
        ] {
            for sample in &mut x[(t0 * 50) as usize..((t0 + 2) * 50) as usize] {
                *sample = level;
            }
            gt.push(
                LabeledInterval::new(kind, Micros::from_secs(t0), Micros::from_secs(t0 + 2))
                    .unwrap(),
            );
        }
        let mut trace = SensorTrace::new("two-kinds");
        trace.insert(
            SensorChannel::AccX,
            TimeSeries::from_samples(50.0, x).unwrap(),
        );
        *trace.ground_truth_mut() = gt;
        trace
    }

    fn apps() -> (LevelApp, LevelApp) {
        (
            LevelApp {
                name: "low",
                kind: EventKind::Headbutt,
                level: 5.0,
            },
            LevelApp {
                name: "high",
                kind: EventKind::Siren,
                level: 19.0,
            },
        )
    }

    #[test]
    fn concurrent_apps_share_the_phone_with_full_recall() {
        let trace = two_kind_trace();
        let (low, high) = apps();
        let result = simulate_concurrent(
            &trace,
            &[&low, &high],
            &PhonePowerProfile::NEXUS4,
            &SimConfig::default(),
        )
        .unwrap();
        assert_eq!(result.per_app.len(), 2);
        for app in &result.per_app {
            assert_eq!(app.stats.recall(), 1.0, "{} missed its event", app.app);
            assert_eq!(app.own_wake_ups, 1, "{}", app.app);
        }
        assert_eq!(result.wake_ups, 2);
        assert_eq!(result.breakdown.total(), Micros::from_secs(120));
        assert_eq!(result.breakdown.hub_mw, 3.6);
    }

    #[test]
    fn concurrent_power_is_bounded_by_individuals() {
        let trace = two_kind_trace();
        let (low, high) = apps();
        let config = SimConfig::default();
        let solo = |app: &LevelApp| {
            crate::engine::simulate(
                &trace,
                app,
                &Strategy::HubWake {
                    program: app.wake_condition(),
                    hub_mw: app.wake_condition_hub_mw(),
                    label: "Sw",
                },
                &PhonePowerProfile::NEXUS4,
                &config,
            )
            .unwrap()
            .average_power_mw
        };
        let combined =
            simulate_concurrent(&trace, &[&low, &high], &PhonePowerProfile::NEXUS4, &config)
                .unwrap()
                .average_power_mw;
        let low_solo = solo(&low);
        let high_solo = solo(&high);
        // Sharing cannot be cheaper than the most expensive individual and
        // is far cheaper than running two phones.
        assert!(combined >= low_solo.max(high_solo) - 1e-9);
        assert!(combined < low_solo + high_solo);
    }

    #[test]
    fn missing_channel_is_reported() {
        let mut trace = SensorTrace::new("no-channels");
        trace.insert(
            SensorChannel::Mic,
            TimeSeries::from_samples(8000.0, vec![0.0; 100]).unwrap(),
        );
        let (low, _) = apps();
        let err = simulate_concurrent(
            &trace,
            &[&low],
            &PhonePowerProfile::NEXUS4,
            &SimConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err, SimError::MissingChannel(SensorChannel::AccX));
    }
}
