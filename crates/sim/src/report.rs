//! Derived metrics and table rendering for the experiment binaries.

use crate::engine::SimResult;
use crate::metrics::FaultCounters;
use sidewinder_obs::EnergyLedger;

/// Power of a strategy relative to Oracle — the y-axis of the paper's
/// Fig. 5 and Fig. 7.
pub fn relative_to_oracle(strategy_mw: f64, oracle_mw: f64) -> f64 {
    if oracle_mw <= 0.0 {
        f64::NAN
    } else {
        strategy_mw / oracle_mw
    }
}

/// Fraction of the possible power savings a strategy achieves:
/// `(AA − strategy) / (AA − Oracle)` (paper §5.2). The paper reports
/// 92.7–95.7 % for Sidewinder on the accelerometer applications.
pub fn savings_fraction(strategy_mw: f64, always_awake_mw: f64, oracle_mw: f64) -> f64 {
    let headroom = always_awake_mw - oracle_mw;
    if headroom <= 0.0 {
        f64::NAN
    } else {
        (always_awake_mw - strategy_mw) / headroom
    }
}

/// Averages the power of a batch of per-trace results (the paper
/// averages across runs of a group).
pub fn mean_power_mw(results: &[SimResult]) -> f64 {
    if results.is_empty() {
        return f64::NAN;
    }
    results.iter().map(|r| r.average_power_mw).sum::<f64>() / results.len() as f64
}

/// Averages recall across results.
pub fn mean_recall(results: &[SimResult]) -> f64 {
    if results.is_empty() {
        return f64::NAN;
    }
    results.iter().map(|r| r.recall()).sum::<f64>() / results.len() as f64
}

/// Averages precision across results.
pub fn mean_precision(results: &[SimResult]) -> f64 {
    if results.is_empty() {
        return f64::NAN;
    }
    results.iter().map(|r| r.precision()).sum::<f64>() / results.len() as f64
}

/// Accumulates the fault counters of a batch of results — the summary
/// row of a fault-injection sweep. Clean (fault-free) runs contribute
/// nothing.
pub fn fault_totals(results: &[SimResult]) -> FaultCounters {
    let mut total = FaultCounters::default();
    for r in results {
        total.merge(&r.fault);
    }
    total
}

/// Renders an [`EnergyLedger`] as a per-component table: one row per
/// pipeline node, then the link, the MCU idle floor, and the phone's
/// power states, each with its joules and share of the run total. The
/// final `total` row reproduces the run's measured energy — the ledger
/// closes exactly by construction.
pub fn energy_table(ledger: &EnergyLedger) -> Table {
    let total = ledger.total_j();
    let share = |j: f64| {
        if total > 0.0 {
            format!("{:.2}%", 100.0 * j / total)
        } else {
            "-".to_string()
        }
    };
    let mut table = Table::new(["component", "executions", "energy (mJ)", "share"]);
    for node in &ledger.nodes {
        table.push_row([
            node.label.clone(),
            node.executions.to_string(),
            format!("{:.3}", node.joules * 1_000.0),
            share(node.joules),
        ]);
    }
    for (label, j) in [
        ("serial link", ledger.link_j),
        ("mcu idle", ledger.mcu_idle_j),
        ("phone awake", ledger.phone_awake_j),
        ("phone asleep", ledger.phone_asleep_j),
        ("phone transitions", ledger.phone_transition_j),
    ] {
        table.push_row([
            label.to_string(),
            String::new(),
            format!("{:.3}", j * 1_000.0),
            share(j),
        ]);
    }
    table.push_row([
        "total".to_string(),
        String::new(),
        format!("{:.3}", total * 1_000.0),
        share(total),
    ]);
    table
}

/// A minimal fixed-width table renderer for terminal reports.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn push_row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, row: I) {
        let mut cells: Vec<String> = row.into_iter().map(Into::into).collect();
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with column alignment, a header underline, and `|`
    /// separators.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        out.push_str(&render_row(&self.header, &widths));
        out.push('\n');
        let underline: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("|-{}-|", underline.join("-|-")));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_power_is_a_ratio() {
        assert_eq!(relative_to_oracle(100.0, 50.0), 2.0);
        assert!(relative_to_oracle(100.0, 0.0).is_nan());
    }

    #[test]
    fn savings_fraction_matches_the_paper_formula() {
        // AA = 323, Oracle = 23, Sw = 38 → (323-38)/(323-23) = 0.95.
        let f = savings_fraction(38.0, 323.0, 23.0);
        assert!((f - 0.95).abs() < 1e-9);
        // Oracle itself saves 100 %.
        assert_eq!(savings_fraction(23.0, 323.0, 23.0), 1.0);
        // Always Awake saves 0 %.
        assert_eq!(savings_fraction(323.0, 323.0, 23.0), 0.0);
        assert!(savings_fraction(1.0, 10.0, 10.0).is_nan());
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["config", "mW"]);
        t.push_row(["AA", "323.0"]);
        t.push_row(["Oracle", "16.8"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("config"));
        assert!(lines[1].starts_with("|-"));
        // All lines are the same width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(["a", "b", "c"]);
        t.push_row(["1"]);
        let s = t.render();
        assert!(s.lines().count() == 3);
    }

    #[test]
    fn means_of_empty_are_nan() {
        assert!(mean_power_mw(&[]).is_nan());
        assert!(mean_recall(&[]).is_nan());
        assert!(mean_precision(&[]).is_nan());
    }

    #[test]
    fn fault_totals_of_empty_are_clean() {
        assert!(fault_totals(&[]).is_clean());
    }

    #[test]
    fn energy_table_lists_components_and_total() {
        let ledger = EnergyLedger::close(
            0.01,
            vec![("movingAvg#1".to_string(), 3000, 0.004)],
            0.001,
            1.0,
            0.5,
            0.1,
        );
        let table = energy_table(&ledger);
        let rendered = table.render();
        assert!(rendered.contains("movingAvg#1"));
        assert!(rendered.contains("serial link"));
        assert!(rendered.contains("mcu idle"));
        assert!(rendered.contains("phone awake"));
        assert!(rendered.contains("total"));
        // 1 node + 5 fixed components + total.
        assert_eq!(table.len(), 7);
    }
}
