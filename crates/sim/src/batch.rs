//! Parallel batch simulation: the paper's §4.3 cross-product sweep
//! (applications × sensing strategies × traces) as a first-class engine.
//!
//! Every figure and table of the evaluation replays the same serial
//! loop: for each app, for each strategy, for each trace, call
//! [`simulate`]. [`BatchRunner`] runs that grid over a pool of scoped
//! worker threads instead, with three guarantees the experiment
//! binaries and the conformance suite rely on:
//!
//! 1. **Bit-identical results.** Each cell calls the exact serial
//!    [`simulate`] on the exact same inputs; parallelism only changes
//!    *when* a cell runs, never *what* it computes. The serial path
//!    remains the reference implementation, and
//!    `crates/sim/tests/batch_conformance.rs` pins the equivalence.
//! 2. **Deterministic order.** [`BatchReport::outcomes`] is always in
//!    sweep-spec order (app-major, then strategy, trace, config) no
//!    matter how threads interleave.
//! 3. **Failure isolation.** A failing cell — a [`SimError`] or even a
//!    panic inside a classifier — becomes a recorded [`JobError`] for
//!    that cell; the rest of the sweep still completes.
//!
//! Shared inputs (loaded traces, compiled wake-up-condition
//! [`Program`]s inside [`Strategy::HubWake`]) are reference-counted via
//! [`Arc`], so a 6-app × 9-strategy × 18-trace sweep synthesizes each
//! trace and each program once, not once per cell.
//!
//! [`Program`]: sidewinder_ir::Program
//! [`simulate`]: crate::engine::simulate

use crate::app::Application;
use crate::engine::{simulate_with_faults, SimConfig, SimError, SimResult};
use crate::power::PhonePowerProfile;
use crate::strategy::Strategy;
use sidewinder_hub::fault::FaultSchedule;
use sidewinder_sensors::SensorTrace;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// An application shared across worker threads.
pub type SharedApp = Arc<dyn Application + Send + Sync>;

/// A per-application strategy factory (e.g. each application's own
/// Sidewinder wake-up condition).
type StrategyFactory = Box<dyn Fn(&dyn Application) -> Vec<Strategy> + Send + Sync>;

/// How a sweep derives its strategy list.
enum StrategySource {
    /// One fixed list, evaluated against every application.
    Fixed(Vec<Strategy>),
    /// A per-application list, evaluated once per application.
    PerApp(StrategyFactory),
}

/// A declarative sweep: applications × strategies × traces × configs
/// under one power profile.
///
/// Build one with the fluent methods, then hand it to
/// [`BatchRunner::run`]. Enumeration order — and therefore
/// [`BatchReport`] order — is app-major: applications, then strategies,
/// then traces, then configs.
pub struct SweepSpec {
    apps: Vec<SharedApp>,
    traces: Vec<Arc<SensorTrace>>,
    configs: Vec<SimConfig>,
    profile: PhonePowerProfile,
    strategies: StrategySource,
    faults: Arc<FaultSchedule>,
}

impl Default for SweepSpec {
    fn default() -> Self {
        SweepSpec::new()
    }
}

impl SweepSpec {
    /// An empty sweep with the Nexus 4 profile and the default
    /// [`SimConfig`].
    pub fn new() -> SweepSpec {
        SweepSpec {
            apps: Vec::new(),
            traces: Vec::new(),
            configs: Vec::new(),
            profile: PhonePowerProfile::NEXUS4,
            strategies: StrategySource::Fixed(Vec::new()),
            faults: Arc::new(FaultSchedule::none()),
        }
    }

    /// Adds one application.
    pub fn app(mut self, app: impl Application + Send + Sync + 'static) -> Self {
        self.apps.push(Arc::new(app));
        self
    }

    /// Adds an already-shared application.
    pub fn shared_app(mut self, app: SharedApp) -> Self {
        self.apps.push(app);
        self
    }

    /// Adds already-shared applications.
    pub fn shared_apps(mut self, apps: impl IntoIterator<Item = SharedApp>) -> Self {
        self.apps.extend(apps);
        self
    }

    /// Adds one trace (wrapped in an [`Arc`] so all cells share it).
    pub fn trace(mut self, trace: SensorTrace) -> Self {
        self.traces.push(Arc::new(trace));
        self
    }

    /// Adds traces.
    pub fn traces(mut self, traces: impl IntoIterator<Item = SensorTrace>) -> Self {
        self.traces.extend(traces.into_iter().map(Arc::new));
        self
    }

    /// Adds already-shared traces.
    pub fn shared_traces(mut self, traces: impl IntoIterator<Item = Arc<SensorTrace>>) -> Self {
        self.traces.extend(traces);
        self
    }

    /// Adds one strategy to the fixed strategy list.
    ///
    /// # Panics
    ///
    /// Panics if [`SweepSpec::strategies_per_app`] was already set — a
    /// sweep derives its strategies one way or the other.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        match &mut self.strategies {
            StrategySource::Fixed(list) => list.push(strategy),
            StrategySource::PerApp(_) => {
                panic!("SweepSpec: cannot mix fixed strategies with strategies_per_app")
            }
        }
        self
    }

    /// Adds strategies to the fixed strategy list.
    ///
    /// # Panics
    ///
    /// Panics if [`SweepSpec::strategies_per_app`] was already set.
    pub fn strategies(mut self, strategies: impl IntoIterator<Item = Strategy>) -> Self {
        for s in strategies {
            self = self.strategy(s);
        }
        self
    }

    /// Derives the strategy list from each application — the natural
    /// form when the sweep includes each application's own Sidewinder
    /// wake-up condition. `f` is evaluated **once per application**;
    /// the resulting strategies (and any compiled programs inside them)
    /// are shared across that application's traces and configs.
    pub fn strategies_per_app(
        mut self,
        f: impl Fn(&dyn Application) -> Vec<Strategy> + Send + Sync + 'static,
    ) -> Self {
        self.strategies = StrategySource::PerApp(Box::new(f));
        self
    }

    /// Adds a simulation config (defaults to one [`SimConfig::default`]
    /// if never called).
    pub fn config(mut self, config: SimConfig) -> Self {
        self.configs.push(config);
        self
    }

    /// Sets the power profile (defaults to the Nexus 4).
    pub fn profile(mut self, profile: PhonePowerProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Sets the fault schedule every cell runs under (defaults to
    /// [`FaultSchedule::none`], which leaves all cells bit-identical to
    /// the fault-free path).
    pub fn faults(mut self, faults: FaultSchedule) -> Self {
        self.faults = Arc::new(faults);
        self
    }

    /// Enumerates the sweep's jobs in deterministic spec order.
    pub fn jobs(&self) -> Vec<JobSpec> {
        let default_config = [SimConfig::default()];
        let configs: &[SimConfig] = if self.configs.is_empty() {
            &default_config
        } else {
            &self.configs
        };
        let mut jobs = Vec::new();
        for (app_idx, app) in self.apps.iter().enumerate() {
            let strategies: Vec<Arc<Strategy>> = match &self.strategies {
                StrategySource::Fixed(list) => list.iter().cloned().map(Arc::new).collect(),
                StrategySource::PerApp(f) => f(app.as_ref()).into_iter().map(Arc::new).collect(),
            };
            for (strategy_idx, strategy) in strategies.iter().enumerate() {
                for (trace_idx, trace) in self.traces.iter().enumerate() {
                    for (config_idx, config) in configs.iter().enumerate() {
                        jobs.push(JobSpec {
                            index: jobs.len(),
                            app_idx,
                            strategy_idx,
                            trace_idx,
                            config_idx,
                            app: Arc::clone(app),
                            strategy: Arc::clone(strategy),
                            trace: Arc::clone(trace),
                            config: *config,
                            profile: self.profile,
                            faults: Arc::clone(&self.faults),
                        });
                    }
                }
            }
        }
        jobs
    }
}

/// One cell of a sweep: everything the engine needs, with the heavy
/// inputs behind [`Arc`]s.
#[derive(Clone)]
pub struct JobSpec {
    /// Position in spec order.
    pub index: usize,
    /// Application index within the spec.
    pub app_idx: usize,
    /// Strategy index within the application's strategy list.
    pub strategy_idx: usize,
    /// Trace index within the spec.
    pub trace_idx: usize,
    /// Config index within the spec.
    pub config_idx: usize,
    /// The application.
    pub app: SharedApp,
    /// The strategy (compiled program shared, not recompiled).
    pub strategy: Arc<Strategy>,
    /// The trace (loaded once, shared).
    pub trace: Arc<SensorTrace>,
    /// Simulation constants.
    pub config: SimConfig,
    /// Power profile.
    pub profile: PhonePowerProfile,
    /// Fault schedule (shared; empty for fault-free sweeps).
    pub faults: Arc<FaultSchedule>,
}

impl JobSpec {
    /// Runs this cell on the calling thread via the serial reference
    /// engine ([`simulate_with_faults`], which is [`simulate`] exactly
    /// when the schedule is empty), converting panics into
    /// [`JobError::Panicked`].
    ///
    /// [`simulate`]: crate::engine::simulate
    pub fn run(&self) -> JobOutcome {
        let started = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| {
            simulate_with_faults(
                &self.trace,
                &*self.app,
                &self.strategy,
                &self.profile,
                &self.config,
                &self.faults,
            )
        }));
        let result = match result {
            Ok(Ok(r)) => Ok(r),
            Ok(Err(e)) => Err(JobError::Sim(e)),
            Err(panic) => Err(JobError::Panicked(panic_message(&*panic))),
        };
        JobOutcome {
            index: self.index,
            app_idx: self.app_idx,
            strategy_idx: self.strategy_idx,
            trace_idx: self.trace_idx,
            config_idx: self.config_idx,
            app: self.app.name().to_string(),
            strategy: self.strategy.label(),
            trace: self.trace.name().to_string(),
            elapsed: started.elapsed(),
            result,
        }
    }

    /// [`JobSpec::run`] with a second, outer panic guard: the inner guard
    /// covers the simulation, but [`JobOutcome`] construction still calls
    /// application code (`name()`), which a hostile [`Application`] can
    /// panic in. Any panic escaping [`JobSpec::run`] becomes a
    /// [`JobError::Panicked`] outcome instead of poisoning the worker —
    /// the per-cell isolation the runner advertises must hold even there.
    fn run_isolated(&self) -> JobOutcome {
        let started = Instant::now();
        // UnwindSafe audit: `self` is only read across the boundary, and
        // on panic every value the closure produced is discarded — the
        // synthesized outcome below is built solely from the `JobSpec`.
        catch_unwind(AssertUnwindSafe(|| self.run())).unwrap_or_else(|panic| JobOutcome {
            index: self.index,
            app_idx: self.app_idx,
            strategy_idx: self.strategy_idx,
            trace_idx: self.trace_idx,
            config_idx: self.config_idx,
            app: guarded_name(|| self.app.name().to_string(), "<app name panicked>"),
            strategy: guarded_name(|| self.strategy.label(), "<strategy label panicked>"),
            trace: self.trace.name().to_string(),
            elapsed: started.elapsed(),
            result: Err(JobError::Panicked(panic_message(&*panic))),
        })
    }

    /// The outcome recorded for a job whose worker never filled its slot.
    fn lost_outcome(&self) -> JobOutcome {
        let app = guarded_name(|| self.app.name().to_string(), "<app name panicked>");
        let strategy = guarded_name(|| self.strategy.label(), "<strategy label panicked>");
        let trace = self.trace.name().to_string();
        JobOutcome {
            index: self.index,
            app_idx: self.app_idx,
            strategy_idx: self.strategy_idx,
            trace_idx: self.trace_idx,
            config_idx: self.config_idx,
            app: app.clone(),
            strategy: strategy.clone(),
            trace: trace.clone(),
            elapsed: Duration::ZERO,
            result: Err(JobError::Lost {
                app,
                strategy,
                trace,
            }),
        }
    }
}

/// Evaluates a display-name closure, substituting `fallback` if it
/// panics — failure reporting must never introduce a second panic.
fn guarded_name(f: impl FnOnce() -> String, fallback: &str) -> String {
    catch_unwind(AssertUnwindSafe(f)).unwrap_or_else(|_| fallback.to_string())
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Why a cell failed without aborting the sweep.
#[derive(Debug, Clone, PartialEq)]
pub enum JobError {
    /// The simulation rejected the cell (e.g. the trace lacks a channel
    /// the wake-up condition reads).
    Sim(SimError),
    /// The application code panicked; the payload message is preserved.
    Panicked(String),
    /// The cell's worker never reported an outcome — the job was lost.
    /// Carries the cell's identity so a fleet-scale sweep can say *which*
    /// device shard vanished rather than aborting on an anonymous slot.
    Lost {
        /// Application name of the lost cell.
        app: String,
        /// Strategy label of the lost cell.
        strategy: String,
        /// Trace name of the lost cell.
        trace: String,
    },
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Sim(e) => write!(f, "{e}"),
            JobError::Panicked(msg) => write!(f, "job panicked: {msg}"),
            JobError::Lost {
                app,
                strategy,
                trace,
            } => write!(
                f,
                "job lost: worker never reported an outcome for cell \
                 (app {app} / strategy {strategy} / trace {trace})"
            ),
        }
    }
}

impl std::error::Error for JobError {}

/// The outcome of one cell, failed or not, with its sweep coordinates.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Position in spec order.
    pub index: usize,
    /// Application index within the spec.
    pub app_idx: usize,
    /// Strategy index within the application's strategy list.
    pub strategy_idx: usize,
    /// Trace index within the spec.
    pub trace_idx: usize,
    /// Config index within the spec.
    pub config_idx: usize,
    /// Application name.
    pub app: String,
    /// Strategy label.
    pub strategy: String,
    /// Trace name.
    pub trace: String,
    /// Wall-clock time this cell took.
    pub elapsed: Duration,
    /// The simulation result, or why it failed.
    pub result: Result<SimResult, JobError>,
}

/// All outcomes of a sweep, in deterministic spec order.
#[derive(Debug, Clone)]
pub struct BatchReport {
    outcomes: Vec<JobOutcome>,
    /// Wall-clock time of the whole sweep.
    pub elapsed: Duration,
    /// Worker threads used.
    pub workers: usize,
}

impl BatchReport {
    /// Every cell outcome in spec order.
    pub fn outcomes(&self) -> &[JobOutcome] {
        &self.outcomes
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether the sweep had no cells.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Successful results in spec order.
    pub fn results(&self) -> impl Iterator<Item = &SimResult> {
        self.outcomes.iter().filter_map(|o| o.result.as_ref().ok())
    }

    /// Failed cells in spec order.
    pub fn failures(&self) -> impl Iterator<Item = &JobOutcome> {
        self.outcomes.iter().filter(|o| o.result.is_err())
    }

    /// The successful results of one (application, strategy) cell
    /// across all traces and configs, cloned into a contiguous slice
    /// for the `report` helpers ([`mean_power_mw`] and friends).
    ///
    /// [`mean_power_mw`]: crate::report::mean_power_mw
    pub fn cell(&self, app: &str, strategy: &str) -> Vec<SimResult> {
        self.outcomes
            .iter()
            .filter(|o| o.app == app && o.strategy == strategy)
            .filter_map(|o| o.result.as_ref().ok())
            .cloned()
            .collect()
    }

    /// All successful results, in spec order, panicking on the first
    /// failed cell — the semantics the experiment binaries want, where
    /// every configuration is valid by construction.
    ///
    /// # Panics
    ///
    /// Panics with the failing cell's coordinates if any cell failed.
    pub fn expect_all(&self) -> Vec<SimResult> {
        if let Some(failure) = self.failures().next() {
            panic!(
                "sweep cell {} / {} / {} failed: {}",
                failure.trace,
                failure.app,
                failure.strategy,
                failure.result.as_ref().expect_err("filtered to failures"),
            );
        }
        self.results().cloned().collect()
    }
}

/// Resolves the worker count: explicit override, else the
/// `SIDEWINDER_SWEEP_WORKERS` environment variable, else available
/// parallelism.
fn default_workers() -> usize {
    if let Ok(v) = std::env::var("SIDEWINDER_SWEEP_WORKERS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs sweeps over a pool of scoped worker threads.
#[derive(Debug, Clone)]
pub struct BatchRunner {
    workers: usize,
}

impl Default for BatchRunner {
    fn default() -> Self {
        BatchRunner::new()
    }
}

impl BatchRunner {
    /// A runner with the default worker count (the
    /// `SIDEWINDER_SWEEP_WORKERS` environment variable, else available
    /// parallelism).
    pub fn new() -> BatchRunner {
        BatchRunner {
            workers: default_workers(),
        }
    }

    /// Overrides the worker count (clamped to at least one).
    pub fn workers(mut self, workers: usize) -> BatchRunner {
        self.workers = workers.max(1);
        self
    }

    /// The worker count this runner will use.
    pub fn worker_count(&self) -> usize {
        self.workers
    }

    /// Runs every cell of `spec` and returns outcomes in spec order.
    pub fn run(&self, spec: &SweepSpec) -> BatchReport {
        self.run_jobs(spec.jobs())
    }

    /// Runs pre-enumerated jobs (`jobs[i].index` must equal `i`, as
    /// produced by [`SweepSpec::jobs`]) and returns outcomes in that
    /// order.
    pub fn run_jobs(&self, jobs: Vec<JobSpec>) -> BatchReport {
        let started = Instant::now();
        let workers = self.workers.min(jobs.len()).max(1);
        let slots: Vec<OnceLock<JobOutcome>> = jobs.iter().map(|_| OnceLock::new()).collect();
        let next = AtomicUsize::new(0);

        if workers == 1 {
            // Run on the calling thread: same code path, no pool.
            for job in &jobs {
                let _ = slots[job.index].set(job.run_isolated());
            }
        } else {
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(job) = jobs.get(i) else { break };
                        let _ = slots[i].set(job.run_isolated());
                    });
                }
            });
        }

        BatchReport {
            outcomes: collect_outcomes(slots, &jobs),
            elapsed: started.elapsed(),
            workers,
        }
    }
}

/// Drains the outcome slots in spec order. A slot its worker never filled
/// — only reachable if a job was lost wholesale, since `run_isolated`
/// converts every panic into an outcome — becomes a typed
/// [`JobError::Lost`] failure naming the (app, strategy, trace) cell,
/// never an anonymous panic.
fn collect_outcomes(slots: Vec<OnceLock<JobOutcome>>, jobs: &[JobSpec]) -> Vec<JobOutcome> {
    slots
        .into_iter()
        .zip(jobs)
        .map(|(slot, job)| slot.into_inner().unwrap_or_else(|| job.lost_outcome()))
        .collect()
}

/// A panic caught while mapping one item of [`try_par_map`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// Index of the item whose closure panicked.
    pub index: usize,
    /// The panic payload, rendered to a string.
    pub message: String,
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "item {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for JobPanic {}

/// Order-preserving parallel map with per-item panic isolation — for
/// sweep-shaped work that is not a [`simulate`](crate::engine::simulate)
/// call (pipeline-cost analysis, concurrent-app simulation, trace
/// synthesis, fleet shards). A panicking `f` costs exactly the item it
/// panicked on: every other item still completes, and the panic comes
/// back as a [`JobPanic`] in that item's slot — the same per-cell
/// isolation [`BatchRunner::run`] gives sweep cells.
///
/// UnwindSafe audit: `f` and the items cross the unwind boundary by
/// shared reference only, and a panicked item's partial results are
/// discarded wholesale (its slot holds the error, never a value), so no
/// broken invariant is observable afterwards. `f` is re-invoked for
/// *other* items after a panic; captures whose invariants a panic can
/// break mid-update (e.g. a poisoned lock) are `f`'s own contract, as
/// with [`BatchRunner::run`].
pub fn try_par_map<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<Result<R, JobPanic>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = workers.min(items.len()).max(1);
    let guarded = |i: usize, item: &T| {
        catch_unwind(AssertUnwindSafe(|| f(item))).map_err(|panic| JobPanic {
            index: i,
            message: panic_message(&*panic),
        })
    };
    if workers == 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| guarded(i, item))
            .collect();
    }
    // Slot-based collection (not per-thread vectors joined at the end):
    // each finished item is immediately safe in its slot, so even a
    // worker failing in an unforeseen way cannot take completed results
    // down with it. (`Mutex<Option<R>>` rather than `OnceLock`: the lock
    // is uncontended — each index is claimed by exactly one worker — and
    // it only asks `R: Send` of the result type.)
    let slots: Vec<std::sync::Mutex<Option<Result<R, JobPanic>>>> =
        items.iter().map(|_| std::sync::Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let result = guarded(i, item);
                if let Ok(mut slot) = slots[i].lock() {
                    *slot = Some(result);
                }
            });
        }
    });
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .unwrap_or_else(|| {
                    Err(JobPanic {
                        index: i,
                        message: "item's worker never reported a result".to_string(),
                    })
                })
        })
        .collect()
}

/// Order-preserving parallel map over the runner's worker pool.
///
/// Built on [`try_par_map`], so one panicking item no longer kills the
/// other workers mid-flight: every healthy item completes first, then
/// the first panic (in item order) is re-raised on the calling thread
/// with its original payload message. Callers that need the healthy
/// results alongside the failures should call [`try_par_map`] directly.
///
/// # Panics
///
/// Panics if `f` panicked on any item.
pub fn par_map<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    try_par_map(workers, items, f)
        .into_iter()
        .map(|r| r.unwrap_or_else(|p| panic!("par_map {p}")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sidewinder_ir::Program;
    use sidewinder_sensors::{
        EventKind, GroundTruth, LabeledInterval, Micros, SensorChannel, TimeSeries,
    };

    /// The engine test's toy application, duplicated here to keep the
    /// module self-contained.
    struct ToyApp;

    impl Application for ToyApp {
        fn name(&self) -> &str {
            "toy"
        }
        fn target_kinds(&self) -> Vec<EventKind> {
            vec![EventKind::Headbutt]
        }
        fn classify(&self, trace: &SensorTrace, start: Micros, end: Micros) -> Vec<Micros> {
            let series = trace.channel(SensorChannel::AccX).unwrap();
            let rate = series.rate_hz();
            let offset = (start.as_secs_f64() * rate).ceil() as usize;
            let mut out = Vec::new();
            let mut inside = false;
            for (i, &v) in series.slice(start, end).iter().enumerate() {
                if v > 5.0 && !inside {
                    inside = true;
                    out.push(sidewinder_sensors::time::sample_time(offset + i, rate));
                } else if v <= 5.0 {
                    inside = false;
                }
            }
            out
        }
        fn wake_condition(&self) -> Program {
            "ACC_X -> movingAvg(id=1, params={2});
             1 -> minThreshold(id=2, params={5});
             2 -> OUT;"
                .parse()
                .unwrap()
        }
        fn wake_condition_hub_mw(&self) -> f64 {
            3.6
        }
    }

    /// A classifier that panics — for failure-isolation coverage.
    struct PanickyApp;

    impl Application for PanickyApp {
        fn name(&self) -> &str {
            "panicky"
        }
        fn target_kinds(&self) -> Vec<EventKind> {
            vec![EventKind::Headbutt]
        }
        fn classify(&self, _: &SensorTrace, _: Micros, _: Micros) -> Vec<Micros> {
            panic!("classifier exploded")
        }
        fn wake_condition(&self) -> Program {
            ToyApp.wake_condition()
        }
        fn wake_condition_hub_mw(&self) -> f64 {
            3.6
        }
    }

    fn toy_trace(name: &str) -> SensorTrace {
        let rate = 50.0;
        let n = 120 * 50;
        let mut x = vec![0.0f64; n];
        let mut trace = SensorTrace::new(name);
        let mut gt = GroundTruth::new();
        for (s, e) in [(30u64, 32u64), (90, 92)] {
            for sample in &mut x[(s * 50) as usize..(e * 50) as usize] {
                *sample = 10.0;
            }
            gt.push(
                LabeledInterval::new(
                    EventKind::Headbutt,
                    Micros::from_secs(s),
                    Micros::from_secs(e),
                )
                .unwrap(),
            );
        }
        trace.insert(
            SensorChannel::AccX,
            TimeSeries::from_samples(rate, x).unwrap(),
        );
        *trace.ground_truth_mut() = gt;
        trace
    }

    fn toy_spec() -> SweepSpec {
        SweepSpec::new()
            .app(ToyApp)
            .traces([toy_trace("a"), toy_trace("b"), toy_trace("c")])
            .strategies([
                Strategy::AlwaysAwake,
                Strategy::Oracle,
                Strategy::DutyCycle {
                    sleep: Micros::from_secs(5),
                },
            ])
    }

    #[test]
    fn jobs_enumerate_in_app_major_order() {
        let jobs = toy_spec().jobs();
        assert_eq!(jobs.len(), 9);
        let coords: Vec<(usize, usize, usize)> = jobs
            .iter()
            .map(|j| (j.strategy_idx, j.trace_idx, j.config_idx))
            .collect();
        assert_eq!(
            coords,
            vec![
                (0, 0, 0),
                (0, 1, 0),
                (0, 2, 0),
                (1, 0, 0),
                (1, 1, 0),
                (1, 2, 0),
                (2, 0, 0),
                (2, 1, 0),
                (2, 2, 0),
            ]
        );
        for (i, job) in jobs.iter().enumerate() {
            assert_eq!(job.index, i);
        }
    }

    #[test]
    fn parallel_matches_serial_in_value_and_order() {
        let spec = toy_spec();
        let serial: Vec<SimResult> = spec
            .jobs()
            .iter()
            .map(|j| j.run().result.expect("toy cells succeed"))
            .collect();
        for workers in [1, 2, 8] {
            let report = BatchRunner::new().workers(workers).run(&spec);
            let parallel: Vec<&SimResult> = report.results().collect();
            assert_eq!(parallel.len(), serial.len());
            for (s, p) in serial.iter().zip(parallel) {
                assert_eq!(s, p);
            }
        }
    }

    #[test]
    fn failures_are_isolated_per_cell() {
        // ToyApp's wake condition needs ACC_X; a mic-only trace fails
        // that one cell with a SimError while the others succeed.
        let mut mic_only = SensorTrace::new("mic-only");
        mic_only.insert(
            SensorChannel::Mic,
            TimeSeries::from_samples(8000.0, vec![0.0; 100]).unwrap(),
        );
        let spec = SweepSpec::new()
            .app(ToyApp)
            .trace(toy_trace("ok"))
            .trace(mic_only)
            .strategies([
                Strategy::AlwaysAwake,
                Strategy::HubWake {
                    program: ToyApp.wake_condition(),
                    hub_mw: 3.6,
                    label: "Sw",
                },
            ]);
        let report = BatchRunner::new().workers(4).run(&spec);
        assert_eq!(report.len(), 4);
        // Two failed cells: AA on mic-only panics inside the toy
        // classifier (missing-channel unwrap), Sw on mic-only is a
        // clean SimError. Both recorded, neither fatal.
        assert_eq!(report.failures().count(), 2);
        let failure = report.failures().find(|o| o.strategy == "Sw").unwrap();
        assert_eq!(failure.trace, "mic-only");
        assert_eq!(failure.strategy, "Sw");
        assert_eq!(
            failure.result,
            Err(JobError::Sim(SimError::MissingChannel(SensorChannel::AccX)))
        );
        let aa_mic = &report.outcomes()[1];
        assert_eq!(
            (aa_mic.trace.as_str(), aa_mic.strategy.as_str()),
            ("mic-only", "AA")
        );
        assert!(matches!(aa_mic.result, Err(JobError::Panicked(_))));
    }

    #[test]
    fn classifier_panics_become_job_errors() {
        let spec = SweepSpec::new()
            .app(PanickyApp)
            .trace(toy_trace("t"))
            .strategy(Strategy::AlwaysAwake);
        let report = BatchRunner::new().workers(2).run(&spec);
        assert_eq!(report.len(), 1);
        match &report.outcomes()[0].result {
            Err(JobError::Panicked(msg)) => {
                assert!(msg.contains("classifier exploded"), "msg = {msg:?}")
            }
            other => panic!("expected panic outcome, got {other:?}"),
        }
    }

    #[test]
    fn per_app_strategies_are_evaluated_once_per_app() {
        use std::sync::atomic::AtomicUsize;
        static CALLS: AtomicUsize = AtomicUsize::new(0);
        let spec = SweepSpec::new()
            .app(ToyApp)
            .traces([toy_trace("a"), toy_trace("b")])
            .strategies_per_app(|app| {
                CALLS.fetch_add(1, Ordering::Relaxed);
                vec![Strategy::HubWake {
                    program: app.wake_condition(),
                    hub_mw: app.wake_condition_hub_mw(),
                    label: "Sw",
                }]
            });
        let jobs = spec.jobs();
        assert_eq!(jobs.len(), 2);
        assert_eq!(CALLS.load(Ordering::Relaxed), 1);
        // Both cells share the same compiled program allocation.
        assert!(Arc::ptr_eq(&jobs[0].strategy, &jobs[1].strategy));
        assert!(Arc::ptr_eq(&jobs[0].app, &jobs[1].app));
    }

    #[test]
    fn cell_lookup_groups_traces() {
        let report = BatchRunner::new().workers(3).run(&toy_spec());
        let aa = report.cell("toy", "AA");
        assert_eq!(aa.len(), 3);
        assert!(aa.iter().all(|r| r.strategy == "AA"));
        assert_eq!(report.cell("toy", "nope").len(), 0);
        let all = report.expect_all();
        assert_eq!(all.len(), 9);
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let doubled = par_map(8, &items, |&x| x * 2);
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        // Degenerate pools.
        assert_eq!(par_map(1, &items, |&x| x + 1).len(), 100);
        assert!(par_map(4, &[] as &[u64], |&x| x).is_empty());
    }

    #[test]
    fn try_par_map_isolates_a_panicking_item() {
        // One poisoned item among healthy ones: every healthy item's
        // result survives, the poisoned one carries its panic payload.
        let items: Vec<u64> = (0..50).collect();
        for workers in [1, 2, 8] {
            let results = try_par_map(workers, &items, |&x| {
                if x == 17 {
                    panic!("device {x} exploded");
                }
                x * 3
            });
            assert_eq!(results.len(), 50);
            for (i, r) in results.iter().enumerate() {
                if i == 17 {
                    let err = r.as_ref().expect_err("item 17 panicked");
                    assert_eq!(err.index, 17);
                    assert!(err.message.contains("device 17 exploded"), "{err}");
                } else {
                    assert_eq!(*r, Ok(i as u64 * 3));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "item 3 panicked: kaboom")]
    fn par_map_reraises_the_first_panic_in_item_order() {
        let items: Vec<u64> = (0..8).collect();
        par_map(4, &items, |&x| {
            if x >= 3 {
                panic!("kaboom");
            }
            x
        });
    }

    #[test]
    fn lost_job_slots_become_typed_per_cell_failures() {
        let jobs = toy_spec().jobs();
        let slots: Vec<OnceLock<JobOutcome>> = jobs.iter().map(|_| OnceLock::new()).collect();
        // Fill every slot except job 4 (Oracle on trace "b"), simulating
        // a worker that vanished mid-cell.
        for job in &jobs {
            if job.index != 4 {
                let _ = slots[job.index].set(job.run());
            }
        }
        let outcomes = collect_outcomes(slots, &jobs);
        assert_eq!(outcomes.len(), jobs.len());
        let lost = &outcomes[4];
        assert_eq!(lost.app, "toy");
        assert_eq!(lost.strategy, "Oracle");
        assert_eq!(lost.trace, "b");
        match &lost.result {
            Err(JobError::Lost {
                app,
                strategy,
                trace,
            }) => {
                assert_eq!(
                    (app.as_str(), strategy.as_str(), trace.as_str()),
                    ("toy", "Oracle", "b")
                );
            }
            other => panic!("expected JobError::Lost, got {other:?}"),
        }
        let rendered = lost.result.as_ref().unwrap_err().to_string();
        assert!(rendered.contains("app toy"), "{rendered}");
        assert!(rendered.contains("strategy Oracle"), "{rendered}");
        assert!(rendered.contains("trace b"), "{rendered}");
        // Every other cell still succeeded.
        assert_eq!(outcomes.iter().filter(|o| o.result.is_ok()).count(), 8);
    }

    /// An application that panics *outside* the simulation — in `name()`
    /// during outcome construction — must still degrade to a recorded
    /// per-cell failure, not a poisoned worker.
    struct HostileNameApp {
        armed: std::sync::atomic::AtomicBool,
    }

    impl Application for HostileNameApp {
        fn name(&self) -> &str {
            // First call (outcome construction after a successful run)
            // panics; later calls (failure reporting) succeed so the
            // fallback path is exercised deterministically.
            if !self.armed.swap(true, Ordering::Relaxed) {
                panic!("name() exploded")
            }
            "hostile"
        }
        fn target_kinds(&self) -> Vec<EventKind> {
            vec![EventKind::Headbutt]
        }
        fn classify(&self, _: &SensorTrace, _: Micros, _: Micros) -> Vec<Micros> {
            Vec::new()
        }
        fn wake_condition(&self) -> Program {
            ToyApp.wake_condition()
        }
        fn wake_condition_hub_mw(&self) -> f64 {
            3.6
        }
    }

    #[test]
    fn panics_in_outcome_construction_are_isolated_too() {
        let spec = SweepSpec::new()
            .app(HostileNameApp {
                armed: std::sync::atomic::AtomicBool::new(false),
            })
            .trace(toy_trace("t"))
            .strategy(Strategy::AlwaysAwake);
        let report = BatchRunner::new().workers(2).run(&spec);
        assert_eq!(report.len(), 1);
        let outcome = &report.outcomes()[0];
        match &outcome.result {
            Err(JobError::Panicked(msg)) => {
                assert!(msg.contains("name() exploded"), "msg = {msg:?}")
            }
            other => panic!("expected panic outcome, got {other:?}"),
        }
        assert_eq!(outcome.app, "hostile");
    }

    #[test]
    fn worker_count_env_override() {
        // Explicit override beats everything.
        assert_eq!(BatchRunner::new().workers(3).worker_count(), 3);
        assert_eq!(BatchRunner::new().workers(0).worker_count(), 1);
    }

    #[test]
    fn empty_sweep_is_fine() {
        let report = BatchRunner::new().run(&SweepSpec::new());
        assert!(report.is_empty());
        assert_eq!(report.expect_all().len(), 0);
    }
}
