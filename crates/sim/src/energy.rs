//! Per-node energy attribution for simulated runs.
//!
//! A [`SimResult`] reports *total* energy (phone-state energies plus the
//! hub's flat draw); this module splits it by cause. The hub budget —
//! `hub_mw × duration` — is divided using observed work: each node's
//! share is its cost-model flops-per-input times its counted executions
//! at a fixed energy-per-flop, the link's share is counted frames times
//! the modelled frame transfer time at UART-active power, and whatever
//! the estimates don't claim closes into the MCU's idle floor (see
//! [`EnergyLedger::close`] for the overshoot guard). The phone-state
//! energies reuse the exact arithmetic of
//! [`PowerBreakdown::average_power_mw`], so the ledger's bottom line
//! reproduces the result's average power times duration to within f64
//! rounding.

use crate::app::Application;
use crate::engine::{simulate_traced, simulate_with_faults_traced, SimConfig, SimError, SimResult};
use crate::power::{PhonePowerProfile, PowerBreakdown};
use crate::strategy::Strategy;
use sidewinder_hub::cost::PipelineCost;
use sidewinder_hub::fault::{FaultSchedule, WAKE_FRAME_BYTES};
use sidewinder_hub::link::SerialLink;
use sidewinder_hub::runtime::ChannelRates;
use sidewinder_ir::Program;
use sidewinder_obs::{CounterSink, EnergyLedger};
use sidewinder_sensors::SensorTrace;

// The constants live in `sidewinder_hub::energy` so the static
// certifier can price its energy ceiling from the same figures the
// ledger charges; this re-export keeps `sim::energy::HUB_NJ_PER_FLOP`
// the canonical spelling in experiment code.
pub use sidewinder_hub::energy::{HUB_NJ_PER_FLOP, LINK_ACTIVE_MW};

/// A simulation run with its energy split and raw counters.
#[derive(Debug, Clone)]
pub struct AttributedRun {
    /// The ordinary simulation outcome, bit-identical to an untraced run.
    pub result: SimResult,
    /// Where the run's joules went.
    pub ledger: EnergyLedger,
    /// The raw per-node counters and link/fault tallies behind the split.
    pub counters: CounterSink,
}

/// Runs `app` under `strategy` with counters attached and closes an
/// energy ledger over the outcome.
///
/// # Errors
///
/// Returns [`SimError`] if the underlying simulation does.
pub fn attribute_energy(
    trace: &SensorTrace,
    app: &dyn Application,
    strategy: &Strategy,
    profile: &PhonePowerProfile,
    config: &SimConfig,
) -> Result<AttributedRun, SimError> {
    let mut counters = CounterSink::new();
    let result = simulate_traced(trace, app, strategy, profile, config, &mut counters)?;
    let ledger = close_ledger(&result.breakdown, profile, strategy, trace, &counters);
    Ok(AttributedRun {
        result,
        ledger,
        counters,
    })
}

/// [`attribute_energy`] under a fault schedule: retried and lost frames
/// show up as link energy, resets as extra executions after warm-up
/// replays.
///
/// # Errors
///
/// Returns [`SimError`] if the underlying simulation does.
pub fn attribute_energy_with_faults(
    trace: &SensorTrace,
    app: &dyn Application,
    strategy: &Strategy,
    profile: &PhonePowerProfile,
    config: &SimConfig,
    schedule: &FaultSchedule,
) -> Result<AttributedRun, SimError> {
    let mut counters = CounterSink::new();
    let result = simulate_with_faults_traced(
        trace,
        app,
        strategy,
        profile,
        config,
        schedule,
        &mut counters,
    )?;
    let ledger = close_ledger(&result.breakdown, profile, strategy, trace, &counters);
    Ok(AttributedRun {
        result,
        ledger,
        counters,
    })
}

/// The hub program a strategy runs, if any.
fn program_of(strategy: &Strategy) -> Option<&Program> {
    match strategy {
        Strategy::HubWake { program, .. } | Strategy::HubWakeDegraded { program, .. } => {
            Some(program)
        }
        _ => None,
    }
}

fn close_ledger(
    breakdown: &PowerBreakdown,
    profile: &PhonePowerProfile,
    strategy: &Strategy,
    trace: &SensorTrace,
    counters: &CounterSink,
) -> EnergyLedger {
    let duration_s = breakdown.total().as_secs_f64();
    let hub_total_j = breakdown.hub_mw * duration_s / 1_000.0;

    // Raw per-node estimates: cost-model flops × observed executions.
    let mut raw_nodes: Vec<(String, u64, f64)> = Vec::new();
    if let Some(program) = program_of(strategy) {
        let mut rates = ChannelRates::default();
        for &channel in &program.channels() {
            if let Some(series) = trace.channel(channel) {
                rates = rates.with_rate(channel, series.rate_hz());
            }
        }
        let cost = PipelineCost::analyze(program, &rates);
        for (i, (_, id, kind)) in program.nodes().enumerate() {
            let executions = counters.nodes().get(i).map_or(0, |n| n.executions);
            let flops = cost.nodes().get(i).map_or(0.0, |c| c.flops_per_input);
            raw_nodes.push((
                format!("{}#{}", kind.ir_name(), id.0),
                executions,
                flops * executions as f64 * HUB_NJ_PER_FLOP * 1e-9,
            ));
        }
    }

    // Raw link estimate: counted frames at the modelled UART transfer
    // time and active power.
    let frame_s = SerialLink::NEXUS4_UART
        .framed_transfer_time(WAKE_FRAME_BYTES)
        .as_secs_f64();
    let link_raw_j = counters.frames_sent as f64 * frame_s * LINK_ACTIVE_MW / 1_000.0;

    // Phone-state energies: the same per-state products that
    // average_power_mw sums, divided by 1000 (mJ → J).
    let phone_awake_j = profile.awake_mw * breakdown.awake.as_secs_f64() / 1_000.0;
    let phone_asleep_j = profile.asleep_mw * breakdown.asleep.as_secs_f64() / 1_000.0;
    let phone_transition_j = (profile.wake_transition_mw * breakdown.waking.as_secs_f64()
        + profile.sleep_transition_mw * breakdown.sleeping.as_secs_f64())
        / 1_000.0;

    EnergyLedger::close(
        hub_total_j,
        raw_nodes,
        link_raw_j,
        phone_awake_j,
        phone_asleep_j,
        phone_transition_j,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use sidewinder_sensors::Micros;
    use sidewinder_sensors::{EventKind, LabeledInterval, SensorChannel, TimeSeries};

    struct ToyApp;

    impl Application for ToyApp {
        fn name(&self) -> &str {
            "toy"
        }
        fn target_kinds(&self) -> Vec<EventKind> {
            vec![EventKind::Headbutt]
        }
        fn classify(&self, _trace: &SensorTrace, start: Micros, _end: Micros) -> Vec<Micros> {
            vec![start]
        }
        fn wake_condition(&self) -> Program {
            "ACC_X -> movingAvg(id=1, params={2});
             1 -> minThreshold(id=2, params={5});
             2 -> OUT;"
                .parse()
                .unwrap()
        }
        fn wake_condition_hub_mw(&self) -> f64 {
            3.6
        }
    }

    fn toy_trace() -> SensorTrace {
        let mut x = vec![0.0f64; 60 * 50];
        for sample in &mut x[1500..1600] {
            *sample = 10.0;
        }
        let mut trace = SensorTrace::new("toy");
        trace.insert(
            SensorChannel::AccX,
            TimeSeries::from_samples(50.0, x).unwrap(),
        );
        trace.ground_truth_mut().push(
            LabeledInterval::new(
                EventKind::Headbutt,
                Micros::from_secs(30),
                Micros::from_secs(32),
            )
            .unwrap(),
        );
        trace
    }

    fn sidewinder() -> Strategy {
        Strategy::HubWake {
            program: ToyApp.wake_condition(),
            hub_mw: 3.6,
            label: "Sw",
        }
    }

    #[test]
    fn attribution_reproduces_the_untraced_result() {
        let trace = toy_trace();
        let config = SimConfig::default();
        let plain = simulate(
            &trace,
            &ToyApp,
            &sidewinder(),
            &PhonePowerProfile::NEXUS4,
            &config,
        )
        .unwrap();
        let attributed = attribute_energy(
            &trace,
            &ToyApp,
            &sidewinder(),
            &PhonePowerProfile::NEXUS4,
            &config,
        )
        .unwrap();
        assert_eq!(plain, attributed.result);
    }

    #[test]
    fn ledger_total_matches_average_power_times_duration() {
        let trace = toy_trace();
        let run = attribute_energy(
            &trace,
            &ToyApp,
            &sidewinder(),
            &PhonePowerProfile::NEXUS4,
            &SimConfig::default(),
        )
        .unwrap();
        let duration_s = run.result.breakdown.total().as_secs_f64();
        let expected_j = run.result.average_power_mw * duration_s / 1_000.0;
        assert!(
            (run.ledger.total_j() - expected_j).abs() < 1e-9,
            "ledger {} J vs result {} J",
            run.ledger.total_j(),
            expected_j
        );
    }

    #[test]
    fn nodes_are_labeled_and_counted() {
        let trace = toy_trace();
        let run = attribute_energy(
            &trace,
            &ToyApp,
            &sidewinder(),
            &PhonePowerProfile::NEXUS4,
            &SimConfig::default(),
        )
        .unwrap();
        assert_eq!(run.ledger.nodes.len(), 2);
        assert_eq!(run.ledger.nodes[0].label, "movingAvg#1");
        assert_eq!(run.ledger.nodes[1].label, "minThreshold#2");
        // Every sample executes the movingAvg entry node.
        assert_eq!(run.ledger.nodes[0].executions, 3000);
        assert!(run.ledger.nodes[0].joules > 0.0);
        // One delivered link frame per wake.
        assert_eq!(run.counters.frames_sent, run.counters.wakes);
    }

    #[test]
    fn phone_only_strategy_has_no_hub_rows() {
        let trace = toy_trace();
        let run = attribute_energy(
            &trace,
            &ToyApp,
            &Strategy::AlwaysAwake,
            &PhonePowerProfile::NEXUS4,
            &SimConfig::default(),
        )
        .unwrap();
        assert!(run.ledger.nodes.is_empty());
        assert_eq!(run.ledger.hub_j(), 0.0);
        assert!(run.ledger.phone_awake_j > 0.0);
    }
}
