//! Parser for the textual intermediate language.
//!
//! Grammar (whitespace-insensitive inside statements, `#`-to-end-of-line
//! comments allowed):
//!
//! ```text
//! program   := { statement }
//! statement := sources "->" target ";"
//! sources   := source { "," source }
//! source    := CHANNEL | NODE_ID
//! target    := "OUT"
//!            | NAME "(" "id" "=" NODE_ID [ "," "params" "=" "{" numbers "}" ] ")"
//! numbers   := [ NUMBER { "," NUMBER } ]
//! ```

use crate::ast::{AlgorithmKind, NodeId, Program, Source, Stmt};
use sidewinder_sensors::SensorChannel;

/// A parse failure with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the failure.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a textual IR program.
///
/// # Errors
///
/// Returns a [`ParseError`] locating the first malformed statement.
pub fn parse(text: &str) -> Result<Program, ParseError> {
    let mut program = Program::new();
    // Statements are `;`-terminated; track line numbers by counting
    // newlines seen before each statement's start.
    let mut line = 1usize;
    let mut rest = text;
    loop {
        // Skip whitespace and comments between statements.
        loop {
            let trimmed = rest.trim_start_matches(|c: char| {
                if c == '\n' {
                    line += 1;
                    true
                } else {
                    c.is_whitespace()
                }
            });
            if let Some(after) = trimmed.strip_prefix('#') {
                let end = after.find('\n').map(|i| i + 1).unwrap_or(after.len());
                if after[..end].contains('\n') {
                    line += 1;
                }
                rest = &after[end..];
            } else {
                rest = trimmed;
                break;
            }
        }
        if rest.is_empty() {
            break;
        }
        let Some(semi) = rest.find(';') else {
            return Err(ParseError {
                line,
                message: "statement missing terminating ';'".to_string(),
            });
        };
        let stmt_text = &rest[..semi];
        let stmt_line = line;
        line += stmt_text.matches('\n').count();
        rest = &rest[semi + 1..];
        let stmt = parse_statement(stmt_text, stmt_line)?;
        let line = u32::try_from(stmt_line).unwrap_or(u32::MAX);
        match stmt {
            Stmt::Node {
                sources, id, kind, ..
            } => program.push_node_at(sources, id, kind, line),
            Stmt::Out { source, .. } => program.push_out_at(source, line),
        }
    }
    Ok(program)
}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

fn parse_statement(text: &str, line: usize) -> Result<Stmt, ParseError> {
    let Some((lhs, rhs)) = text.split_once("->") else {
        return Err(err(line, "statement missing '->'"));
    };
    let rhs = rhs.trim();
    let stmt_line = u32::try_from(line).unwrap_or(u32::MAX);
    if rhs == "OUT" {
        let source = parse_node_id(lhs.trim(), line)?;
        return Ok(Stmt::Out {
            source,
            line: stmt_line,
        });
    }
    let sources = lhs
        .split(',')
        .map(|s| parse_source(s.trim(), line))
        .collect::<Result<Vec<_>, _>>()?;
    if sources.is_empty() {
        return Err(err(line, "statement has no sources"));
    }
    let (id, kind) = parse_target(rhs, line)?;
    Ok(Stmt::Node {
        sources,
        id,
        kind,
        line: stmt_line,
    })
}

fn parse_source(text: &str, line: usize) -> Result<Source, ParseError> {
    if text.is_empty() {
        return Err(err(line, "empty source"));
    }
    if let Some(channel) = SensorChannel::from_ir_name(text) {
        return Ok(Source::Channel(channel));
    }
    if text.chars().all(|c| c.is_ascii_digit()) {
        return Ok(Source::Node(parse_node_id(text, line)?));
    }
    Err(err(line, format!("unknown source {text:?}")))
}

fn parse_node_id(text: &str, line: usize) -> Result<NodeId, ParseError> {
    text.parse::<u32>()
        .map(NodeId)
        .map_err(|_| err(line, format!("invalid node id {text:?}")))
}

fn parse_target(text: &str, line: usize) -> Result<(NodeId, AlgorithmKind), ParseError> {
    let Some(open) = text.find('(') else {
        return Err(err(line, "target missing '('"));
    };
    let name = text[..open].trim();
    if name.is_empty() {
        return Err(err(line, "target missing algorithm name"));
    }
    let Some(stripped) = text[open + 1..].trim_end().strip_suffix(')') else {
        return Err(err(line, "target missing closing ')'"));
    };

    // Split `id=N` from the optional `, params={…}` clause.
    let (id_part, params_part) = match stripped.find(',') {
        Some(comma) => (&stripped[..comma], Some(stripped[comma + 1..].trim())),
        None => (stripped, None),
    };
    let id_part = id_part.trim();
    let Some(id_text) = id_part.strip_prefix("id") else {
        return Err(err(line, format!("expected 'id=...', found {id_part:?}")));
    };
    let Some(id_text) = id_text.trim_start().strip_prefix('=') else {
        return Err(err(line, "expected '=' after 'id'"));
    };
    let id = parse_node_id(id_text.trim(), line)?;

    let params = match params_part {
        None => Vec::new(),
        Some(clause) => {
            let Some(body) = clause.strip_prefix("params") else {
                return Err(err(
                    line,
                    format!("expected 'params={{...}}', found {clause:?}"),
                ));
            };
            let body = body.trim_start();
            let Some(body) = body.strip_prefix('=') else {
                return Err(err(line, "expected '=' after 'params'"));
            };
            let body = body.trim();
            let Some(body) = body.strip_prefix('{').and_then(|b| b.strip_suffix('}')) else {
                return Err(err(line, "params must be enclosed in '{...}'"));
            };
            let body = body.trim();
            if body.is_empty() {
                Vec::new()
            } else {
                body.split(',')
                    .map(|p| {
                        p.trim()
                            .parse::<f64>()
                            .map_err(|_| err(line, format!("invalid parameter {:?}", p.trim())))
                    })
                    .collect::<Result<Vec<_>, _>>()?
            }
        }
    };

    let kind = AlgorithmKind::decode(name, &params).ok_or_else(|| {
        err(
            line,
            format!(
                "unknown algorithm {name:?} with {} parameter(s)",
                params.len()
            ),
        )
    })?;
    Ok((id, kind))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{StatFn, WindowShapeParam};

    const PAPER_EXAMPLE: &str = "\
ACC_X -> movingAvg(id=1, params={10});
ACC_Y -> movingAvg(id=2, params={10});
ACC_Z -> movingAvg(id=3, params={10});
1,2,3 -> vectorMagnitude(id=4);
4 -> minThreshold(id=5, params={15});
5 -> OUT;
";

    #[test]
    fn parses_paper_example() {
        let p = parse(PAPER_EXAMPLE).unwrap();
        assert_eq!(p.len(), 6);
        assert_eq!(p.out_source(), Some(NodeId(5)));
        let nodes: Vec<_> = p.nodes().collect();
        assert_eq!(nodes[0].2, &AlgorithmKind::MovingAvg { window: 10 });
        assert_eq!(nodes[3].2, &AlgorithmKind::VectorMagnitude);
        assert_eq!(nodes[3].0.len(), 3);
        assert_eq!(nodes[4].2, &AlgorithmKind::MinThreshold { threshold: 15.0 });
    }

    #[test]
    fn print_parse_round_trip() {
        let p = parse(PAPER_EXAMPLE).unwrap();
        assert_eq!(p.to_string(), PAPER_EXAMPLE);
        let again = parse(&p.to_string()).unwrap();
        assert_eq!(again, p);
    }

    #[test]
    fn parses_whitespace_and_comments() {
        let text = "\
# significant motion, single axis
ACC_X   ->   movingAvg( id = 7 , params = { 10 } )  ;
  # then threshold
7 -> minThreshold(id=8, params={ 15.5 });
8 -> OUT;";
        let p = parse(text).unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(
            p.nodes().nth(1).unwrap().2,
            &AlgorithmKind::MinThreshold { threshold: 15.5 }
        );
    }

    #[test]
    fn parses_multiline_statement() {
        let text = "ACC_X ->\n  movingAvg(id=1, params={10});\n1 -> OUT;";
        assert!(parse(text).is_ok());
    }

    #[test]
    fn parses_empty_program() {
        assert!(parse("").unwrap().is_empty());
        assert!(parse("  \n# only a comment\n").unwrap().is_empty());
    }

    #[test]
    fn parses_parameterless_algorithm_without_params_clause() {
        let text = "MIC -> window(id=1, params={256, 256, 1});\n1 -> fft(id=2);\n2 -> OUT;";
        let p = parse(text).unwrap();
        let nodes: Vec<_> = p.nodes().collect();
        assert_eq!(
            nodes[0].2,
            &AlgorithmKind::Window {
                size: 256,
                hop: 256,
                shape: WindowShapeParam::Hamming
            }
        );
        assert_eq!(nodes[1].2, &AlgorithmKind::Fft);
    }

    #[test]
    fn parses_stat_functions() {
        let text = "MIC -> window(id=1, params={16, 16, 0});\n1 -> variance(id=2);\n2 -> OUT;";
        let p = parse(text).unwrap();
        assert_eq!(
            p.nodes().nth(1).unwrap().2,
            &AlgorithmKind::Stat(StatFn::Variance)
        );
    }

    #[test]
    fn parses_empty_params_braces() {
        let text =
            "MIC -> window(id=1, params={16, 16, 0});\n1 -> fft(id=2, params={});\n2 -> OUT;";
        assert!(parse(text).is_ok());
    }

    #[test]
    fn statements_carry_their_source_lines() {
        let text = "\
# comment
ACC_X -> movingAvg(id=1, params={10});

1 ->
  minThreshold(id=2, params={15});
2 -> OUT;";
        let p = parse(text).unwrap();
        assert_eq!(p.line_of(NodeId(1)), Some(2));
        // The multi-line statement is attributed to its starting line.
        assert_eq!(p.line_of(NodeId(2)), Some(4));
        assert_eq!(p.out_line(), Some(6));
    }

    #[test]
    fn error_reports_line_numbers() {
        let text = "ACC_X -> movingAvg(id=1, params={10});\ngarbage here;\n";
        let e = parse(text).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("line 2"));
    }

    #[test]
    fn rejects_missing_semicolon() {
        let e = parse("ACC_X -> movingAvg(id=1, params={10})").unwrap_err();
        assert!(e.message.contains("';'"));
    }

    #[test]
    fn rejects_missing_arrow() {
        let e = parse("ACC_X movingAvg(id=1);").unwrap_err();
        assert!(e.message.contains("->"));
    }

    #[test]
    fn rejects_unknown_source() {
        let e = parse("GYRO_X -> movingAvg(id=1, params={10});").unwrap_err();
        assert!(e.message.contains("GYRO_X"));
    }

    #[test]
    fn rejects_unknown_algorithm() {
        let e = parse("ACC_X -> teleport(id=1);").unwrap_err();
        assert!(e.message.contains("teleport"));
    }

    #[test]
    fn rejects_wrong_param_count() {
        let e = parse("ACC_X -> movingAvg(id=1);").unwrap_err();
        assert!(e.message.contains("movingAvg"));
    }

    #[test]
    fn rejects_bad_id() {
        assert!(parse("ACC_X -> movingAvg(id=x, params={10});").is_err());
        assert!(parse("ACC_X -> movingAvg(params={10});").is_err());
    }

    #[test]
    fn rejects_bad_out_source() {
        assert!(parse("ACC_X -> OUT;").is_err());
    }

    #[test]
    fn rejects_bad_param_number() {
        let e = parse("ACC_X -> movingAvg(id=1, params={ten});").unwrap_err();
        assert!(e.message.contains("ten"));
    }

    #[test]
    fn rejects_missing_paren() {
        assert!(parse("ACC_X -> movingAvg id=1;").is_err());
        assert!(parse("ACC_X -> movingAvg(id=1;").is_err());
    }

    #[test]
    fn negative_params_parse() {
        let text = "ACC_Y -> movingAvg(id=1, params={5});\n1 -> bandThreshold(id=2, params={-6.75, -3.75});\n2 -> OUT;";
        let p = parse(text).unwrap();
        assert_eq!(
            p.nodes().nth(1).unwrap().2,
            &AlgorithmKind::BandThreshold {
                lo: -6.75,
                hi: -3.75
            }
        );
    }
}
