//! Conceptual-representation rendering (the paper's Fig. 2b).
//!
//! Alongside the Java API form (Fig. 2a) and the intermediate code
//! (Fig. 2c), the paper draws wake-up conditions as boxed dataflow
//! diagrams. [`render`] produces that view as ASCII art: one column per
//! processing branch, merge points where aggregators join branches, and
//! `OUT` at the bottom.
//!
//! ```text
//!   ACC_X       ACC_Y       ACC_Z
//!     |           |           |
//! [movingAvg] [movingAvg] [movingAvg]
//!     |           |           |
//!     +-----------+-----------+
//!                 |
//!         [vectorMagnitude]
//!                 |
//!          [minThreshold]
//!                 |
//!                OUT
//! ```

use crate::ast::{NodeId, Program, Source};
use std::collections::BTreeMap;

/// Renders the conceptual diagram of a program.
///
/// Works for the pipeline shapes the compiler produces (parallel
/// branches merged by aggregators into a single tail). Programs with
/// more exotic sharing (e.g. fused multi-consumer nodes) still render,
/// with shared nodes repeated per consuming branch.
pub fn render(program: &Program) -> String {
    // Build, for every node, its rendered label.
    let label = |id: NodeId| -> String {
        program
            .nodes()
            .find(|(_, nid, _)| *nid == id)
            .map(|(_, _, kind)| format!("[{}]", kind.ir_name()))
            .unwrap_or_else(|| format!("[#{id}]"))
    };

    // Reconstruct the branch columns: walk backwards from OUT, splitting
    // at the first multi-input node.
    let Some(out) = program.out_source() else {
        return String::from("(no OUT)\n");
    };
    let inputs: BTreeMap<NodeId, Vec<Source>> = program
        .nodes()
        .map(|(sources, id, _)| (id, sources.to_vec()))
        .collect();

    // Tail: chain of single-input nodes from OUT up to the merge point
    // (or to a channel).
    let mut tail: Vec<NodeId> = Vec::new();
    let mut cursor = out;
    let branch_roots: Vec<Source> = loop {
        tail.push(cursor);
        match inputs.get(&cursor).map(Vec::as_slice) {
            Some([Source::Node(single)]) => cursor = *single,
            Some([Source::Channel(_)]) => {
                break vec![inputs[&cursor][0]];
            }
            Some(multi) => break multi.to_vec(),
            None => break Vec::new(),
        }
    };
    tail.reverse();

    // If the last tail element consumed a single channel, the "branches"
    // are that channel alone and the tail keeps every node.
    let single_branch = matches!(branch_roots.as_slice(), [Source::Channel(_)]);

    // Column per branch: channel name at top, then the chain of nodes
    // leading to the merge input.
    let mut columns: Vec<Vec<String>> = Vec::new();
    if single_branch {
        if let [Source::Channel(c)] = branch_roots.as_slice() {
            columns.push(vec![c.ir_name().to_string()]);
        }
    } else {
        for root in &branch_roots {
            let mut column = Vec::new();
            let mut node = match root {
                Source::Channel(c) => {
                    columns.push(vec![c.ir_name().to_string()]);
                    continue;
                }
                Source::Node(n) => *n,
            };
            // Walk up the chain to the channel.
            let mut chain = Vec::new();
            loop {
                chain.push(label(node));
                match inputs.get(&node).map(Vec::as_slice) {
                    Some([Source::Node(up)]) => node = *up,
                    Some([Source::Channel(c)]) => {
                        chain.push(c.ir_name().to_string());
                        break;
                    }
                    _ => break,
                }
            }
            chain.reverse();
            column.extend(chain);
            columns.push(column);
        }
    }

    // Lay out the columns side by side.
    let col_width = columns
        .iter()
        .flatten()
        .map(|s| s.len())
        .chain(tail.iter().map(|id| label(*id).len()))
        .max()
        .unwrap_or(3)
        + 2;
    let height = columns.iter().map(Vec::len).max().unwrap_or(0);
    let mut out_text = String::new();
    let center = |s: &str| format!("{s:^col_width$}");
    for row in 0..height {
        let mut line_nodes = String::new();
        let mut line_pipes = String::new();
        for column in &columns {
            line_nodes.push_str(&center(column.get(row).map(String::as_str).unwrap_or("")));
            line_pipes.push_str(&center(if row < column.len() { "|" } else { "" }));
        }
        out_text.push_str(line_nodes.trim_end());
        out_text.push('\n');
        out_text.push_str(line_pipes.trim_end());
        out_text.push('\n');
    }

    // Merge rail when several branches join.
    let total_width = col_width * columns.len().max(1);
    if columns.len() > 1 {
        let mut rail = String::new();
        for (i, _) in columns.iter().enumerate() {
            let marker = "+";
            let pad = col_width / 2;
            if i == 0 {
                rail.push_str(&" ".repeat(pad));
                rail.push_str(marker);
            } else {
                rail.push_str(&"-".repeat(col_width - 1));
                rail.push_str(marker);
            }
        }
        out_text.push_str(rail.trim_end());
        out_text.push('\n');
        out_text.push_str(format!("{:^total_width$}", "|").trim_end());
        out_text.push('\n');
    }

    // The tail chain, centered on the full width.
    for (i, id) in tail.iter().enumerate() {
        out_text.push_str(format!("{:^total_width$}", label(*id)).trim_end());
        out_text.push('\n');
        if i + 1 < tail.len() {
            out_text.push_str(format!("{:^total_width$}", "|").trim_end());
            out_text.push('\n');
        }
    }
    out_text.push_str(format!("{:^total_width$}", "|").trim_end());
    out_text.push('\n');
    out_text.push_str(format!("{:^total_width$}", "OUT").trim_end());
    out_text.push('\n');
    out_text
}

#[cfg(test)]
mod tests {
    use super::*;

    fn program(text: &str) -> Program {
        text.parse().unwrap()
    }

    #[test]
    fn renders_the_fig2_shape() {
        let p = program(
            "ACC_X -> movingAvg(id=1, params={10});
             ACC_Y -> movingAvg(id=2, params={10});
             ACC_Z -> movingAvg(id=3, params={10});
             1,2,3 -> vectorMagnitude(id=4);
             4 -> minThreshold(id=5, params={15});
             5 -> OUT;",
        );
        let art = render(&p);
        // All three channels on the first line.
        let first = art.lines().next().unwrap();
        assert!(first.contains("ACC_X") && first.contains("ACC_Y") && first.contains("ACC_Z"));
        // Branch algorithm row shows three boxes.
        assert_eq!(art.matches("[movingAvg]").count(), 3);
        // The tail follows in order and ends at OUT.
        let vm = art.find("[vectorMagnitude]").unwrap();
        let thr = art.find("[minThreshold]").unwrap();
        let out = art.rfind("OUT").unwrap();
        assert!(vm < thr && thr < out);
    }

    #[test]
    fn renders_single_branch_pipelines() {
        let p = program(
            "MIC -> window(id=1, params={256, 256, 0});
             1 -> rms(id=2);
             2 -> minThreshold(id=3, params={0.03});
             3 -> OUT;",
        );
        let art = render(&p);
        let mic = art.find("MIC").unwrap();
        let window = art.find("[window]").unwrap();
        let rms = art.find("[rms]").unwrap();
        let out = art.rfind("OUT").unwrap();
        assert!(mic < window && window < rms && rms < out, "{art}");
    }

    #[test]
    fn renders_branches_with_different_depths() {
        let p = program(
            "MIC -> window(id=1, params={512, 512, 0});
             1 -> variance(id=2);
             2 -> minThreshold(id=3, params={0.002});
             MIC -> window(id=4, params={2048, 2048, 0});
             4 -> zcrVariance(id=5, params={8});
             5 -> maxThreshold(id=6, params={0.005});
             3,6 -> allOf(id=7);
             7 -> OUT;",
        );
        let art = render(&p);
        assert!(art.contains("[variance]"));
        assert!(art.contains("[zcrVariance]"));
        assert!(art.contains("[allOf]"));
        assert!(art.trim_end().ends_with("OUT"));
    }

    #[test]
    fn degenerate_program_renders_placeholder() {
        assert_eq!(render(&Program::new()), "(no OUT)\n");
    }
}
