//! The Sidewinder intermediate language.
//!
//! Wake-up conditions cross the phone/hub boundary as a small textual
//! dataflow language (paper §3.3, Fig. 2c):
//!
//! ```text
//! ACC_X -> movingAvg(id=1, params={10});
//! ACC_Y -> movingAvg(id=2, params={10});
//! ACC_Z -> movingAvg(id=3, params={10});
//! 1,2,3 -> vectorMagnitude(id=4);
//! 4 -> minThreshold(id=5, params={15});
//! 5 -> OUT;
//! ```
//!
//! The IR decouples the sensor manager (and thus the application's
//! programming language) from the hub hardware: any hub that can interpret
//! the IR can run any wake-up condition. This crate provides:
//!
//! * [`ast`] — the program representation ([`Program`], [`Stmt`],
//!   [`AlgorithmKind`]) and parameter encoding;
//! * [`parse`] — a hand-rolled lexer/parser for the textual form;
//! * the canonical printer (`Display for Program`), such that
//!   `parse ∘ print` is the identity;
//! * [`validate`] — structural checks a hub performs before admitting a
//!   program (unique ids, define-before-use, arity, value types, parameter
//!   ranges, single `OUT`, no dead nodes).
//!
//! # Example
//!
//! ```
//! use sidewinder_ir::Program;
//!
//! let text = "\
//! ACC_X -> movingAvg(id=1, params={10});
//! 1 -> minThreshold(id=2, params={15});
//! 2 -> OUT;
//! ";
//! let program: Program = text.parse()?;
//! program.validate()?;
//! assert_eq!(program.to_string(), text);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod ast;
pub mod diagram;
pub mod parse;
pub mod rewrite;
pub mod validate;

pub use ast::{AlgorithmKind, NodeId, Program, Source, StatFn, Stmt, ValueType, WindowShapeParam};
pub use parse::ParseError;
pub use rewrite::{canonicalize_ids, live_from_out, Rewrite, StructuralKey};
pub use validate::{validate_located, LocatedValidateError, ValidateError};
