//! Program representation for the intermediate language.

use sidewinder_sensors::SensorChannel;

/// Identifier of an algorithm instance within one program.
///
/// Ids are assigned by the sensor manager when a pipeline is compiled
/// (paper §3.3) and must be unique and non-zero within a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The kind of value flowing along an edge of the dataflow graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueType {
    /// One number per sample or per window (sensor samples, features,
    /// admission-control outputs).
    Scalar,
    /// A window of real samples or a magnitude spectrum.
    Vector,
    /// A complex spectrum, produced by `fft` and consumed by `ifft` or
    /// `spectralMagnitude`.
    Spectrum,
}

impl std::fmt::Display for ValueType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ValueType::Scalar => "scalar",
            ValueType::Vector => "vector",
            ValueType::Spectrum => "spectrum",
        };
        f.write_str(s)
    }
}

/// Window taper selector carried in IR parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WindowShapeParam {
    /// Rectangular (no taper); parameter value `0`.
    #[default]
    Rectangular,
    /// Hamming taper; parameter value `1`.
    Hamming,
    /// Hann taper; parameter value `2`.
    Hann,
}

impl WindowShapeParam {
    /// Encodes the shape as the numeric IR parameter.
    pub fn encode(self) -> f64 {
        match self {
            WindowShapeParam::Rectangular => 0.0,
            WindowShapeParam::Hamming => 1.0,
            WindowShapeParam::Hann => 2.0,
        }
    }

    /// Decodes a numeric IR parameter back to a shape.
    pub fn decode(v: f64) -> Option<Self> {
        match v as i64 {
            0 if v == 0.0 => Some(WindowShapeParam::Rectangular),
            1 if v == 1.0 => Some(WindowShapeParam::Hamming),
            2 if v == 2.0 => Some(WindowShapeParam::Hann),
            _ => None,
        }
    }
}

/// The statistical reductions offered by the platform's "set of statistical
/// functions" (paper §3.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StatFn {
    /// Arithmetic mean of the window.
    Mean,
    /// Population variance of the window.
    Variance,
    /// Population standard deviation of the window.
    StdDev,
    /// Mean absolute amplitude of the window.
    MeanAbs,
    /// Root mean square of the window.
    Rms,
    /// Energy `Σx²` of the window.
    Energy,
    /// Minimum sample of the window.
    Min,
    /// Maximum sample of the window.
    Max,
    /// `max − min` of the window.
    PeakToPeak,
}

impl StatFn {
    /// All statistical functions.
    pub const ALL: [StatFn; 9] = [
        StatFn::Mean,
        StatFn::Variance,
        StatFn::StdDev,
        StatFn::MeanAbs,
        StatFn::Rms,
        StatFn::Energy,
        StatFn::Min,
        StatFn::Max,
        StatFn::PeakToPeak,
    ];

    /// The IR name of this reduction.
    pub fn ir_name(self) -> &'static str {
        match self {
            StatFn::Mean => "mean",
            StatFn::Variance => "variance",
            StatFn::StdDev => "stdDev",
            StatFn::MeanAbs => "meanAbs",
            StatFn::Rms => "rms",
            StatFn::Energy => "energy",
            StatFn::Min => "min",
            StatFn::Max => "max",
            StatFn::PeakToPeak => "peakToPeak",
        }
    }
}

/// An algorithm instance's kind and parameters.
///
/// This is the complete menu the platform offers (paper §3.6): windowing,
/// transforms, data filtering, feature extraction, and admission control,
/// plus the aggregation operators (`vectorMagnitude`, `allOf`, `anyOf`)
/// that merge processing branches, and `sustained` which expresses
/// duration conditions such as the siren detector's "longer than 650 ms".
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AlgorithmKind {
    /// Partition a scalar stream into windows of `size` samples emitted
    /// every `hop` samples with taper `shape`. Scalar → Vector.
    Window {
        /// Window length in samples.
        size: u32,
        /// Stride between emitted windows in samples.
        hop: u32,
        /// Taper applied to each window.
        shape: WindowShapeParam,
    },
    /// Forward FFT of a window. Vector → Spectrum.
    Fft,
    /// Inverse FFT back to the time domain. Spectrum → Vector.
    Ifft,
    /// One-sided magnitude reduction of a spectrum. Spectrum → Vector.
    SpectralMagnitude,
    /// Simple moving average over `window` samples. Scalar → Scalar.
    MovingAvg {
        /// Averaging window in samples.
        window: u32,
    },
    /// Exponential moving average with smoothing factor `alpha`.
    /// Scalar → Scalar.
    ExpMovingAvg {
        /// Smoothing factor in `(0, 1]`.
        alpha: f64,
    },
    /// FFT-based low-pass filter on a window. Vector → Vector.
    LowPass {
        /// Cut-off frequency in Hz.
        cutoff_hz: f64,
    },
    /// FFT-based high-pass filter on a window. Vector → Vector.
    HighPass {
        /// Cut-off frequency in Hz.
        cutoff_hz: f64,
    },
    /// Euclidean magnitude across N scalar branches; emits when every
    /// branch has delivered a value derived from the same source samples
    /// (equal sequence tags). Scalar×N → Scalar.
    VectorMagnitude,
    /// Zero-crossing rate of a window. Vector → Scalar.
    Zcr,
    /// Variance of per-sub-window zero-crossing rates. Vector → Scalar.
    ZcrVariance {
        /// Number of equal sub-windows.
        sub_windows: u32,
    },
    /// A statistical reduction of a window. Vector → Scalar.
    Stat(StatFn),
    /// Ratio of dominant to mean spectral magnitude ("pitchedness").
    /// Vector → Scalar.
    DominantRatio,
    /// Frequency (Hz) of the dominant non-DC spectral bin.
    /// Vector → Scalar.
    DominantFreq,
    /// Maximum Goertzel magnitude over the DFT bins of the incoming
    /// window whose center frequency lies in `[lo_hz, hi_hz]` — the
    /// strength-reduced form of a narrow-band spectral gate
    /// (`fft → spectralMagnitude → max` restricted to a band). Probing
    /// K bins costs `O(K·N)` instead of the filter+FFT chain's
    /// `O(N log N)`, so it wins exactly when the band is narrow.
    /// Vector → Scalar.
    Goertzel {
        /// Lower band edge in Hz (inclusive).
        lo_hz: f64,
        /// Upper band edge in Hz (inclusive).
        hi_hz: f64,
    },
    /// Frequency (Hz) of the strongest Goertzel probe among the non-DC
    /// DFT bins of the incoming window whose center frequency lies in
    /// `[lo_hz, hi_hz]` — the strength-reduced form of a narrow-band
    /// `fft → spectralMagnitude → dominantFreq` chain (the chain skips
    /// the DC bin, so the probe grid does too). Vector → Scalar.
    GoertzelFreq {
        /// Lower band edge in Hz (inclusive).
        lo_hz: f64,
        /// Upper band edge in Hz (inclusive).
        hi_hz: f64,
    },
    /// Ratio of the strongest in-band Goertzel magnitude to the mean
    /// magnitude the replaced chain would compute over all non-DC bins
    /// of the one-sided spectrum (out-of-band bins of a filtered
    /// spectrum carry only rounding residue, so the in-band sum stands
    /// in for the total) — the strength-reduced form of a narrow-band
    /// `fft → spectralMagnitude → dominantRatio` chain.
    /// Vector → Scalar.
    GoertzelRatio {
        /// Lower band edge in Hz (inclusive).
        lo_hz: f64,
        /// Upper band edge in Hz (inclusive).
        hi_hz: f64,
    },
    /// Passes values `>= threshold` (the paper's low-bound admission
    /// control). Scalar → Scalar.
    MinThreshold {
        /// Lower bound.
        threshold: f64,
    },
    /// Passes values `<= threshold`. Scalar → Scalar.
    MaxThreshold {
        /// Upper bound.
        threshold: f64,
    },
    /// Passes values inside `[lo, hi]`. Scalar → Scalar.
    BandThreshold {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Passes values outside `[lo, hi]` — the complement of
    /// [`AlgorithmKind::BandThreshold`]. Scalar → Scalar.
    OutsideThreshold {
        /// Lower bound of the rejected band.
        lo: f64,
        /// Upper bound of the rejected band.
        hi: f64,
    },
    /// Emits once `count` inputs have arrived with gaps of at most
    /// `max_gap` hub samples between consecutive arrivals; used for
    /// duration conditions. Scalar → Scalar.
    Sustained {
        /// Required consecutive arrivals.
        count: u32,
        /// Maximum gap, in hub sample ticks, for arrivals to count as
        /// consecutive (typically the upstream window hop).
        max_gap: u32,
    },
    /// Emits when every input branch has delivered a value derived from
    /// the same source samples (logical AND join over one window);
    /// forwards the last input's value. Scalar×N → Scalar.
    AllOf,
    /// Emits whenever any input branch delivers a value (logical OR
    /// join). Scalar×N → Scalar.
    AnyOf,
}

impl AlgorithmKind {
    /// The IR name of this algorithm.
    pub fn ir_name(&self) -> &'static str {
        match self {
            AlgorithmKind::Window { .. } => "window",
            AlgorithmKind::Fft => "fft",
            AlgorithmKind::Ifft => "ifft",
            AlgorithmKind::SpectralMagnitude => "spectralMagnitude",
            AlgorithmKind::MovingAvg { .. } => "movingAvg",
            AlgorithmKind::ExpMovingAvg { .. } => "expMovingAvg",
            AlgorithmKind::LowPass { .. } => "lowPass",
            AlgorithmKind::HighPass { .. } => "highPass",
            AlgorithmKind::VectorMagnitude => "vectorMagnitude",
            AlgorithmKind::Zcr => "zcr",
            AlgorithmKind::ZcrVariance { .. } => "zcrVariance",
            AlgorithmKind::Stat(s) => s.ir_name(),
            AlgorithmKind::DominantRatio => "dominantRatio",
            AlgorithmKind::DominantFreq => "dominantFreq",
            AlgorithmKind::Goertzel { .. } => "goertzel",
            AlgorithmKind::GoertzelFreq { .. } => "goertzelFreq",
            AlgorithmKind::GoertzelRatio { .. } => "goertzelRatio",
            AlgorithmKind::MinThreshold { .. } => "minThreshold",
            AlgorithmKind::MaxThreshold { .. } => "maxThreshold",
            AlgorithmKind::BandThreshold { .. } => "bandThreshold",
            AlgorithmKind::OutsideThreshold { .. } => "outsideThreshold",
            AlgorithmKind::Sustained { .. } => "sustained",
            AlgorithmKind::AllOf => "allOf",
            AlgorithmKind::AnyOf => "anyOf",
        }
    }

    /// Encodes the parameters in IR order.
    pub fn encode_params(&self) -> Vec<f64> {
        match *self {
            AlgorithmKind::Window { size, hop, shape } => {
                vec![size as f64, hop as f64, shape.encode()]
            }
            AlgorithmKind::MovingAvg { window } => vec![window as f64],
            AlgorithmKind::ExpMovingAvg { alpha } => vec![alpha],
            AlgorithmKind::LowPass { cutoff_hz } => vec![cutoff_hz],
            AlgorithmKind::HighPass { cutoff_hz } => vec![cutoff_hz],
            AlgorithmKind::ZcrVariance { sub_windows } => vec![sub_windows as f64],
            AlgorithmKind::Goertzel { lo_hz, hi_hz }
            | AlgorithmKind::GoertzelFreq { lo_hz, hi_hz }
            | AlgorithmKind::GoertzelRatio { lo_hz, hi_hz } => vec![lo_hz, hi_hz],
            AlgorithmKind::MinThreshold { threshold } => vec![threshold],
            AlgorithmKind::MaxThreshold { threshold } => vec![threshold],
            AlgorithmKind::BandThreshold { lo, hi } => vec![lo, hi],
            AlgorithmKind::OutsideThreshold { lo, hi } => vec![lo, hi],
            AlgorithmKind::Sustained { count, max_gap } => {
                vec![count as f64, max_gap as f64]
            }
            AlgorithmKind::Fft
            | AlgorithmKind::Ifft
            | AlgorithmKind::SpectralMagnitude
            | AlgorithmKind::VectorMagnitude
            | AlgorithmKind::Zcr
            | AlgorithmKind::Stat(_)
            | AlgorithmKind::DominantRatio
            | AlgorithmKind::DominantFreq
            | AlgorithmKind::AllOf
            | AlgorithmKind::AnyOf => vec![],
        }
    }

    /// Decodes an IR name and parameter list back to a kind.
    ///
    /// Returns `None` for unknown names or wrong parameter counts; value
    /// *range* checking is the validator's job.
    pub fn decode(name: &str, params: &[f64]) -> Option<AlgorithmKind> {
        let kind = match (name, params.len()) {
            ("window", 3) => AlgorithmKind::Window {
                size: params[0] as u32,
                hop: params[1] as u32,
                shape: WindowShapeParam::decode(params[2])?,
            },
            ("fft", 0) => AlgorithmKind::Fft,
            ("ifft", 0) => AlgorithmKind::Ifft,
            ("spectralMagnitude", 0) => AlgorithmKind::SpectralMagnitude,
            ("movingAvg", 1) => AlgorithmKind::MovingAvg {
                window: params[0] as u32,
            },
            ("expMovingAvg", 1) => AlgorithmKind::ExpMovingAvg { alpha: params[0] },
            ("lowPass", 1) => AlgorithmKind::LowPass {
                cutoff_hz: params[0],
            },
            ("highPass", 1) => AlgorithmKind::HighPass {
                cutoff_hz: params[0],
            },
            ("vectorMagnitude", 0) => AlgorithmKind::VectorMagnitude,
            ("zcr", 0) => AlgorithmKind::Zcr,
            ("zcrVariance", 1) => AlgorithmKind::ZcrVariance {
                sub_windows: params[0] as u32,
            },
            ("dominantRatio", 0) => AlgorithmKind::DominantRatio,
            ("dominantFreq", 0) => AlgorithmKind::DominantFreq,
            ("goertzel", 2) => AlgorithmKind::Goertzel {
                lo_hz: params[0],
                hi_hz: params[1],
            },
            ("goertzelFreq", 2) => AlgorithmKind::GoertzelFreq {
                lo_hz: params[0],
                hi_hz: params[1],
            },
            ("goertzelRatio", 2) => AlgorithmKind::GoertzelRatio {
                lo_hz: params[0],
                hi_hz: params[1],
            },
            ("minThreshold", 1) => AlgorithmKind::MinThreshold {
                threshold: params[0],
            },
            ("maxThreshold", 1) => AlgorithmKind::MaxThreshold {
                threshold: params[0],
            },
            ("bandThreshold", 2) => AlgorithmKind::BandThreshold {
                lo: params[0],
                hi: params[1],
            },
            ("outsideThreshold", 2) => AlgorithmKind::OutsideThreshold {
                lo: params[0],
                hi: params[1],
            },
            ("sustained", 2) => AlgorithmKind::Sustained {
                count: params[0] as u32,
                max_gap: params[1] as u32,
            },
            ("allOf", 0) => AlgorithmKind::AllOf,
            ("anyOf", 0) => AlgorithmKind::AnyOf,
            (_, n) => {
                let stat = StatFn::ALL.into_iter().find(|s| s.ir_name() == name)?;
                if n != 0 {
                    return None;
                }
                AlgorithmKind::Stat(stat)
            }
        };
        Some(kind)
    }

    /// The value type this algorithm consumes on each input edge.
    pub fn input_type(&self) -> ValueType {
        match self {
            AlgorithmKind::Window { .. }
            | AlgorithmKind::MovingAvg { .. }
            | AlgorithmKind::ExpMovingAvg { .. }
            | AlgorithmKind::VectorMagnitude
            | AlgorithmKind::MinThreshold { .. }
            | AlgorithmKind::MaxThreshold { .. }
            | AlgorithmKind::BandThreshold { .. }
            | AlgorithmKind::OutsideThreshold { .. }
            | AlgorithmKind::Sustained { .. }
            | AlgorithmKind::AllOf
            | AlgorithmKind::AnyOf => ValueType::Scalar,
            AlgorithmKind::Fft
            | AlgorithmKind::LowPass { .. }
            | AlgorithmKind::HighPass { .. }
            | AlgorithmKind::Zcr
            | AlgorithmKind::ZcrVariance { .. }
            | AlgorithmKind::Stat(_)
            | AlgorithmKind::DominantRatio
            | AlgorithmKind::DominantFreq
            | AlgorithmKind::Goertzel { .. }
            | AlgorithmKind::GoertzelFreq { .. }
            | AlgorithmKind::GoertzelRatio { .. } => ValueType::Vector,
            AlgorithmKind::Ifft | AlgorithmKind::SpectralMagnitude => ValueType::Spectrum,
        }
    }

    /// The value type this algorithm produces.
    pub fn output_type(&self) -> ValueType {
        match self {
            AlgorithmKind::Window { .. }
            | AlgorithmKind::Ifft
            | AlgorithmKind::SpectralMagnitude
            | AlgorithmKind::LowPass { .. }
            | AlgorithmKind::HighPass { .. } => ValueType::Vector,
            AlgorithmKind::Fft => ValueType::Spectrum,
            _ => ValueType::Scalar,
        }
    }

    /// Whether the algorithm accepts more than one input branch.
    pub fn is_aggregator(&self) -> bool {
        matches!(
            self,
            AlgorithmKind::VectorMagnitude | AlgorithmKind::AllOf | AlgorithmKind::AnyOf
        )
    }
}

impl std::fmt::Display for AlgorithmKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.ir_name())
    }
}

/// A data source feeding an algorithm: a sensor channel or an earlier node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Source {
    /// A hub sensor channel (`ACC_X`, `MIC`, …).
    Channel(SensorChannel),
    /// The output of another algorithm instance.
    Node(NodeId),
}

impl std::fmt::Display for Source {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Source::Channel(c) => write!(f, "{}", c.ir_name()),
            Source::Node(id) => write!(f, "{id}"),
        }
    }
}

/// One statement of an IR program.
///
/// Statements carry the 1-based source line they were parsed from so
/// diagnostics (validator errors, lints) can cite `line N` instead of
/// only node ids. Programs built through the API use line `0`
/// ("synthesized"); the line is *metadata* and is ignored by `PartialEq`,
/// so a parsed program compares equal to the same program built by hand.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// `sources -> kind(id=N, params={…});` — instantiate an algorithm.
    Node {
        /// The input edges, in order.
        sources: Vec<Source>,
        /// The unique instance id.
        id: NodeId,
        /// The algorithm and its parameters.
        kind: AlgorithmKind,
        /// 1-based source line, or 0 when synthesized via the API.
        line: u32,
    },
    /// `N -> OUT;` — results of node `N` wake the main processor.
    Out {
        /// The node whose output triggers the wake-up.
        source: NodeId,
        /// 1-based source line, or 0 when synthesized via the API.
        line: u32,
    },
}

impl Stmt {
    /// The 1-based source line this statement was parsed from, or `None`
    /// for statements synthesized through the API.
    pub fn line(&self) -> Option<u32> {
        let raw = match self {
            Stmt::Node { line, .. } | Stmt::Out { line, .. } => *line,
        };
        (raw != 0).then_some(raw)
    }
}

impl PartialEq for Stmt {
    /// Structural equality; the source line is metadata and ignored.
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (
                Stmt::Node {
                    sources: a,
                    id: ia,
                    kind: ka,
                    ..
                },
                Stmt::Node {
                    sources: b,
                    id: ib,
                    kind: kb,
                    ..
                },
            ) => a == b && ia == ib && ka == kb,
            (Stmt::Out { source: a, .. }, Stmt::Out { source: b, .. }) => a == b,
            _ => false,
        }
    }
}

/// A complete intermediate-language program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    stmts: Vec<Stmt>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Creates a program from statements without validating; call
    /// [`Program::validate`] before execution.
    pub fn from_stmts(stmts: Vec<Stmt>) -> Self {
        Program { stmts }
    }

    /// The statements in order.
    pub fn stmts(&self) -> &[Stmt] {
        &self.stmts
    }

    /// Appends a node statement (no source line; see
    /// [`Program::push_node_at`]).
    pub fn push_node(&mut self, sources: Vec<Source>, id: NodeId, kind: AlgorithmKind) {
        self.push_node_at(sources, id, kind, 0);
    }

    /// Appends a node statement carrying its 1-based source line
    /// (0 = synthesized).
    pub fn push_node_at(
        &mut self,
        sources: Vec<Source>,
        id: NodeId,
        kind: AlgorithmKind,
        line: u32,
    ) {
        self.stmts.push(Stmt::Node {
            sources,
            id,
            kind,
            line,
        });
    }

    /// Appends the terminal `OUT` statement (no source line; see
    /// [`Program::push_out_at`]).
    pub fn push_out(&mut self, source: NodeId) {
        self.push_out_at(source, 0);
    }

    /// Appends the terminal `OUT` statement carrying its 1-based source
    /// line (0 = synthesized).
    pub fn push_out_at(&mut self, source: NodeId, line: u32) {
        self.stmts.push(Stmt::Out { source, line });
    }

    /// The source line declaring node `id`, if the program was parsed
    /// from text.
    pub fn line_of(&self, id: NodeId) -> Option<u32> {
        self.stmts.iter().find_map(|s| match s {
            Stmt::Node { id: nid, .. } if *nid == id => s.line(),
            _ => None,
        })
    }

    /// The source line of the `OUT` statement, if parsed from text.
    pub fn out_line(&self) -> Option<u32> {
        self.stmts.iter().find_map(|s| match s {
            Stmt::Out { .. } => s.line(),
            _ => None,
        })
    }

    /// Number of statements.
    pub fn len(&self) -> usize {
        self.stmts.len()
    }

    /// Whether the program has no statements.
    pub fn is_empty(&self) -> bool {
        self.stmts.is_empty()
    }

    /// Iterates node statements (skipping `OUT`).
    pub fn nodes(&self) -> impl Iterator<Item = (&[Source], NodeId, &AlgorithmKind)> {
        self.stmts.iter().filter_map(|s| match s {
            Stmt::Node {
                sources, id, kind, ..
            } => Some((sources.as_slice(), *id, kind)),
            Stmt::Out { .. } => None,
        })
    }

    /// The node feeding `OUT`, if the program has an `OUT` statement.
    pub fn out_source(&self) -> Option<NodeId> {
        self.stmts.iter().find_map(|s| match s {
            Stmt::Out { source, .. } => Some(*source),
            _ => None,
        })
    }

    /// The sensor channels this program reads.
    pub fn channels(&self) -> Vec<SensorChannel> {
        let mut out: Vec<SensorChannel> = self
            .nodes()
            .flat_map(|(sources, _, _)| sources.iter())
            .filter_map(|s| match s {
                Source::Channel(c) => Some(*c),
                Source::Node(_) => None,
            })
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// A stable 64-bit digest of the program: FNV-1a over the canonical
    /// printed form. Because `parse ∘ print` is the identity, two
    /// programs have equal digests exactly when their canonical texts
    /// are equal — the key a fleet ingest path uses to acknowledge and
    /// deduplicate submitted wake conditions across the wire.
    pub fn stable_digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = FNV_OFFSET;
        for byte in self.to_string().bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        hash
    }

    /// Whether the program contains an FFT-family stage (`fft`, `ifft`,
    /// `lowPass`, `highPass`). The MCU capability model uses this: the
    /// MSP430 cannot run FFT stages in real time (paper §4).
    pub fn uses_fft(&self) -> bool {
        self.nodes().any(|(_, _, kind)| {
            matches!(
                kind,
                AlgorithmKind::Fft
                    | AlgorithmKind::Ifft
                    | AlgorithmKind::LowPass { .. }
                    | AlgorithmKind::HighPass { .. }
            )
        })
    }

    /// Validates the program; see [`crate::validate`].
    ///
    /// # Errors
    ///
    /// Returns the first structural defect found.
    pub fn validate(&self) -> Result<(), crate::validate::ValidateError> {
        crate::validate::validate(self)
    }

    /// Validates the program, attaching source lines to any defect; see
    /// [`crate::validate`].
    ///
    /// # Errors
    ///
    /// Returns the first structural defect found, located at the
    /// statement that introduced it when line metadata is available.
    pub fn validate_located(&self) -> Result<(), crate::validate::LocatedValidateError> {
        crate::validate::validate_located(self)
    }
}

impl std::fmt::Display for Program {
    /// Prints the canonical textual form, one statement per line, exactly
    /// as accepted by the parser.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for stmt in &self.stmts {
            match stmt {
                Stmt::Node {
                    sources, id, kind, ..
                } => {
                    let src: Vec<String> = sources.iter().map(|s| s.to_string()).collect();
                    write!(f, "{} -> {}(id={}", src.join(","), kind.ir_name(), id)?;
                    let params = kind.encode_params();
                    if !params.is_empty() {
                        let rendered: Vec<String> =
                            params.iter().map(|p| format_param(*p)).collect();
                        write!(f, ", params={{{}}}", rendered.join(", "))?;
                    }
                    writeln!(f, ");")?;
                }
                Stmt::Out { source, .. } => writeln!(f, "{source} -> OUT;")?,
            }
        }
        Ok(())
    }
}

impl std::str::FromStr for Program {
    type Err = crate::parse::ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        crate::parse::parse(s)
    }
}

/// Formats a parameter so integers print without a trailing `.0` (matching
/// the paper's `params={10}` style) while fractional values keep full
/// precision.
pub(crate) fn format_param(p: f64) -> String {
    if p.fract() == 0.0 && p.abs() < 1e15 {
        format!("{}", p as i64)
    } else {
        // `{:?}` prints the shortest representation that round-trips.
        format!("{p:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ir_names_decode_back() {
        let kinds = [
            AlgorithmKind::Window {
                size: 256,
                hop: 128,
                shape: WindowShapeParam::Hamming,
            },
            AlgorithmKind::Fft,
            AlgorithmKind::Ifft,
            AlgorithmKind::SpectralMagnitude,
            AlgorithmKind::MovingAvg { window: 10 },
            AlgorithmKind::ExpMovingAvg { alpha: 0.25 },
            AlgorithmKind::LowPass { cutoff_hz: 3.0 },
            AlgorithmKind::HighPass { cutoff_hz: 750.0 },
            AlgorithmKind::VectorMagnitude,
            AlgorithmKind::Zcr,
            AlgorithmKind::ZcrVariance { sub_windows: 8 },
            AlgorithmKind::Stat(StatFn::Variance),
            AlgorithmKind::DominantRatio,
            AlgorithmKind::DominantFreq,
            AlgorithmKind::Goertzel {
                lo_hz: 980.0,
                hi_hz: 1020.0,
            },
            AlgorithmKind::GoertzelFreq {
                lo_hz: 980.0,
                hi_hz: 1020.0,
            },
            AlgorithmKind::GoertzelRatio {
                lo_hz: 980.0,
                hi_hz: 1020.0,
            },
            AlgorithmKind::MinThreshold { threshold: 15.0 },
            AlgorithmKind::MaxThreshold { threshold: -3.75 },
            AlgorithmKind::BandThreshold { lo: 1.0, hi: 2.0 },
            AlgorithmKind::OutsideThreshold { lo: -1.0, hi: 1.0 },
            AlgorithmKind::Sustained {
                count: 5,
                max_gap: 1024,
            },
            AlgorithmKind::AllOf,
            AlgorithmKind::AnyOf,
        ];
        for kind in kinds {
            let name = kind.ir_name();
            let params = kind.encode_params();
            assert_eq!(
                AlgorithmKind::decode(name, &params),
                Some(kind),
                "round trip failed for {name}"
            );
        }
    }

    #[test]
    fn decode_rejects_unknown_and_misparameterized() {
        assert_eq!(AlgorithmKind::decode("bogus", &[]), None);
        assert_eq!(AlgorithmKind::decode("movingAvg", &[]), None);
        assert_eq!(AlgorithmKind::decode("fft", &[1.0]), None);
        assert_eq!(AlgorithmKind::decode("mean", &[1.0]), None);
        assert_eq!(AlgorithmKind::decode("window", &[8.0, 8.0, 9.0]), None);
    }

    #[test]
    fn stat_functions_decode_by_name() {
        for s in StatFn::ALL {
            assert_eq!(
                AlgorithmKind::decode(s.ir_name(), &[]),
                Some(AlgorithmKind::Stat(s))
            );
        }
    }

    #[test]
    fn window_shape_encoding_round_trips() {
        for shape in [
            WindowShapeParam::Rectangular,
            WindowShapeParam::Hamming,
            WindowShapeParam::Hann,
        ] {
            assert_eq!(WindowShapeParam::decode(shape.encode()), Some(shape));
        }
        assert_eq!(WindowShapeParam::decode(1.5), None);
        assert_eq!(WindowShapeParam::decode(-1.0), None);
        assert_eq!(WindowShapeParam::decode(3.0), None);
    }

    #[test]
    fn value_types_are_consistent() {
        assert_eq!(AlgorithmKind::Fft.input_type(), ValueType::Vector);
        assert_eq!(AlgorithmKind::Fft.output_type(), ValueType::Spectrum);
        assert_eq!(AlgorithmKind::Ifft.input_type(), ValueType::Spectrum);
        assert_eq!(AlgorithmKind::Ifft.output_type(), ValueType::Vector);
        assert_eq!(
            AlgorithmKind::MovingAvg { window: 1 }.output_type(),
            ValueType::Scalar
        );
        assert_eq!(
            AlgorithmKind::Window {
                size: 2,
                hop: 2,
                shape: WindowShapeParam::Rectangular
            }
            .output_type(),
            ValueType::Vector
        );
    }

    #[test]
    fn aggregators_are_flagged() {
        assert!(AlgorithmKind::VectorMagnitude.is_aggregator());
        assert!(AlgorithmKind::AllOf.is_aggregator());
        assert!(AlgorithmKind::AnyOf.is_aggregator());
        assert!(!AlgorithmKind::Fft.is_aggregator());
    }

    #[test]
    fn program_prints_paper_example() {
        let mut p = Program::new();
        for (i, c) in SensorChannel::ACCEL.into_iter().enumerate() {
            p.push_node(
                vec![Source::Channel(c)],
                NodeId(i as u32 + 1),
                AlgorithmKind::MovingAvg { window: 10 },
            );
        }
        p.push_node(
            vec![
                Source::Node(NodeId(1)),
                Source::Node(NodeId(2)),
                Source::Node(NodeId(3)),
            ],
            NodeId(4),
            AlgorithmKind::VectorMagnitude,
        );
        p.push_node(
            vec![Source::Node(NodeId(4))],
            NodeId(5),
            AlgorithmKind::MinThreshold { threshold: 15.0 },
        );
        p.push_out(NodeId(5));
        let expected = "\
ACC_X -> movingAvg(id=1, params={10});
ACC_Y -> movingAvg(id=2, params={10});
ACC_Z -> movingAvg(id=3, params={10});
1,2,3 -> vectorMagnitude(id=4);
4 -> minThreshold(id=5, params={15});
5 -> OUT;
";
        assert_eq!(p.to_string(), expected);
    }

    #[test]
    fn program_queries() {
        let mut p = Program::new();
        p.push_node(
            vec![Source::Channel(SensorChannel::Mic)],
            NodeId(1),
            AlgorithmKind::Window {
                size: 256,
                hop: 256,
                shape: WindowShapeParam::Hamming,
            },
        );
        p.push_node(
            vec![Source::Node(NodeId(1))],
            NodeId(2),
            AlgorithmKind::HighPass { cutoff_hz: 750.0 },
        );
        p.push_out(NodeId(2));
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        assert_eq!(p.out_source(), Some(NodeId(2)));
        assert_eq!(p.channels(), vec![SensorChannel::Mic]);
        assert!(p.uses_fft());
        assert_eq!(p.nodes().count(), 2);
    }

    #[test]
    fn stable_digest_tracks_canonical_text() {
        let a: Program = "ACC_X -> movingAvg(id=1, params={10});\n1 -> OUT;\n"
            .parse()
            .unwrap();
        // Same canonical text regardless of the surface form it was
        // parsed from: same digest.
        let b: Program = "ACC_X   ->   movingAvg( id = 1 , params = {10} ) ;  1 -> OUT;"
            .parse()
            .unwrap();
        assert_eq!(a.stable_digest(), b.stable_digest());
        // A parameter change is a different program.
        let c: Program = "ACC_X -> movingAvg(id=1, params={11});\n1 -> OUT;\n"
            .parse()
            .unwrap();
        assert_ne!(a.stable_digest(), c.stable_digest());
        // FNV-1a of the canonical text, pinned so the wire protocol's
        // acks stay stable across refactors.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in a.to_string().bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        assert_eq!(a.stable_digest(), hash);
    }

    #[test]
    fn uses_fft_is_false_without_fft_stages() {
        let mut p = Program::new();
        p.push_node(
            vec![Source::Channel(SensorChannel::AccX)],
            NodeId(1),
            AlgorithmKind::MovingAvg { window: 4 },
        );
        p.push_out(NodeId(1));
        assert!(!p.uses_fft());
    }

    #[test]
    fn lines_are_metadata_not_identity() {
        let mut by_hand = Program::new();
        by_hand.push_node(
            vec![Source::Channel(SensorChannel::AccX)],
            NodeId(1),
            AlgorithmKind::MovingAvg { window: 10 },
        );
        by_hand.push_out(NodeId(1));
        let parsed: Program = "ACC_X -> movingAvg(id=1, params={10});\n1 -> OUT;"
            .parse()
            .unwrap();
        // Equality ignores line metadata...
        assert_eq!(parsed, by_hand);
        // ...but parsed statements still know where they came from.
        assert_eq!(parsed.line_of(NodeId(1)), Some(1));
        assert_eq!(parsed.out_line(), Some(2));
        assert_eq!(by_hand.line_of(NodeId(1)), None);
        assert_eq!(by_hand.out_line(), None);
        assert_eq!(by_hand.line_of(NodeId(42)), None);
    }

    #[test]
    fn param_formatting() {
        assert_eq!(format_param(10.0), "10");
        assert_eq!(format_param(-3.75), "-3.75");
        assert_eq!(format_param(0.1), "0.1");
    }

    #[test]
    fn fractional_params_print_and_reparse() {
        let mut p = Program::new();
        p.push_node(
            vec![Source::Channel(SensorChannel::AccX)],
            NodeId(1),
            AlgorithmKind::ExpMovingAvg { alpha: 0.1 },
        );
        p.push_out(NodeId(1));
        let text = p.to_string();
        assert!(text.contains("params={0.1}"), "{text}");
    }
}
