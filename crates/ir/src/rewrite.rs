//! Program rewriting primitives.
//!
//! The optimizer (`sidewinder-opt`) expresses each pass as an *edit
//! script* over one program — node removals, source redirections, and
//! in-place node replacements — applied atomically by [`Rewrite::apply`].
//! Keeping the mechanics here, next to the AST, means passes never
//! hand-roll statement surgery: they describe *what* changes and this
//! module guarantees the result is still a well-formed statement list
//! (statement order preserved, line metadata carried over, `OUT`
//! retargeted through redirect chains).
//!
//! [`StructuralKey`] is the companion hashing scheme: two nodes with the
//! same key compute the same function of the same inputs, which is the
//! foundation of common-subexpression elimination and cross-program
//! sharing.

use crate::ast::{AlgorithmKind, NodeId, Program, Source, Stmt};
use std::collections::{BTreeMap, BTreeSet};

/// A structural identity for one node: algorithm name, parameters (as
/// exact bit patterns, so `0.0`/`-0.0` and NaN payloads never collide),
/// and the sources it reads, in port order.
///
/// Port order is significant — `vectorMagnitude` sums squares in port
/// order (float addition is not associative) and `allOf` forwards the
/// *last* input's value — so keys deliberately do not sort sources.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StructuralKey {
    name: &'static str,
    param_bits: Vec<u64>,
    sources: Vec<Source>,
}

impl StructuralKey {
    /// Builds the key for a node reading `sources` (already canonicalized
    /// by the caller if deduplication across a replacement map is in
    /// progress).
    pub fn of(sources: &[Source], kind: &AlgorithmKind) -> StructuralKey {
        StructuralKey {
            name: kind.ir_name(),
            param_bits: kind.encode_params().iter().map(|p| p.to_bits()).collect(),
            sources: sources.to_vec(),
        }
    }
}

/// An edit script over one program: removals, redirections, and in-place
/// replacements, applied together by [`Rewrite::apply`].
#[derive(Debug, Clone, Default)]
pub struct Rewrite {
    /// Consumers of the key read from the mapped source instead.
    redirects: BTreeMap<NodeId, Source>,
    /// Statements to drop entirely.
    removals: BTreeSet<NodeId>,
    /// Nodes whose sources/kind are swapped in place (id and line kept).
    replacements: BTreeMap<NodeId, (Vec<Source>, AlgorithmKind)>,
}

impl Rewrite {
    /// An empty edit script.
    pub fn new() -> Rewrite {
        Rewrite::default()
    }

    /// Whether the script changes anything.
    pub fn is_empty(&self) -> bool {
        self.redirects.is_empty() && self.removals.is_empty() && self.replacements.is_empty()
    }

    /// Consumers of `from` (including `OUT`) should read `to` instead.
    /// Chains are resolved transitively at apply time.
    pub fn redirect(&mut self, from: NodeId, to: Source) {
        self.redirects.insert(from, to);
    }

    /// Drop node `id`'s statement. Callers normally pair this with a
    /// [`Rewrite::redirect`] so remaining consumers stay defined.
    pub fn remove(&mut self, id: NodeId) {
        self.removals.insert(id);
    }

    /// Swap node `id`'s sources and algorithm in place, keeping its id
    /// and source line.
    pub fn replace(&mut self, id: NodeId, sources: Vec<Source>, kind: AlgorithmKind) {
        self.replacements.insert(id, (sources, kind));
    }

    /// Resolves a source through the redirect chain. Bounded by the
    /// number of redirects, so reference cycles in malformed scripts
    /// terminate at the cycle edge instead of spinning.
    pub fn resolve(&self, source: Source) -> Source {
        let mut current = source;
        for _ in 0..=self.redirects.len() {
            match current {
                Source::Node(id) => match self.redirects.get(&id) {
                    Some(next) => current = *next,
                    None => return current,
                },
                Source::Channel(_) => return current,
            }
        }
        current
    }

    /// Applies the script, producing the rewritten program.
    ///
    /// Statement order and line metadata are preserved. `OUT` follows
    /// redirect chains like any other consumer, except that a chain
    /// ending at a channel leaves `OUT` untouched — `OUT` must name a
    /// node, and passes guard against creating that shape; this is the
    /// backstop that keeps apply total.
    pub fn apply(&self, program: &Program) -> Program {
        let mut stmts = Vec::with_capacity(program.len());
        for stmt in program.stmts() {
            match stmt {
                Stmt::Node {
                    sources,
                    id,
                    kind,
                    line,
                } => {
                    if self.removals.contains(id) {
                        continue;
                    }
                    let (sources, kind) = match self.replacements.get(id) {
                        Some((s, k)) => (s.clone(), *k),
                        None => (sources.clone(), *kind),
                    };
                    let sources = sources.into_iter().map(|s| self.resolve(s)).collect();
                    stmts.push(Stmt::Node {
                        sources,
                        id: *id,
                        kind,
                        line: *line,
                    });
                }
                Stmt::Out { source, line } => {
                    let resolved = match self.resolve(Source::Node(*source)) {
                        Source::Node(id) => id,
                        Source::Channel(_) => *source,
                    };
                    stmts.push(Stmt::Out {
                        source: resolved,
                        line: *line,
                    });
                }
            }
        }
        Program::from_stmts(stmts)
    }
}

/// Renumbers node ids to `1..=N` in statement order, remapping every
/// reference (including `OUT`). Two programs that differ only in id
/// choice canonicalize to equal programs — the equality cross-program
/// deduplication tests against. Unresolvable references (malformed
/// input) are left as-is.
pub fn canonicalize_ids(program: &Program) -> Program {
    let mut map: BTreeMap<NodeId, NodeId> = BTreeMap::new();
    let mut next = 1u32;
    for (_, id, _) in program.nodes() {
        map.entry(id).or_insert_with(|| {
            let fresh = NodeId(next);
            next += 1;
            fresh
        });
    }
    let remap = |s: &Source| match s {
        Source::Node(n) => Source::Node(*map.get(n).unwrap_or(n)),
        Source::Channel(c) => Source::Channel(*c),
    };
    let stmts = program
        .stmts()
        .iter()
        .map(|stmt| match stmt {
            Stmt::Node {
                sources,
                id,
                kind,
                line,
            } => Stmt::Node {
                sources: sources.iter().map(remap).collect(),
                id: *map.get(id).unwrap_or(id),
                kind: *kind,
                line: *line,
            },
            Stmt::Out { source, line } => Stmt::Out {
                source: *map.get(source).unwrap_or(source),
                line: *line,
            },
        })
        .collect();
    Program::from_stmts(stmts)
}

/// The set of nodes transitively reachable from `OUT` — the live set a
/// dead-code sweep keeps. Total on malformed programs: no `OUT` yields
/// an empty set, undefined references are skipped.
pub fn live_from_out(program: &Program) -> BTreeSet<NodeId> {
    let mut sources_of: BTreeMap<NodeId, &[Source]> = BTreeMap::new();
    for (sources, id, _) in program.nodes() {
        sources_of.insert(id, sources);
    }
    let mut live = BTreeSet::new();
    let mut stack: Vec<NodeId> = program.out_source().into_iter().collect();
    while let Some(id) = stack.pop() {
        if !live.insert(id) {
            continue;
        }
        if let Some(sources) = sources_of.get(&id) {
            for s in sources.iter() {
                if let Source::Node(n) = s {
                    stack.push(*n);
                }
            }
        }
    }
    live
}

#[cfg(test)]
mod tests {
    use super::*;
    use sidewinder_sensors::SensorChannel;

    fn program(text: &str) -> Program {
        text.parse().unwrap()
    }

    const CHAIN: &str = "ACC_X -> movingAvg(id=1, params={10});
         1 -> movingAvg(id=2, params={1});
         2 -> minThreshold(id=3, params={15});
         3 -> OUT;";

    #[test]
    fn structural_keys_distinguish_params_and_source_order() {
        let a = StructuralKey::of(
            &[Source::Channel(SensorChannel::AccX)],
            &AlgorithmKind::MovingAvg { window: 10 },
        );
        let b = StructuralKey::of(
            &[Source::Channel(SensorChannel::AccX)],
            &AlgorithmKind::MovingAvg { window: 10 },
        );
        let c = StructuralKey::of(
            &[Source::Channel(SensorChannel::AccX)],
            &AlgorithmKind::MovingAvg { window: 11 },
        );
        assert_eq!(a, b);
        assert_ne!(a, c);

        let xy = StructuralKey::of(
            &[Source::Node(NodeId(1)), Source::Node(NodeId(2))],
            &AlgorithmKind::AllOf,
        );
        let yx = StructuralKey::of(
            &[Source::Node(NodeId(2)), Source::Node(NodeId(1))],
            &AlgorithmKind::AllOf,
        );
        assert_ne!(xy, yx, "allOf forwards the last input; order matters");
    }

    #[test]
    fn bypass_removal_redirects_consumers() {
        let p = program(CHAIN);
        let mut rw = Rewrite::new();
        rw.redirect(NodeId(2), Source::Node(NodeId(1)));
        rw.remove(NodeId(2));
        let out = rw.apply(&p);
        assert_eq!(out.len(), 3);
        assert!(out.validate().is_ok());
        let (sources, id, _) = out.nodes().nth(1).unwrap();
        assert_eq!(id, NodeId(3));
        assert_eq!(sources, &[Source::Node(NodeId(1))]);
    }

    #[test]
    fn redirect_chains_resolve_transitively_and_out_follows() {
        let p = program(
            "ACC_X -> movingAvg(id=1, params={10});
             1 -> movingAvg(id=2, params={1});
             2 -> expMovingAvg(id=3, params={1});
             3 -> OUT;",
        );
        let mut rw = Rewrite::new();
        rw.redirect(NodeId(3), Source::Node(NodeId(2)));
        rw.remove(NodeId(3));
        rw.redirect(NodeId(2), Source::Node(NodeId(1)));
        rw.remove(NodeId(2));
        let out = rw.apply(&p);
        assert_eq!(out.out_source(), Some(NodeId(1)));
        assert!(out.validate().is_ok());
    }

    #[test]
    fn out_never_retargets_to_a_channel() {
        let p = program(CHAIN);
        let mut rw = Rewrite::new();
        rw.redirect(NodeId(3), Source::Channel(SensorChannel::AccX));
        let out = rw.apply(&p);
        assert_eq!(out.out_source(), Some(NodeId(3)));
    }

    #[test]
    fn replace_keeps_id_and_line() {
        let p = program(CHAIN);
        let mut rw = Rewrite::new();
        rw.replace(
            NodeId(2),
            vec![Source::Node(NodeId(1))],
            AlgorithmKind::ExpMovingAvg { alpha: 0.5 },
        );
        let out = rw.apply(&p);
        assert_eq!(out.line_of(NodeId(2)), p.line_of(NodeId(2)));
        let (_, _, kind) = out.nodes().nth(1).unwrap();
        assert_eq!(*kind, AlgorithmKind::ExpMovingAvg { alpha: 0.5 });
    }

    #[test]
    fn live_set_walks_back_from_out() {
        let p = program(CHAIN);
        let live = live_from_out(&p);
        assert_eq!(
            live.into_iter().collect::<Vec<_>>(),
            vec![NodeId(1), NodeId(2), NodeId(3)]
        );
        assert!(live_from_out(&Program::new()).is_empty());
    }

    #[test]
    fn canonicalization_erases_id_choice() {
        let a = program(
            "ACC_X -> movingAvg(id=7, params={10});
             7 -> minThreshold(id=3, params={15});
             3 -> OUT;",
        );
        let b = program(
            "ACC_X -> movingAvg(id=1, params={10});
             1 -> minThreshold(id=2, params={15});
             2 -> OUT;",
        );
        assert_ne!(a, b);
        assert_eq!(canonicalize_ids(&a), canonicalize_ids(&b));
        assert!(canonicalize_ids(&a).validate().is_ok());
    }

    #[test]
    fn empty_rewrite_is_identity() {
        let p = program(CHAIN);
        let rw = Rewrite::new();
        assert!(rw.is_empty());
        assert_eq!(rw.apply(&p), p);
    }
}
