//! Structural validation of IR programs.
//!
//! The hub runtime validates a program before allocating algorithm
//! instances (paper §3.5). A valid program has:
//!
//! * unique, non-zero node ids;
//! * define-before-use ordering (which also guarantees acyclicity, since
//!   the textual IR is a straight-line listing);
//! * exactly one `OUT` statement, fed by a scalar-producing node;
//! * single-input algorithms with exactly one source and aggregators with
//!   at least one;
//! * type-correct edges (scalar/vector/spectrum);
//! * in-range parameters;
//! * no dead nodes — every node must reach `OUT`, because dead instances
//!   would consume hub memory and cycles without affecting the wake-up
//!   decision.

use crate::ast::{AlgorithmKind, NodeId, Program, Source, Stmt, ValueType};
use std::collections::{BTreeMap, BTreeSet};

/// A structural defect found in a program.
#[derive(Debug, Clone, PartialEq)]
pub enum ValidateError {
    /// A node id was declared twice.
    DuplicateId(NodeId),
    /// Node ids must be non-zero (zero is reserved so ids and the `OUT`
    /// sentinel can never collide in hub tables).
    ZeroId,
    /// A source references a node id not yet defined.
    UndefinedSource {
        /// The node (or `None` for the `OUT` statement) with the bad source.
        at: Option<NodeId>,
        /// The undefined id.
        source: NodeId,
    },
    /// The program has no `OUT` statement.
    MissingOut,
    /// The program has more than one `OUT` statement.
    MultipleOut,
    /// An algorithm received the wrong number of inputs.
    BadArity {
        /// The offending node.
        id: NodeId,
        /// Its algorithm name.
        algorithm: &'static str,
        /// How many inputs it got.
        got: usize,
    },
    /// An edge carries the wrong value type.
    TypeMismatch {
        /// The consuming node.
        id: NodeId,
        /// What the consumer expects.
        expected: ValueType,
        /// What the producer emits.
        found: ValueType,
    },
    /// A parameter is out of range.
    BadParam {
        /// The offending node.
        id: NodeId,
        /// Description of the violation.
        reason: String,
    },
    /// A node's output is never consumed and does not feed `OUT`.
    DeadNode(NodeId),
    /// The `OUT` statement is fed by a non-scalar node.
    NonScalarOut {
        /// The node feeding OUT.
        id: NodeId,
        /// The type it produces.
        found: ValueType,
    },
}

impl std::fmt::Display for ValidateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidateError::DuplicateId(id) => write!(f, "node id {id} declared twice"),
            ValidateError::ZeroId => write!(f, "node ids must be non-zero"),
            ValidateError::UndefinedSource { at, source } => match at {
                Some(id) => write!(f, "node {id} reads undefined node {source}"),
                None => write!(f, "OUT reads undefined node {source}"),
            },
            ValidateError::MissingOut => write!(f, "program has no OUT statement"),
            ValidateError::MultipleOut => write!(f, "program has multiple OUT statements"),
            ValidateError::BadArity { id, algorithm, got } => {
                write!(f, "node {id} ({algorithm}) got {got} input(s)")
            }
            ValidateError::TypeMismatch {
                id,
                expected,
                found,
            } => write!(f, "node {id} expects {expected} input but receives {found}"),
            ValidateError::BadParam { id, reason } => {
                write!(f, "node {id} has invalid parameters: {reason}")
            }
            ValidateError::DeadNode(id) => {
                write!(f, "node {id} does not contribute to OUT")
            }
            ValidateError::NonScalarOut { id, found } => {
                write!(f, "OUT must be fed a scalar but node {id} produces {found}")
            }
        }
    }
}

impl std::error::Error for ValidateError {}

/// A [`ValidateError`] located at the source line of the offending
/// statement (when the program was parsed from text).
///
/// Rendering cites `line N: …` so toolchain diagnostics (the `swlint`
/// CLI, hub admission logs) point at the defective statement instead of
/// only naming node ids.
#[derive(Debug, Clone, PartialEq)]
pub struct LocatedValidateError {
    /// The structural defect.
    pub error: ValidateError,
    /// 1-based source line of the offending statement, if known.
    pub line: Option<u32>,
}

impl std::fmt::Display for LocatedValidateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.line {
            Some(line) => write!(f, "line {line}: {}", self.error),
            None => self.error.fmt(f),
        }
    }
}

impl std::error::Error for LocatedValidateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// Validates a program; returns the first defect found.
///
/// # Errors
///
/// See [`ValidateError`] for the possible defects.
pub fn validate(program: &Program) -> Result<(), ValidateError> {
    validate_located(program).map_err(|e| e.error)
}

/// Validates a program; the first defect found is returned together
/// with the source line of the statement that caused it.
///
/// # Errors
///
/// See [`ValidateError`] for the possible defects; the wrapping
/// [`LocatedValidateError`] adds the line.
pub fn validate_located(program: &Program) -> Result<(), LocatedValidateError> {
    let mut defined: BTreeMap<NodeId, ValueType> = BTreeMap::new();
    let mut out_seen = false;
    let mut out_node = None;

    for stmt in program.stmts() {
        let at_line = |error: ValidateError| LocatedValidateError {
            error,
            line: stmt.line(),
        };
        match stmt {
            Stmt::Node {
                sources, id, kind, ..
            } => {
                if id.0 == 0 {
                    return Err(at_line(ValidateError::ZeroId));
                }
                if defined.contains_key(id) {
                    return Err(at_line(ValidateError::DuplicateId(*id)));
                }
                check_arity(*id, sources.len(), kind).map_err(at_line)?;
                for source in sources {
                    let produced = match source {
                        Source::Channel(_) => ValueType::Scalar,
                        Source::Node(src_id) => *defined.get(src_id).ok_or_else(|| {
                            at_line(ValidateError::UndefinedSource {
                                at: Some(*id),
                                source: *src_id,
                            })
                        })?,
                    };
                    let expected = kind.input_type();
                    if produced != expected {
                        return Err(at_line(ValidateError::TypeMismatch {
                            id: *id,
                            expected,
                            found: produced,
                        }));
                    }
                }
                check_params(*id, kind).map_err(at_line)?;
                defined.insert(*id, kind.output_type());
            }
            Stmt::Out { source, .. } => {
                if out_seen {
                    return Err(at_line(ValidateError::MultipleOut));
                }
                out_seen = true;
                let produced = *defined.get(source).ok_or_else(|| {
                    at_line(ValidateError::UndefinedSource {
                        at: None,
                        source: *source,
                    })
                })?;
                if produced != ValueType::Scalar {
                    return Err(at_line(ValidateError::NonScalarOut {
                        id: *source,
                        found: produced,
                    }));
                }
                out_node = Some(*source);
            }
        }
    }

    let Some(out_node) = out_node else {
        return Err(LocatedValidateError {
            error: ValidateError::MissingOut,
            line: None,
        });
    };

    // Dead-node check: walk backwards from OUT.
    let mut live: BTreeSet<NodeId> = BTreeSet::new();
    let mut stack = vec![out_node];
    while let Some(id) = stack.pop() {
        if !live.insert(id) {
            continue;
        }
        if let Some((sources, _, _)) = program.nodes().find(|(_, nid, _)| *nid == id) {
            for s in sources {
                if let Source::Node(src) = s {
                    stack.push(*src);
                }
            }
        }
    }
    for (_, id, _) in program.nodes() {
        if !live.contains(&id) {
            return Err(LocatedValidateError {
                error: ValidateError::DeadNode(id),
                line: program.line_of(id),
            });
        }
    }
    Ok(())
}

fn check_arity(id: NodeId, got: usize, kind: &AlgorithmKind) -> Result<(), ValidateError> {
    let ok = if kind.is_aggregator() {
        got >= 1
    } else {
        got == 1
    };
    if ok {
        Ok(())
    } else {
        Err(ValidateError::BadArity {
            id,
            algorithm: kind.ir_name(),
            got,
        })
    }
}

fn check_params(id: NodeId, kind: &AlgorithmKind) -> Result<(), ValidateError> {
    let bad = |reason: String| Err(ValidateError::BadParam { id, reason });
    match *kind {
        AlgorithmKind::Window { size, hop, .. } => {
            if size == 0 || hop == 0 || hop > size {
                return bad(format!("window size={size}, hop={hop}"));
            }
            if !size.is_power_of_two() {
                return bad(format!(
                    "window size {size} must be a power of two so FFT stages can run"
                ));
            }
        }
        AlgorithmKind::MovingAvg { window: 0 } => {
            return bad("moving average window must be non-zero".to_string());
        }
        AlgorithmKind::ExpMovingAvg { alpha } if !(alpha > 0.0 && alpha <= 1.0) => {
            return bad(format!("EMA alpha {alpha} outside (0, 1]"));
        }
        AlgorithmKind::LowPass { cutoff_hz } | AlgorithmKind::HighPass { cutoff_hz }
            if !(cutoff_hz.is_finite() && cutoff_hz > 0.0) =>
        {
            return bad(format!("cutoff {cutoff_hz} must be positive"));
        }
        AlgorithmKind::ZcrVariance { sub_windows } if sub_windows < 2 => {
            return bad("zcrVariance needs at least 2 sub-windows".to_string());
        }
        AlgorithmKind::MinThreshold { threshold } | AlgorithmKind::MaxThreshold { threshold }
            if !threshold.is_finite() =>
        {
            return bad(format!("threshold {threshold} must be finite"));
        }
        AlgorithmKind::BandThreshold { lo, hi } | AlgorithmKind::OutsideThreshold { lo, hi }
            if !(lo.is_finite() && hi.is_finite() && lo <= hi) =>
        {
            return bad(format!("band [{lo}, {hi}] is invalid"));
        }
        AlgorithmKind::Sustained { count, max_gap } if (count == 0 || max_gap == 0) => {
            return bad(format!("sustained count={count}, max_gap={max_gap}"));
        }
        AlgorithmKind::Goertzel { lo_hz, hi_hz }
        | AlgorithmKind::GoertzelFreq { lo_hz, hi_hz }
        | AlgorithmKind::GoertzelRatio { lo_hz, hi_hz }
            if !(lo_hz.is_finite() && hi_hz.is_finite() && 0.0 <= lo_hz && lo_hz <= hi_hz) =>
        {
            return bad(format!("goertzel band [{lo_hz}, {hi_hz}] is invalid"));
        }
        _ => {}
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::WindowShapeParam;
    use sidewinder_sensors::SensorChannel;

    fn ch(c: SensorChannel) -> Vec<Source> {
        vec![Source::Channel(c)]
    }

    fn node(id: u32) -> Vec<Source> {
        vec![Source::Node(NodeId(id))]
    }

    fn valid_program() -> Program {
        let mut p = Program::new();
        p.push_node(
            ch(SensorChannel::AccX),
            NodeId(1),
            AlgorithmKind::MovingAvg { window: 10 },
        );
        p.push_node(
            node(1),
            NodeId(2),
            AlgorithmKind::MinThreshold { threshold: 15.0 },
        );
        p.push_out(NodeId(2));
        p
    }

    #[test]
    fn accepts_valid_program() {
        assert!(validate(&valid_program()).is_ok());
    }

    #[test]
    fn rejects_zero_id() {
        let mut p = Program::new();
        p.push_node(
            ch(SensorChannel::AccX),
            NodeId(0),
            AlgorithmKind::MovingAvg { window: 1 },
        );
        p.push_out(NodeId(0));
        assert_eq!(validate(&p), Err(ValidateError::ZeroId));
    }

    #[test]
    fn rejects_duplicate_id() {
        let mut p = Program::new();
        p.push_node(
            ch(SensorChannel::AccX),
            NodeId(1),
            AlgorithmKind::MovingAvg { window: 1 },
        );
        p.push_node(
            ch(SensorChannel::AccY),
            NodeId(1),
            AlgorithmKind::MovingAvg { window: 1 },
        );
        p.push_out(NodeId(1));
        assert_eq!(validate(&p), Err(ValidateError::DuplicateId(NodeId(1))));
    }

    #[test]
    fn rejects_forward_reference() {
        let mut p = Program::new();
        p.push_node(
            node(2),
            NodeId(1),
            AlgorithmKind::MinThreshold { threshold: 0.0 },
        );
        p.push_node(
            ch(SensorChannel::AccX),
            NodeId(2),
            AlgorithmKind::MovingAvg { window: 1 },
        );
        p.push_out(NodeId(1));
        assert!(matches!(
            validate(&p),
            Err(ValidateError::UndefinedSource { .. })
        ));
    }

    #[test]
    fn rejects_missing_out() {
        let mut p = Program::new();
        p.push_node(
            ch(SensorChannel::AccX),
            NodeId(1),
            AlgorithmKind::MovingAvg { window: 1 },
        );
        assert_eq!(validate(&p), Err(ValidateError::MissingOut));
    }

    #[test]
    fn rejects_multiple_out() {
        let mut p = valid_program();
        p.push_out(NodeId(2));
        assert_eq!(validate(&p), Err(ValidateError::MultipleOut));
    }

    #[test]
    fn rejects_out_of_undefined_node() {
        let mut p = Program::new();
        p.push_node(
            ch(SensorChannel::AccX),
            NodeId(1),
            AlgorithmKind::MovingAvg { window: 1 },
        );
        p.push_out(NodeId(9));
        assert!(matches!(
            validate(&p),
            Err(ValidateError::UndefinedSource { at: None, .. })
        ));
    }

    #[test]
    fn rejects_bad_arity_on_single_input() {
        let mut p = Program::new();
        p.push_node(
            vec![
                Source::Channel(SensorChannel::AccX),
                Source::Channel(SensorChannel::AccY),
            ],
            NodeId(1),
            AlgorithmKind::MovingAvg { window: 1 },
        );
        p.push_out(NodeId(1));
        assert!(matches!(validate(&p), Err(ValidateError::BadArity { .. })));
    }

    #[test]
    fn aggregators_accept_many_inputs() {
        let mut p = Program::new();
        for (i, c) in SensorChannel::ACCEL.into_iter().enumerate() {
            p.push_node(
                ch(c),
                NodeId(i as u32 + 1),
                AlgorithmKind::MovingAvg { window: 4 },
            );
        }
        p.push_node(
            vec![
                Source::Node(NodeId(1)),
                Source::Node(NodeId(2)),
                Source::Node(NodeId(3)),
            ],
            NodeId(4),
            AlgorithmKind::VectorMagnitude,
        );
        p.push_out(NodeId(4));
        assert!(validate(&p).is_ok());
    }

    #[test]
    fn rejects_type_mismatch_channel_into_fft() {
        let mut p = Program::new();
        // fft consumes vectors; a raw channel is a scalar stream.
        p.push_node(ch(SensorChannel::Mic), NodeId(1), AlgorithmKind::Fft);
        p.push_out(NodeId(1));
        assert!(matches!(
            validate(&p),
            Err(ValidateError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn rejects_vector_into_out() {
        let mut p = Program::new();
        p.push_node(
            ch(SensorChannel::Mic),
            NodeId(1),
            AlgorithmKind::Window {
                size: 16,
                hop: 16,
                shape: WindowShapeParam::Rectangular,
            },
        );
        p.push_out(NodeId(1));
        assert!(matches!(
            validate(&p),
            Err(ValidateError::NonScalarOut { .. })
        ));
    }

    #[test]
    fn rejects_bad_window_params() {
        for (size, hop) in [(0u32, 1u32), (16, 0), (16, 32), (12, 4)] {
            let mut p = Program::new();
            p.push_node(
                ch(SensorChannel::Mic),
                NodeId(1),
                AlgorithmKind::Window {
                    size,
                    hop,
                    shape: WindowShapeParam::Rectangular,
                },
            );
            p.push_node(
                node(1),
                NodeId(2),
                AlgorithmKind::Stat(crate::ast::StatFn::Mean),
            );
            p.push_out(NodeId(2));
            assert!(
                matches!(validate(&p), Err(ValidateError::BadParam { .. })),
                "size={size}, hop={hop} should be rejected"
            );
        }
    }

    #[test]
    fn rejects_bad_scalar_params() {
        let cases = [
            AlgorithmKind::MovingAvg { window: 0 },
            AlgorithmKind::ExpMovingAvg { alpha: 0.0 },
            AlgorithmKind::ExpMovingAvg { alpha: 1.5 },
            AlgorithmKind::MinThreshold {
                threshold: f64::NAN,
            },
            AlgorithmKind::BandThreshold { lo: 2.0, hi: 1.0 },
            AlgorithmKind::OutsideThreshold {
                lo: f64::INFINITY,
                hi: 0.0,
            },
            AlgorithmKind::Sustained {
                count: 0,
                max_gap: 1,
            },
        ];
        for kind in cases {
            let mut p = Program::new();
            p.push_node(ch(SensorChannel::AccX), NodeId(1), kind);
            p.push_out(NodeId(1));
            assert!(
                matches!(validate(&p), Err(ValidateError::BadParam { .. })),
                "{kind:?} should be rejected"
            );
        }
    }

    #[test]
    fn rejects_bad_vector_params() {
        let mut p = Program::new();
        p.push_node(
            ch(SensorChannel::Mic),
            NodeId(1),
            AlgorithmKind::Window {
                size: 16,
                hop: 16,
                shape: WindowShapeParam::Rectangular,
            },
        );
        p.push_node(
            node(1),
            NodeId(2),
            AlgorithmKind::ZcrVariance { sub_windows: 1 },
        );
        p.push_out(NodeId(2));
        assert!(matches!(validate(&p), Err(ValidateError::BadParam { .. })));
    }

    #[test]
    fn rejects_dead_node() {
        // A live chain 1→2→OUT plus an unused node 9.
        let p = valid_program();
        let mut q = Program::new();
        for stmt in p.stmts().iter().take(2).cloned() {
            match stmt {
                Stmt::Node {
                    sources, id, kind, ..
                } => q.push_node(sources, id, kind),
                Stmt::Out { source, .. } => q.push_out(source),
            }
        }
        q.push_node(
            ch(SensorChannel::AccZ),
            NodeId(9),
            AlgorithmKind::MovingAvg { window: 2 },
        );
        q.push_out(NodeId(2));
        assert_eq!(validate(&q), Err(ValidateError::DeadNode(NodeId(9))));
    }

    #[test]
    fn full_audio_pipeline_validates() {
        let mut p = Program::new();
        p.push_node(
            ch(SensorChannel::Mic),
            NodeId(1),
            AlgorithmKind::Window {
                size: 256,
                hop: 256,
                shape: WindowShapeParam::Hamming,
            },
        );
        p.push_node(
            node(1),
            NodeId(2),
            AlgorithmKind::HighPass { cutoff_hz: 750.0 },
        );
        p.push_node(node(2), NodeId(3), AlgorithmKind::Fft);
        p.push_node(node(3), NodeId(4), AlgorithmKind::SpectralMagnitude);
        p.push_node(node(4), NodeId(5), AlgorithmKind::DominantRatio);
        p.push_node(
            node(5),
            NodeId(6),
            AlgorithmKind::MinThreshold { threshold: 4.0 },
        );
        p.push_node(
            node(6),
            NodeId(7),
            AlgorithmKind::Sustained {
                count: 3,
                max_gap: 512,
            },
        );
        p.push_out(NodeId(7));
        assert_eq!(validate(&p), Ok(()));
    }

    #[test]
    fn located_errors_cite_source_lines() {
        let p: Program = "ACC_X -> movingAvg(id=1, params={10});
ACC_Y -> movingAvg(id=1, params={10});
1 -> OUT;"
            .parse()
            .unwrap();
        let e = validate_located(&p).unwrap_err();
        assert_eq!(e.error, ValidateError::DuplicateId(NodeId(1)));
        assert_eq!(e.line, Some(2));
        assert_eq!(e.to_string(), "line 2: node id 1 declared twice");

        // Dead nodes are located at their declaration, not at OUT.
        let p: Program = "ACC_X -> movingAvg(id=1, params={10});
ACC_Z -> movingAvg(id=9, params={2});
1 -> OUT;"
            .parse()
            .unwrap();
        let e = validate_located(&p).unwrap_err();
        assert_eq!(e.error, ValidateError::DeadNode(NodeId(9)));
        assert_eq!(e.line, Some(2));

        // API-built programs have no lines; rendering falls back to ids.
        let mut q = Program::new();
        q.push_node(
            ch(SensorChannel::AccX),
            NodeId(0),
            AlgorithmKind::MovingAvg { window: 1 },
        );
        q.push_out(NodeId(0));
        let e = validate_located(&q).unwrap_err();
        assert_eq!(e.line, None);
        assert_eq!(e.to_string(), "node ids must be non-zero");
    }

    #[test]
    fn errors_display_readably() {
        assert_eq!(
            ValidateError::DuplicateId(NodeId(3)).to_string(),
            "node id 3 declared twice"
        );
        assert!(ValidateError::MissingOut.to_string().contains("OUT"));
        assert!(ValidateError::TypeMismatch {
            id: NodeId(1),
            expected: ValueType::Vector,
            found: ValueType::Scalar
        }
        .to_string()
        .contains("vector"));
    }
}
