//! Property tests: every valid generated program prints to text that parses
//! back to the identical program, and validation is stable across the trip.

use proptest::prelude::*;
use sidewinder_ir::{AlgorithmKind, NodeId, Program, Source, StatFn, WindowShapeParam};
use sidewinder_sensors::SensorChannel;

fn arb_scalar_chain_kind() -> impl Strategy<Value = AlgorithmKind> {
    prop_oneof![
        (1u32..64).prop_map(|window| AlgorithmKind::MovingAvg { window }),
        (0.01f64..=1.0).prop_map(|alpha| AlgorithmKind::ExpMovingAvg { alpha }),
        (-100.0f64..100.0).prop_map(|threshold| AlgorithmKind::MinThreshold { threshold }),
        (-100.0f64..100.0).prop_map(|threshold| AlgorithmKind::MaxThreshold { threshold }),
        (-100.0f64..100.0, 0.0f64..50.0)
            .prop_map(|(lo, span)| AlgorithmKind::BandThreshold { lo, hi: lo + span }),
        (-100.0f64..100.0, 0.0f64..50.0)
            .prop_map(|(lo, span)| AlgorithmKind::OutsideThreshold { lo, hi: lo + span }),
        (1u32..10, 1u32..4096)
            .prop_map(|(count, max_gap)| AlgorithmKind::Sustained { count, max_gap }),
    ]
}

fn arb_vector_reducer() -> impl Strategy<Value = AlgorithmKind> {
    prop_oneof![
        Just(AlgorithmKind::Zcr),
        (2u32..16).prop_map(|sub_windows| AlgorithmKind::ZcrVariance { sub_windows }),
        (0usize..StatFn::ALL.len()).prop_map(|i| AlgorithmKind::Stat(StatFn::ALL[i])),
        Just(AlgorithmKind::DominantRatio),
        Just(AlgorithmKind::DominantFreq),
    ]
}

fn arb_window() -> impl Strategy<Value = AlgorithmKind> {
    (3u32..10, 0usize..3).prop_flat_map(|(bits, shape_idx)| {
        let size = 1u32 << bits;
        (1u32..=size).prop_map(move |hop| AlgorithmKind::Window {
            size,
            hop,
            shape: [
                WindowShapeParam::Rectangular,
                WindowShapeParam::Hamming,
                WindowShapeParam::Hann,
            ][shape_idx],
        })
    })
}

/// A generated, always-valid program: N accelerometer branches with scalar
/// chains joined by vectorMagnitude, or a mic window pipeline reduced to a
/// scalar, each followed by a threshold chain and OUT.
fn arb_program() -> impl Strategy<Value = Program> {
    prop_oneof![accel_program(), audio_program()]
}

fn accel_program() -> impl Strategy<Value = Program> {
    (
        1usize..=3,
        prop::collection::vec(arb_scalar_chain_kind(), 1..4),
        prop::collection::vec(arb_scalar_chain_kind(), 0..3),
    )
        .prop_map(|(branches, per_branch, tail)| {
            let mut p = Program::new();
            let mut next_id = 1u32;
            let mut joins = Vec::new();
            for b in 0..branches {
                let channel = SensorChannel::ACCEL[b];
                let mut src = Source::Channel(channel);
                for kind in &per_branch {
                    let id = NodeId(next_id);
                    next_id += 1;
                    p.push_node(vec![src], id, *kind);
                    src = Source::Node(id);
                }
                joins.push(src);
            }
            let join_id = NodeId(next_id);
            next_id += 1;
            p.push_node(joins, join_id, AlgorithmKind::VectorMagnitude);
            let mut src = Source::Node(join_id);
            for kind in &tail {
                let id = NodeId(next_id);
                next_id += 1;
                p.push_node(vec![src], id, *kind);
                src = Source::Node(id);
            }
            let Source::Node(last) = src else {
                unreachable!()
            };
            p.push_out(last);
            p
        })
}

fn audio_program() -> impl Strategy<Value = Program> {
    (
        arb_window(),
        arb_vector_reducer(),
        prop::collection::vec(arb_scalar_chain_kind(), 0..3),
    )
        .prop_map(|(window, reducer, tail)| {
            let mut p = Program::new();
            p.push_node(vec![Source::Channel(SensorChannel::Mic)], NodeId(1), window);
            p.push_node(vec![Source::Node(NodeId(1))], NodeId(2), reducer);
            let mut src = Source::Node(NodeId(2));
            for (offset, kind) in tail.iter().enumerate() {
                let id = NodeId(3 + offset as u32);
                p.push_node(vec![src], id, *kind);
                src = Source::Node(id);
            }
            let Source::Node(last) = src else {
                unreachable!()
            };
            p.push_out(last);
            p
        })
}

proptest! {
    #[test]
    fn generated_programs_validate(p in arb_program()) {
        prop_assert!(p.validate().is_ok(), "{:?}", p.validate());
    }

    #[test]
    fn print_parse_is_identity(p in arb_program()) {
        let text = p.to_string();
        let parsed: Program = text.parse().expect("printed program must parse");
        prop_assert_eq!(parsed, p);
    }

    #[test]
    fn reprinting_is_stable(p in arb_program()) {
        let once = p.to_string();
        let twice: Program = once.parse().unwrap();
        prop_assert_eq!(twice.to_string(), once);
    }

    #[test]
    fn validation_survives_round_trip(p in arb_program()) {
        let parsed: Program = p.to_string().parse().unwrap();
        prop_assert_eq!(parsed.validate().is_ok(), p.validate().is_ok());
    }

    #[test]
    fn channels_are_preserved(p in arb_program()) {
        let parsed: Program = p.to_string().parse().unwrap();
        prop_assert_eq!(parsed.channels(), p.channels());
        prop_assert_eq!(parsed.uses_fft(), p.uses_fft());
    }
}

proptest! {
    /// Arbitrary bytes — including invalid UTF-8 replaced by U+FFFD —
    /// must never panic the parser, whatever they decode to.
    #[test]
    fn garbage_bytes_never_panic_the_parser(
        bytes in prop::collection::vec(0u8..=255u8, 0..200)
    ) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = text.parse::<Program>();
    }

    /// Cutting a valid program anywhere — mid-keyword, mid-number,
    /// inside a `params={...}` list — must yield an error or a valid
    /// prefix, never a panic.
    #[test]
    fn truncated_programs_error_instead_of_panicking(
        (text, cut) in arb_program().prop_flat_map(|p| {
            let text = p.to_string();
            let len = text.len();
            (Just(text), 0usize..len)
        })
    ) {
        if let Some(truncated) = text.get(..cut) {
            if let Ok(p) = truncated.parse::<Program>() {
                // A cut at a statement boundary can leave a well-formed
                // prefix; it must still survive validation or reject
                // cleanly.
                let _ = p.validate();
            }
        }
    }

    /// Re-declaring a node id is rejected by the parser or by
    /// validation — a duplicated statement never slips through.
    #[test]
    fn duplicated_statements_are_rejected(p in arb_program()) {
        let text = p.to_string();
        let node_line = text
            .lines()
            .find(|l| l.contains("id="))
            .expect("every generated program declares a node");
        let mutated = format!("{node_line}\n{text}");
        match mutated.parse::<Program>() {
            Err(_) => {}
            Ok(p) => prop_assert!(
                p.validate().is_err(),
                "duplicate node id accepted:\n{mutated}"
            ),
        }
    }
}

/// Golden textual fixtures: the wake-up conditions of the six
/// evaluation applications, captured as `.swir` files. Each must be a
/// parse → print → parse fixed point, and the printed form must equal
/// the fixture byte for byte, so any change to the textual format (or
/// to a condition) shows up as a reviewed fixture diff.
const GOLDEN_FIXTURES: [(&str, &str); 6] = [
    ("steps", include_str!("fixtures/steps.swir")),
    ("transitions", include_str!("fixtures/transitions.swir")),
    ("headbutts", include_str!("fixtures/headbutts.swir")),
    ("sirens", include_str!("fixtures/sirens.swir")),
    ("music", include_str!("fixtures/music.swir")),
    ("phrase", include_str!("fixtures/phrase.swir")),
];

#[test]
fn golden_fixtures_parse_and_validate() {
    for (name, text) in GOLDEN_FIXTURES {
        let program: Program = text
            .parse()
            .unwrap_or_else(|e| panic!("{name}.swir does not parse: {e}"));
        program
            .validate()
            .unwrap_or_else(|e| panic!("{name}.swir does not validate: {e:?}"));
    }
}

#[test]
fn golden_fixtures_print_back_byte_identical() {
    for (name, text) in GOLDEN_FIXTURES {
        let program: Program = text.parse().unwrap();
        assert_eq!(
            program.to_string(),
            text,
            "{name}.swir is not in the printer's canonical form"
        );
    }
}

#[test]
fn golden_fixtures_are_a_parse_print_parse_fixed_point() {
    for (name, text) in GOLDEN_FIXTURES {
        let first: Program = text.parse().unwrap();
        let printed = first.to_string();
        let second: Program = printed
            .parse()
            .unwrap_or_else(|e| panic!("{name}: printed form does not re-parse: {e}"));
        assert_eq!(first, second, "{name}: round trip changed the program");
        assert_eq!(
            second.to_string(),
            printed,
            "{name}: second print differs from the first"
        );
    }
}
