//! The fleet service's wire API, carried over the hub's framed link
//! encoding.
//!
//! Clients talk to the fleet service the way the phone talks to the
//! hub: every message is chunked into 64-byte CRC-16/CCITT-FALSE frames
//! by [`sidewinder_hub::link::encode_frame_stream`]. Inside the frames
//! is an 8-byte header — magic `"SF"`, a protocol version, a message
//! type, and a big-endian payload length — followed by the payload.
//!
//! Decoding is *total*: truncated streams, corrupted frames, bad magic,
//! length mismatches, and malformed IR all come back as typed
//! [`WireError`]s, never panics. The conformance suite feeds this
//! module garbage to hold it to that.

use sidewinder_hub::link::{decode_frame_stream, encode_frame_stream, FrameStreamError};
use sidewinder_ir::Program;

/// Message magic: the first two payload bytes of every message.
pub const WIRE_MAGIC: [u8; 2] = *b"SF";

/// Current protocol version.
pub const WIRE_VERSION: u8 = 1;

/// Bytes of header before the payload.
pub const HEADER_BYTES: usize = 8;

/// Message types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum MessageType {
    /// Client → service: an IR wake-condition program (UTF-8 text).
    SubmitProgram = 0x01,
    /// Client → service: request the current fleet rollup.
    QueryRollup = 0x02,
    /// Service → client: submission accepted (see [`SubmitAck`]).
    SubmitAck = 0x81,
    /// Service → client: rollup JSON (UTF-8 text).
    RollupReply = 0x82,
    /// Service → client: request failed; payload is the error text.
    ErrorReply = 0xEE,
}

impl MessageType {
    fn from_byte(b: u8) -> Option<MessageType> {
        match b {
            0x01 => Some(MessageType::SubmitProgram),
            0x02 => Some(MessageType::QueryRollup),
            0x81 => Some(MessageType::SubmitAck),
            0x82 => Some(MessageType::RollupReply),
            0xEE => Some(MessageType::ErrorReply),
            _ => None,
        }
    }
}

/// Everything that can go wrong decoding a wire message.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// The frame stream itself was truncated or failed CRC.
    Frame(FrameStreamError),
    /// Fewer than [`HEADER_BYTES`] bytes of de-framed payload.
    TruncatedHeader {
        /// Bytes actually present.
        got: usize,
    },
    /// The first two bytes were not [`WIRE_MAGIC`].
    BadMagic {
        /// What arrived instead.
        got: [u8; 2],
    },
    /// A version this implementation does not speak.
    UnsupportedVersion(u8),
    /// An unknown message-type byte.
    UnknownMessageType(u8),
    /// Header length disagrees with the bytes present.
    LengthMismatch {
        /// Length the header declared.
        declared: usize,
        /// Payload bytes actually present.
        got: usize,
    },
    /// The expected message type did not arrive.
    UnexpectedType {
        /// What the caller wanted.
        expected: MessageType,
        /// What arrived.
        got: MessageType,
    },
    /// A text payload was not UTF-8.
    BadUtf8,
    /// The submitted program failed to parse.
    Parse(String),
    /// The submitted program parsed but failed validation.
    Invalid(String),
    /// A fixed-size payload had the wrong size.
    BadPayloadSize {
        /// Expected byte count.
        expected: usize,
        /// Actual byte count.
        got: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Frame(e) => write!(f, "frame stream: {e}"),
            WireError::TruncatedHeader { got } => {
                write!(f, "message header truncated: {got} of {HEADER_BYTES} bytes")
            }
            WireError::BadMagic { got } => {
                write!(f, "bad magic {:02x}{:02x} (want \"SF\")", got[0], got[1])
            }
            WireError::UnsupportedVersion(v) => {
                write!(f, "unsupported protocol version {v} (speak {WIRE_VERSION})")
            }
            WireError::UnknownMessageType(t) => write!(f, "unknown message type {t:#04x}"),
            WireError::LengthMismatch { declared, got } => {
                write!(
                    f,
                    "payload length mismatch: header says {declared}, got {got}"
                )
            }
            WireError::UnexpectedType { expected, got } => {
                write!(f, "expected {expected:?}, got {got:?}")
            }
            WireError::BadUtf8 => write!(f, "text payload is not valid UTF-8"),
            WireError::Parse(e) => write!(f, "program parse error: {e}"),
            WireError::Invalid(e) => write!(f, "program validation error: {e}"),
            WireError::BadPayloadSize { expected, got } => {
                write!(f, "bad payload size: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<FrameStreamError> for WireError {
    fn from(e: FrameStreamError) -> Self {
        WireError::Frame(e)
    }
}

/// Encodes a message of `kind` with `payload` into a CRC frame stream.
pub fn encode_message(kind: MessageType, payload: &[u8]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(HEADER_BYTES + payload.len());
    bytes.extend_from_slice(&WIRE_MAGIC);
    bytes.push(WIRE_VERSION);
    bytes.push(kind as u8);
    bytes.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    bytes.extend_from_slice(payload);
    encode_frame_stream(&bytes)
}

/// Decodes a frame stream into `(message type, payload)`.
///
/// # Errors
///
/// Total on arbitrary input: every malformed stream maps to a typed
/// [`WireError`].
pub fn decode_message(stream: &[u8]) -> Result<(MessageType, Vec<u8>), WireError> {
    let bytes = decode_frame_stream(stream)?;
    if bytes.len() < HEADER_BYTES {
        return Err(WireError::TruncatedHeader { got: bytes.len() });
    }
    let magic = [bytes[0], bytes[1]];
    if magic != WIRE_MAGIC {
        return Err(WireError::BadMagic { got: magic });
    }
    if bytes[2] != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion(bytes[2]));
    }
    let kind = MessageType::from_byte(bytes[3]).ok_or(WireError::UnknownMessageType(bytes[3]))?;
    let declared = u32::from_be_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]) as usize;
    let payload = &bytes[HEADER_BYTES..];
    if payload.len() != declared {
        return Err(WireError::LengthMismatch {
            declared,
            got: payload.len(),
        });
    }
    Ok((kind, payload.to_vec()))
}

/// Encodes a program submission: the canonical IR text, framed.
pub fn encode_submit(program: &Program) -> Vec<u8> {
    encode_message(MessageType::SubmitProgram, program.to_string().as_bytes())
}

/// Decodes and *admits* a submitted program: UTF-8, parse, validate.
///
/// # Errors
///
/// [`WireError::BadUtf8`], [`WireError::Parse`], or
/// [`WireError::Invalid`]; the service rejects the submission and the
/// fleet keeps serving what it already has.
pub fn decode_submit(payload: &[u8]) -> Result<Program, WireError> {
    let text = std::str::from_utf8(payload).map_err(|_| WireError::BadUtf8)?;
    let program: Program = text.parse().map_err(|e| WireError::Parse(format!("{e}")))?;
    program
        .validate_located()
        .map_err(|e| WireError::Invalid(format!("{e}")))?;
    Ok(program)
}

/// The service's answer to a program submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubmitAck {
    /// The submission's id (its index in arrival order).
    pub condition_id: u32,
    /// Which unique (post-dedup) program the submission executes.
    pub unique_index: u32,
    /// Whether the optimized submission was structurally identical to
    /// an already-ingested condition (and shares its instance).
    pub deduplicated: bool,
    /// Unique programs now being served.
    pub active_unique: u32,
    /// Stable digest of the optimized program this submission runs.
    pub program_digest: u64,
    /// Digest of the fused suite's resource certificate against the
    /// fleet's configured core (0 when the fused suite exceeds image
    /// capacities and is served by the host runtime uncertified).
    pub cert_digest: u64,
}

const ACK_BYTES: usize = 29;

/// Encodes a [`SubmitAck`] reply.
pub fn encode_submit_ack(ack: &SubmitAck) -> Vec<u8> {
    let mut payload = Vec::with_capacity(ACK_BYTES);
    payload.extend_from_slice(&ack.condition_id.to_be_bytes());
    payload.extend_from_slice(&ack.unique_index.to_be_bytes());
    payload.push(u8::from(ack.deduplicated));
    payload.extend_from_slice(&ack.active_unique.to_be_bytes());
    payload.extend_from_slice(&ack.program_digest.to_be_bytes());
    payload.extend_from_slice(&ack.cert_digest.to_be_bytes());
    encode_message(MessageType::SubmitAck, &payload)
}

/// Decodes a [`SubmitAck`] payload.
///
/// # Errors
///
/// [`WireError::BadPayloadSize`] when the payload is not exactly
/// [`SubmitAck`]-shaped.
pub fn decode_submit_ack(payload: &[u8]) -> Result<SubmitAck, WireError> {
    if payload.len() != ACK_BYTES {
        return Err(WireError::BadPayloadSize {
            expected: ACK_BYTES,
            got: payload.len(),
        });
    }
    Ok(SubmitAck {
        condition_id: u32::from_be_bytes(payload[0..4].try_into().unwrap()),
        unique_index: u32::from_be_bytes(payload[4..8].try_into().unwrap()),
        deduplicated: payload[8] != 0,
        active_unique: u32::from_be_bytes(payload[9..13].try_into().unwrap()),
        program_digest: u64::from_be_bytes(payload[13..21].try_into().unwrap()),
        cert_digest: u64::from_be_bytes(payload[21..29].try_into().unwrap()),
    })
}

/// Encodes a rollup query.
pub fn encode_query_rollup() -> Vec<u8> {
    encode_message(MessageType::QueryRollup, &[])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn steps() -> Program {
        "ACC_X -> movingAvg(id=1, params={10});
         1 -> minThreshold(id=2, params={15});
         2 -> OUT;"
            .parse()
            .unwrap()
    }

    #[test]
    fn submit_round_trips_through_frames() {
        let p = steps();
        let stream = encode_submit(&p);
        let (kind, payload) = decode_message(&stream).unwrap();
        assert_eq!(kind, MessageType::SubmitProgram);
        let decoded = decode_submit(&payload).unwrap();
        assert_eq!(decoded, p);
    }

    #[test]
    fn ack_round_trips() {
        let ack = SubmitAck {
            condition_id: 3,
            unique_index: 1,
            deduplicated: true,
            active_unique: 2,
            program_digest: 0xDEAD_BEEF_0BAD_F00D,
            cert_digest: 0x0123_4567_89AB_CDEF,
        };
        let stream = encode_submit_ack(&ack);
        let (kind, payload) = decode_message(&stream).unwrap();
        assert_eq!(kind, MessageType::SubmitAck);
        assert_eq!(decode_submit_ack(&payload).unwrap(), ack);
        assert!(matches!(
            decode_submit_ack(&payload[..10]),
            Err(WireError::BadPayloadSize { expected: 29, .. })
        ));
    }

    #[test]
    fn truncation_and_garbage_are_typed_errors() {
        let stream = encode_submit(&steps());
        // Truncated at every prefix length: typed error, never panic.
        for cut in 0..stream.len() {
            assert!(decode_message(&stream[..cut]).is_err());
        }
        // Flipped byte: CRC failure.
        let mut corrupt = stream.clone();
        corrupt[6] ^= 0xFF;
        assert!(matches!(decode_message(&corrupt), Err(WireError::Frame(_))));
        // Pure garbage.
        let garbage: Vec<u8> = (0..200u32).map(|i| (i * 37 % 251) as u8).collect();
        assert!(decode_message(&garbage).is_err());
    }

    #[test]
    fn header_violations_are_specific() {
        // Valid frames around a payload with bad magic.
        let mut inner = vec![b'X', b'Y', WIRE_VERSION, 0x01, 0, 0, 0, 0];
        let stream = sidewinder_hub::link::encode_frame_stream(&inner);
        assert!(matches!(
            decode_message(&stream),
            Err(WireError::BadMagic { got: [b'X', b'Y'] })
        ));
        // Bad version.
        inner[0] = b'S';
        inner[1] = b'F';
        inner[2] = 99;
        let stream = sidewinder_hub::link::encode_frame_stream(&inner);
        assert!(matches!(
            decode_message(&stream),
            Err(WireError::UnsupportedVersion(99))
        ));
        // Unknown type.
        inner[2] = WIRE_VERSION;
        inner[3] = 0x7F;
        let stream = sidewinder_hub::link::encode_frame_stream(&inner);
        assert!(matches!(
            decode_message(&stream),
            Err(WireError::UnknownMessageType(0x7F))
        ));
        // Length mismatch.
        inner[3] = 0x01;
        inner[7] = 5;
        let stream = sidewinder_hub::link::encode_frame_stream(&inner);
        assert!(matches!(
            decode_message(&stream),
            Err(WireError::LengthMismatch {
                declared: 5,
                got: 0
            })
        ));
        // Too short for a header at all.
        let stream = sidewinder_hub::link::encode_frame_stream(&[1, 2, 3]);
        assert!(matches!(
            decode_message(&stream),
            Err(WireError::TruncatedHeader { got: 3 })
        ));
    }

    #[test]
    fn malformed_programs_are_rejected_as_submissions() {
        assert!(matches!(
            decode_submit(&[0xFF, 0xFE, 0x80]),
            Err(WireError::BadUtf8)
        ));
        assert!(matches!(
            decode_submit(b"this is not IR"),
            Err(WireError::Parse(_))
        ));
        // Parses but references an undefined node: validation rejects.
        assert!(matches!(
            decode_submit(b"ACC_X -> movingAvg(id=1, params={10});\n7 -> OUT;"),
            Err(WireError::Invalid(_))
        ));
    }
}
