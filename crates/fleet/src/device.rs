//! Per-device identity: archetype, seed derivation, and fault class.
//!
//! A fleet never stores a device table. Everything about device `i` —
//! which kind of user carries it, what its sensor data looks like, how
//! unreliable its hub and serial link are — is a pure function of the
//! fleet seed and the device id, computed on demand by the shard that
//! owns the device and discarded as soon as the device is simulated.
//! That is what keeps a million-device run's memory bounded by the
//! shard size rather than the fleet size.

use sidewinder_apps::{HeadbuttsApp, StepsApp, TransitionsApp};
use sidewinder_hub::fault::FaultSchedule;
use sidewinder_sensors::{Micros, SensorTrace};
use sidewinder_sim::Application;
use sidewinder_tracegen::{human_trace, robot_run, HumanTraceConfig, RobotRunConfig};

/// SplitMix64: the standard one-shot seed mixer. Used for every
/// per-device derivation so that nearby device ids get statistically
/// independent streams while remaining a pure function of the fleet
/// seed.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Maps a 64-bit word to a unit-interval float (53-bit mantissa).
#[inline]
fn unit(word: u64) -> f64 {
    (word >> 11) as f64 / (1u64 << 53) as f64
}

/// What kind of carrier a simulated device rides on. The archetype
/// fixes both the trace generator (motion statistics) and the
/// application whose classifier judges the wake condition's output.
///
/// All four archetypes are accelerometer-borne: at fleet scale the
/// 8 kHz microphone generators would dominate runtime for no extra
/// coverage of the fleet machinery itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceArchetype {
    /// A phone in a commuter's pocket: long walking bouts, transit
    /// stretches of stillness. Runs the *Steps* classifier.
    CommuterPhone,
    /// A phone carried around a retail floor: the paper's most
    /// walking-heavy subject profile. Runs the *Steps* classifier.
    RetailPhone,
    /// A desk worker's phone: mostly still, occasional sit/stand
    /// transitions. Runs the *Transitions* classifier.
    OfficePhone,
    /// The paper's robot mount (§4.1): scripted motion with headbutt
    /// events. Runs the *Headbutts* classifier.
    RobotMount,
}

impl DeviceArchetype {
    /// Every archetype, in mix order.
    pub const ALL: [DeviceArchetype; 4] = [
        DeviceArchetype::CommuterPhone,
        DeviceArchetype::RetailPhone,
        DeviceArchetype::OfficePhone,
        DeviceArchetype::RobotMount,
    ];

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            DeviceArchetype::CommuterPhone => "commuter",
            DeviceArchetype::RetailPhone => "retail",
            DeviceArchetype::OfficePhone => "office",
            DeviceArchetype::RobotMount => "robot",
        }
    }

    /// The application whose main-CPU classifier this archetype runs.
    pub fn app(self) -> Box<dyn Application + Send + Sync> {
        match self {
            DeviceArchetype::CommuterPhone | DeviceArchetype::RetailPhone => {
                Box::new(StepsApp::new())
            }
            DeviceArchetype::OfficePhone => Box::new(TransitionsApp::new()),
            DeviceArchetype::RobotMount => Box::new(HeadbuttsApp::new()),
        }
    }

    /// Generates this device's sensor trace. Streaming by construction:
    /// the caller materializes one trace, simulates it, and drops it
    /// before moving to the next device.
    pub fn generate_trace(self, seed: u64, duration: Micros) -> SensorTrace {
        match self {
            DeviceArchetype::CommuterPhone => human_trace(&HumanTraceConfig {
                duration,
                walking_fraction: 0.20,
                misc_fraction: 0.40,
                rate_hz: 50.0,
                seed,
                subject: "commuter",
            }),
            DeviceArchetype::RetailPhone => human_trace(&HumanTraceConfig {
                duration,
                walking_fraction: 0.37,
                misc_fraction: 0.30,
                rate_hz: 50.0,
                seed,
                subject: "retail",
            }),
            DeviceArchetype::OfficePhone => human_trace(&HumanTraceConfig {
                duration,
                walking_fraction: 0.08,
                misc_fraction: 0.15,
                rate_hz: 50.0,
                seed,
                subject: "office",
            }),
            DeviceArchetype::RobotMount => robot_run(&RobotRunConfig {
                duration,
                idle_fraction: 0.80,
                rate_hz: 50.0,
                seed,
            }),
        }
    }
}

/// Population weights over the four archetypes. Need not sum to one —
/// they are normalized when sampling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceMix {
    /// Weight of [`DeviceArchetype::CommuterPhone`].
    pub commuter: f64,
    /// Weight of [`DeviceArchetype::RetailPhone`].
    pub retail: f64,
    /// Weight of [`DeviceArchetype::OfficePhone`].
    pub office: f64,
    /// Weight of [`DeviceArchetype::RobotMount`].
    pub robot: f64,
}

impl Default for DeviceMix {
    fn default() -> Self {
        DeviceMix {
            commuter: 0.40,
            retail: 0.25,
            office: 0.25,
            robot: 0.10,
        }
    }
}

impl DeviceMix {
    /// Picks an archetype for a unit-interval draw.
    pub fn pick(&self, u: f64) -> DeviceArchetype {
        let weights = [self.commuter, self.retail, self.office, self.robot];
        let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
        if total <= 0.0 {
            return DeviceArchetype::CommuterPhone;
        }
        let mut mark = u.clamp(0.0, 1.0) * total;
        for (archetype, w) in DeviceArchetype::ALL.iter().zip(weights) {
            if !(w.is_finite() && w > 0.0) {
                continue;
            }
            if mark < w {
                return *archetype;
            }
            mark -= w;
        }
        DeviceArchetype::RobotMount
    }
}

/// Which reliability class a device falls into, in fault-model order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// No faults: the majority of the fleet.
    Clean,
    /// A noisy serial link: corrupted and dropped frames, recovered by
    /// the retry policy.
    NoisyLink,
    /// A hub that resets spontaneously, forcing program re-downloads.
    FlakyHub,
    /// A hub that is down for the whole run: the phone rides the
    /// degraded duty-cycle fallback end to end.
    Outage,
}

/// Population fractions for the per-device fault classes. The remainder
/// after the three faulty classes is clean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetFaultModel {
    /// Fraction of devices with a noisy serial link.
    pub noisy_link: f64,
    /// Fraction of devices whose hub resets spontaneously.
    pub flaky_hub: f64,
    /// Fraction of devices whose hub is down for the entire run.
    pub outage: f64,
    /// Frame corruption rate on noisy links.
    pub corruption_rate: f64,
    /// Frame drop rate on noisy links.
    pub drop_rate: f64,
    /// Mean interval between spontaneous resets on flaky hubs.
    pub reset_interval: Micros,
}

impl Default for FleetFaultModel {
    fn default() -> Self {
        FleetFaultModel {
            noisy_link: 0.12,
            flaky_hub: 0.05,
            outage: 0.03,
            corruption_rate: 0.20,
            drop_rate: 0.05,
            reset_interval: Micros::from_secs(20),
        }
    }
}

impl FleetFaultModel {
    /// A model where every device is fault-free.
    pub fn none() -> Self {
        FleetFaultModel {
            noisy_link: 0.0,
            flaky_hub: 0.0,
            outage: 0.0,
            ..FleetFaultModel::default()
        }
    }

    /// Classifies a unit-interval draw. Faulty classes occupy the low
    /// end of the interval so shrinking a fraction only reclassifies
    /// devices at the class boundary.
    pub fn classify(&self, u: f64) -> FaultClass {
        let noisy = self.noisy_link.clamp(0.0, 1.0);
        let flaky = self.flaky_hub.clamp(0.0, 1.0);
        let outage = self.outage.clamp(0.0, 1.0);
        if u < outage {
            FaultClass::Outage
        } else if u < outage + flaky {
            FaultClass::FlakyHub
        } else if u < outage + flaky + noisy {
            FaultClass::NoisyLink
        } else {
            FaultClass::Clean
        }
    }

    /// Builds the fault schedule for one device.
    pub fn schedule_for(&self, class: FaultClass, seed: u64, duration: Micros) -> FaultSchedule {
        match class {
            FaultClass::Clean => FaultSchedule::none(),
            FaultClass::NoisyLink => FaultSchedule::seeded(seed)
                .with_frame_corruption(self.corruption_rate)
                .with_frame_drops(self.drop_rate),
            FaultClass::FlakyHub => {
                FaultSchedule::seeded(seed).with_hub_resets_every(self.reset_interval)
            }
            FaultClass::Outage => {
                FaultSchedule::seeded(seed).with_hub_downtime(Micros::ZERO, duration)
            }
        }
    }
}

/// Everything the shard runner needs to simulate one device, derived
/// on demand from the fleet seed — never stored fleet-wide.
#[derive(Debug, Clone)]
pub struct DeviceSpec {
    /// Fleet-unique device id.
    pub device_id: u64,
    /// This device's private seed (trace generation and fault RNG).
    pub seed: u64,
    /// Carrier archetype.
    pub archetype: DeviceArchetype,
    /// Reliability class.
    pub fault_class: FaultClass,
    /// Fault schedule realizing the class.
    pub faults: FaultSchedule,
    /// Trace length.
    pub duration: Micros,
}

impl DeviceSpec {
    /// Derives device `device_id`'s spec from the fleet parameters.
    pub fn derive(
        fleet_seed: u64,
        device_id: u64,
        mix: &DeviceMix,
        faults: &FleetFaultModel,
        duration: Micros,
    ) -> DeviceSpec {
        let seed = splitmix64(fleet_seed ^ splitmix64(device_id.wrapping_add(1)));
        let archetype = mix.pick(unit(splitmix64(seed ^ 0xA1)));
        let fault_class = faults.classify(unit(splitmix64(seed ^ 0xF2)));
        let schedule = faults.schedule_for(fault_class, splitmix64(seed ^ 0x5C), duration);
        DeviceSpec {
            device_id,
            seed,
            archetype,
            fault_class,
            faults: schedule,
            duration,
        }
    }

    /// Generates this device's trace (streaming: caller drops it after
    /// simulating).
    pub fn trace(&self) -> SensorTrace {
        self.archetype.generate_trace(self.seed, self.duration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_stable() {
        // Reference values pin the mixer; changing it would silently
        // re-shuffle every fleet.
        assert_eq!(splitmix64(0), 0xe220_a839_7b1d_cdaf);
        assert_eq!(splitmix64(1), 0x910a_2dec_8902_5cc1);
    }

    #[test]
    fn mix_pick_covers_all_archetypes_and_is_deterministic() {
        let mix = DeviceMix::default();
        assert_eq!(mix.pick(0.0), DeviceArchetype::CommuterPhone);
        assert_eq!(mix.pick(0.5), DeviceArchetype::RetailPhone);
        assert_eq!(mix.pick(0.7), DeviceArchetype::OfficePhone);
        assert_eq!(mix.pick(0.95), DeviceArchetype::RobotMount);
        assert_eq!(mix.pick(1.0), DeviceArchetype::RobotMount);
        // Degenerate all-zero mix still resolves.
        let zero = DeviceMix {
            commuter: 0.0,
            retail: 0.0,
            office: 0.0,
            robot: 0.0,
        };
        assert_eq!(zero.pick(0.3), DeviceArchetype::CommuterPhone);
    }

    #[test]
    fn fault_classes_partition_the_unit_interval() {
        let m = FleetFaultModel::default();
        assert_eq!(m.classify(0.0), FaultClass::Outage);
        assert_eq!(m.classify(0.04), FaultClass::FlakyHub);
        assert_eq!(m.classify(0.10), FaultClass::NoisyLink);
        assert_eq!(m.classify(0.5), FaultClass::Clean);
        let none = FleetFaultModel::none();
        assert_eq!(none.classify(0.0), FaultClass::Clean);
    }

    #[test]
    fn device_specs_are_pure_functions_of_seed_and_id() {
        let mix = DeviceMix::default();
        let faults = FleetFaultModel::default();
        let d = Micros::from_secs(30);
        let a = DeviceSpec::derive(7, 42, &mix, &faults, d);
        let b = DeviceSpec::derive(7, 42, &mix, &faults, d);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.archetype, b.archetype);
        assert_eq!(a.fault_class, b.fault_class);
        // A different id or fleet seed moves the device seed.
        assert_ne!(a.seed, DeviceSpec::derive(7, 43, &mix, &faults, d).seed);
        assert_ne!(a.seed, DeviceSpec::derive(8, 42, &mix, &faults, d).seed);
    }

    #[test]
    fn traces_regenerate_bit_identically() {
        let mix = DeviceMix::default();
        let faults = FleetFaultModel::none();
        let spec = DeviceSpec::derive(11, 3, &mix, &faults, Micros::from_secs(20));
        let t1 = spec.trace();
        let t2 = spec.trace();
        assert_eq!(t1.duration(), t2.duration());
        for ch in t1.channels().collect::<Vec<_>>() {
            assert_eq!(
                t1.channel(ch).unwrap().samples(),
                t2.channel(ch).unwrap().samples()
            );
        }
    }
}
