//! Deterministic fleet-level observability rollups.
//!
//! A shard folds every device it simulates into a [`ShardRollup`]; the
//! fleet merges shard rollups *in shard-index order* into a
//! [`FleetRollup`]. All aggregate state is integer (counts, saturating
//! microsecond sums, microwatt histograms), so merging is associative
//! and the merged result is bit-identical regardless of how many
//! workers raced through the shards — the property the conformance
//! suite pins with [`FleetRollup::digest`].
//!
//! The digest deliberately covers only *population-level* aggregates
//! (never the capped failure samples, and never per-shard summaries),
//! so it is also invariant to the shard size: resharding the same fleet
//! changes how work is split, not what the fleet did.

use sidewinder_obs::Histogram;
use sidewinder_sensors::Micros;
use sidewinder_sim::{FaultCounters, SimResult};

use crate::device::FaultClass;

/// FNV-1a offset basis, matching the digests pinned elsewhere in the
/// repo (`results/*.json`).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Streaming FNV-1a over little-endian `u64` words.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Fnv(pub u64);

impl Fnv {
    pub fn new() -> Fnv {
        Fnv(FNV_OFFSET)
    }

    pub fn word(&mut self, w: u64) {
        for byte in w.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

/// How one simulated device ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceDisposition {
    /// Simulated to completion.
    Ok,
    /// The submitted wake condition reads a channel the device's trace
    /// does not record; the device sat the run out.
    Incompatible,
    /// The simulation returned a typed error.
    Failed,
    /// The device's cell panicked; the panic was caught and isolated.
    Panicked,
}

/// A capped sample of one device failure, for reports. Failure *counts*
/// are exact in the rollup; only the retained messages are capped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceFailure {
    /// Which device failed.
    pub device_id: u64,
    /// Whether it failed or panicked.
    pub disposition: DeviceDisposition,
    /// The error or panic message.
    pub message: String,
}

/// How many failure samples a shard retains (counts stay exact).
pub const MAX_FAILURE_SAMPLES: usize = 8;

/// Aggregates for one shard's devices.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardRollup {
    /// Shard index within the fleet.
    pub shard: u64,
    /// Devices assigned to this shard.
    pub devices: u64,
    /// Devices simulated to completion.
    pub ok: u64,
    /// Devices whose condition was incompatible with their trace.
    pub incompatible: u64,
    /// Devices that returned a typed simulation error.
    pub failed: u64,
    /// Devices whose cell panicked (caught and isolated).
    pub panicked: u64,
    /// Devices that spent the whole run in degraded fallback class.
    pub outage_devices: u64,
    /// Devices that spent any time degraded.
    pub degraded_devices: u64,
    /// Total degraded time across devices.
    pub degraded_time: Micros,
    /// Total phone wake-ups.
    pub wake_ups: u64,
    /// Total detections emitted by classifiers.
    pub detections: u64,
    /// Total ground-truth events across device traces.
    pub events: u64,
    /// Total ground-truth events recalled.
    pub recalled: u64,
    /// Total time awake across devices.
    pub awake: Micros,
    /// Total simulated time across devices.
    pub total_time: Micros,
    /// Sum of per-device average power, microwatts (integer).
    pub energy_sum_uw: u64,
    /// Distribution of per-device average power, microwatts.
    pub energy_uw: Histogram,
    /// Distribution of per-device wake-up counts.
    pub wake_counts: Histogram,
    /// Fault activity summed across devices.
    pub fault: FaultCounters,
    /// Up to [`MAX_FAILURE_SAMPLES`] retained failure messages.
    pub failures: Vec<DeviceFailure>,
}

impl ShardRollup {
    /// An empty rollup for shard `shard`.
    pub fn new(shard: u64) -> ShardRollup {
        ShardRollup {
            shard,
            devices: 0,
            ok: 0,
            incompatible: 0,
            failed: 0,
            panicked: 0,
            outage_devices: 0,
            degraded_devices: 0,
            degraded_time: Micros::ZERO,
            wake_ups: 0,
            detections: 0,
            events: 0,
            recalled: 0,
            awake: Micros::ZERO,
            total_time: Micros::ZERO,
            energy_sum_uw: 0,
            energy_uw: Histogram::new(),
            wake_counts: Histogram::new(),
            fault: FaultCounters::default(),
            failures: Vec::new(),
        }
    }

    /// Folds one completed device simulation into the rollup.
    pub fn absorb_ok(&mut self, class: FaultClass, result: &SimResult) {
        self.devices += 1;
        self.ok += 1;
        if class == FaultClass::Outage {
            self.outage_devices += 1;
        }
        if result.fault.degraded_time > Micros::ZERO {
            self.degraded_devices += 1;
            self.degraded_time = self
                .degraded_time
                .checked_add(result.fault.degraded_time)
                .unwrap_or(Micros::MAX);
        }
        self.wake_ups += result.wake_ups as u64;
        self.detections += result.stats.detections as u64;
        self.events += result.stats.events as u64;
        self.recalled += result.stats.recalled as u64;
        self.awake = self
            .awake
            .checked_add(result.breakdown.awake)
            .unwrap_or(Micros::MAX);
        self.total_time = self
            .total_time
            .checked_add(result.breakdown.total())
            .unwrap_or(Micros::MAX);
        // Integer microwatts: exact summation in any order, and the
        // histograms bucket the same value every merge.
        let uw = (result.average_power_mw * 1000.0).round().max(0.0) as u64;
        self.energy_sum_uw = self.energy_sum_uw.saturating_add(uw);
        self.energy_uw.record(uw);
        self.wake_counts.record(result.wake_ups as u64);
        self.fault.merge(&result.fault);
    }

    /// Folds one device that could not run (incompatible condition,
    /// typed error, or caught panic).
    pub fn absorb_failure(
        &mut self,
        device_id: u64,
        disposition: DeviceDisposition,
        message: String,
    ) {
        self.devices += 1;
        match disposition {
            DeviceDisposition::Incompatible => {
                self.incompatible += 1;
                return; // expected at population level; not a failure sample
            }
            DeviceDisposition::Failed => self.failed += 1,
            DeviceDisposition::Panicked => self.panicked += 1,
            DeviceDisposition::Ok => unreachable!("absorb_ok handles completed devices"),
        }
        if self.failures.len() < MAX_FAILURE_SAMPLES {
            self.failures.push(DeviceFailure {
                device_id,
                disposition,
                message,
            });
        }
    }

    /// Merges another shard's aggregates into this one (used by the
    /// fleet-level fold; call in shard-index order for reproducible
    /// failure-sample retention).
    pub fn merge(&mut self, other: &ShardRollup) {
        self.devices += other.devices;
        self.ok += other.ok;
        self.incompatible += other.incompatible;
        self.failed += other.failed;
        self.panicked += other.panicked;
        self.outage_devices += other.outage_devices;
        self.degraded_devices += other.degraded_devices;
        self.degraded_time = self
            .degraded_time
            .checked_add(other.degraded_time)
            .unwrap_or(Micros::MAX);
        self.wake_ups += other.wake_ups;
        self.detections += other.detections;
        self.events += other.events;
        self.recalled += other.recalled;
        self.awake = self.awake.checked_add(other.awake).unwrap_or(Micros::MAX);
        self.total_time = self
            .total_time
            .checked_add(other.total_time)
            .unwrap_or(Micros::MAX);
        self.energy_sum_uw = self.energy_sum_uw.saturating_add(other.energy_sum_uw);
        self.energy_uw.merge(&other.energy_uw);
        self.wake_counts.merge(&other.wake_counts);
        self.fault.merge(&other.fault);
        for f in &other.failures {
            if self.failures.len() >= MAX_FAILURE_SAMPLES {
                break;
            }
            self.failures.push(f.clone());
        }
    }

    /// FNV-1a digest of this shard's aggregates (failure samples
    /// excluded — their counts are covered).
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        self.fold_digest(&mut h);
        h.0
    }

    pub(crate) fn fold_digest(&self, h: &mut Fnv) {
        for w in [
            self.devices,
            self.ok,
            self.incompatible,
            self.failed,
            self.panicked,
            self.outage_devices,
            self.degraded_devices,
            self.degraded_time.as_micros(),
            self.wake_ups,
            self.detections,
            self.events,
            self.recalled,
            self.awake.as_micros(),
            self.total_time.as_micros(),
            self.energy_sum_uw,
        ] {
            h.word(w);
        }
        for &b in self.energy_uw.buckets() {
            h.word(b);
        }
        for &b in self.wake_counts.buckets() {
            h.word(b);
        }
        for w in [
            self.fault.frames_sent,
            self.fault.frames_corrupted,
            self.fault.frames_dropped,
            self.fault.frames_retried,
            self.fault.frames_lost,
            self.fault.hub_resets,
            self.fault.redownloads,
            self.fault.samples_dropped,
            self.fault.degraded_time.as_micros(),
            self.fault.recovery_time.as_micros(),
        ] {
            h.word(w);
        }
    }
}

/// One line of the fleet's per-shard table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSummary {
    /// Shard index.
    pub shard: u64,
    /// Devices in the shard.
    pub devices: u64,
    /// Devices that failed or panicked.
    pub failed: u64,
    /// Shard fault totals.
    pub frames_lost: u64,
    /// Shard hub resets.
    pub hub_resets: u64,
    /// The shard's own digest.
    pub digest: u64,
}

/// The fleet-wide rollup: merged shard aggregates plus the per-shard
/// summary table.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetRollup {
    /// Fleet seed the run derived everything from.
    pub seed: u64,
    /// Merged aggregates over every device.
    pub totals: ShardRollup,
    /// Per-shard summaries, in shard order.
    pub shards: Vec<ShardSummary>,
}

impl FleetRollup {
    /// Fraction of the fleet that spent any time in the degraded
    /// duty-cycle fallback.
    pub fn degraded_fraction(&self) -> f64 {
        if self.totals.devices == 0 {
            0.0
        } else {
            self.totals.degraded_devices as f64 / self.totals.devices as f64
        }
    }

    /// Mean wake-ups per device-hour across the fleet.
    pub fn wake_rate_per_device_hour(&self) -> f64 {
        let hours = self.totals.total_time.as_secs_f64() / 3600.0;
        if hours <= 0.0 {
            0.0
        } else {
            self.totals.wake_ups as f64 / hours
        }
    }

    /// Mean per-device average power in milliwatts.
    pub fn mean_power_mw(&self) -> f64 {
        if self.totals.ok == 0 {
            0.0
        } else {
            self.totals.energy_sum_uw as f64 / 1000.0 / self.totals.ok as f64
        }
    }

    /// Upper-bound power percentile in milliwatts (power-of-two bucket
    /// edge), from the microwatt histogram.
    pub fn power_percentile_mw(&self, q: f64) -> f64 {
        self.totals.energy_uw.quantile_upper_ns(q) as f64 / 1000.0
    }

    /// The fleet digest: FNV-1a over the merged aggregates only, so it
    /// is invariant to worker count *and* shard size.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.word(self.seed);
        self.totals.fold_digest(&mut h);
        h.0
    }

    /// Plain-text report for operators.
    pub fn report(&self) -> String {
        let t = &self.totals;
        let mut out = String::new();
        out.push_str(&format!(
            "fleet rollup (seed {:#x}): {} devices in {} shards\n",
            self.seed,
            t.devices,
            self.shards.len()
        ));
        out.push_str(&format!(
            "  ok {}  incompatible {}  failed {}  panicked {}\n",
            t.ok, t.incompatible, t.failed, t.panicked
        ));
        out.push_str(&format!(
            "  wake rate {:.2}/device-hour  mean power {:.3} mW  p50/p90/p99 <= {:.3}/{:.3}/{:.3} mW\n",
            self.wake_rate_per_device_hour(),
            self.mean_power_mw(),
            self.power_percentile_mw(0.50),
            self.power_percentile_mw(0.90),
            self.power_percentile_mw(0.99),
        ));
        out.push_str(&format!(
            "  degraded population {:.2}%  ({} devices, {:.1} s total; {} full-outage)\n",
            self.degraded_fraction() * 100.0,
            t.degraded_devices,
            t.degraded_time.as_secs_f64(),
            t.outage_devices,
        ));
        out.push_str(&format!(
            "  faults: {} frames sent, {} corrupted, {} dropped, {} retried, {} lost; {} hub resets, {} redownloads\n",
            t.fault.frames_sent,
            t.fault.frames_corrupted,
            t.fault.frames_dropped,
            t.fault.frames_retried,
            t.fault.frames_lost,
            t.fault.hub_resets,
            t.fault.redownloads,
        ));
        out.push_str("  power distribution (uW buckets):\n");
        for (lo, hi, count) in t.energy_uw.nonzero_buckets() {
            out.push_str(&format!("    [{lo:>10}, {hi:>10})  {count}\n"));
        }
        for f in &t.failures {
            out.push_str(&format!(
                "  failure sample: device {} ({:?}): {}\n",
                f.device_id, f.disposition, f.message
            ));
        }
        out.push_str(&format!("  digest {:#018x}\n", self.digest()));
        out
    }

    /// Machine-readable JSON (hand-rolled: the workspace is offline and
    /// carries no serde).
    pub fn to_json(&self) -> String {
        let t = &self.totals;
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"seed\": \"{:#x}\",\n", self.seed));
        out.push_str(&format!("  \"devices\": {},\n", t.devices));
        out.push_str(&format!("  \"shards\": {},\n", self.shards.len()));
        out.push_str(&format!("  \"ok\": {},\n", t.ok));
        out.push_str(&format!("  \"incompatible\": {},\n", t.incompatible));
        out.push_str(&format!("  \"failed\": {},\n", t.failed));
        out.push_str(&format!("  \"panicked\": {},\n", t.panicked));
        out.push_str(&format!("  \"wake_ups\": {},\n", t.wake_ups));
        out.push_str(&format!("  \"detections\": {},\n", t.detections));
        out.push_str(&format!("  \"events\": {},\n", t.events));
        out.push_str(&format!("  \"recalled\": {},\n", t.recalled));
        out.push_str(&format!(
            "  \"degraded_devices\": {},\n",
            t.degraded_devices
        ));
        out.push_str(&format!("  \"outage_devices\": {},\n", t.outage_devices));
        out.push_str(&format!("  \"energy_sum_uw\": {},\n", t.energy_sum_uw));
        out.push_str(&format!("  \"frames_sent\": {},\n", t.fault.frames_sent));
        out.push_str(&format!("  \"frames_lost\": {},\n", t.fault.frames_lost));
        out.push_str(&format!("  \"hub_resets\": {},\n", t.fault.hub_resets));
        out.push_str(&format!("  \"digest\": \"{:#018x}\"\n", self.digest()));
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_result(power_mw: f64, wakes: usize) -> SimResult {
        use sidewinder_sim::{DetectionStats, PowerBreakdown};
        SimResult {
            strategy: "Sw+".into(),
            app: "steps".into(),
            trace: "t".into(),
            breakdown: PowerBreakdown {
                awake: Micros::from_secs(5),
                asleep: Micros::from_secs(55),
                ..PowerBreakdown::default()
            },
            average_power_mw: power_mw,
            wake_ups: wakes,
            stats: DetectionStats {
                events: 4,
                recalled: 3,
                detections: 5,
                true_positives: 3,
            },
            detections: Vec::new(),
            discovery_delays: Vec::new(),
            fault: FaultCounters::default(),
        }
    }

    #[test]
    fn absorb_and_merge_agree() {
        // Devices folded into one shard == two shards merged.
        let r1 = fake_result(40.0, 12);
        let r2 = fake_result(90.5, 30);
        let mut whole = ShardRollup::new(0);
        whole.absorb_ok(FaultClass::Clean, &r1);
        whole.absorb_ok(FaultClass::Clean, &r2);
        whole.absorb_failure(3, DeviceDisposition::Panicked, "boom".into());

        let mut a = ShardRollup::new(0);
        a.absorb_ok(FaultClass::Clean, &r1);
        let mut b = ShardRollup::new(1);
        b.absorb_ok(FaultClass::Clean, &r2);
        b.absorb_failure(3, DeviceDisposition::Panicked, "boom".into());
        a.merge(&b);

        assert_eq!(whole.devices, a.devices);
        assert_eq!(whole.energy_sum_uw, a.energy_sum_uw);
        assert_eq!(whole.energy_uw, a.energy_uw);
        assert_eq!(whole.digest(), a.digest());
    }

    #[test]
    fn incompatible_devices_count_but_are_not_failures() {
        let mut r = ShardRollup::new(0);
        r.absorb_failure(9, DeviceDisposition::Incompatible, "missing MIC".into());
        assert_eq!(r.devices, 1);
        assert_eq!(r.incompatible, 1);
        assert_eq!(r.failed, 0);
        assert!(r.failures.is_empty());
    }

    #[test]
    fn failure_samples_cap_but_counts_do_not() {
        let mut r = ShardRollup::new(0);
        for i in 0..(MAX_FAILURE_SAMPLES as u64 + 5) {
            r.absorb_failure(i, DeviceDisposition::Failed, format!("e{i}"));
        }
        assert_eq!(r.failed, MAX_FAILURE_SAMPLES as u64 + 5);
        assert_eq!(r.failures.len(), MAX_FAILURE_SAMPLES);
    }

    #[test]
    fn digest_ignores_failure_samples_but_not_counts() {
        let mut a = ShardRollup::new(0);
        a.absorb_failure(1, DeviceDisposition::Failed, "message one".into());
        let mut b = ShardRollup::new(0);
        b.absorb_failure(1, DeviceDisposition::Failed, "entirely different".into());
        assert_eq!(a.digest(), b.digest());
        let mut c = ShardRollup::new(0);
        c.absorb_failure(1, DeviceDisposition::Panicked, "message one".into());
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn fleet_report_and_json_render() {
        let mut t = ShardRollup::new(0);
        t.absorb_ok(FaultClass::Clean, &fake_result(40.0, 12));
        let fleet = FleetRollup {
            seed: 7,
            totals: t,
            shards: vec![ShardSummary {
                shard: 0,
                devices: 1,
                failed: 0,
                frames_lost: 0,
                hub_resets: 0,
                digest: 1,
            }],
        };
        let report = fleet.report();
        assert!(report.contains("1 devices in 1 shards"));
        assert!(report.contains("digest 0x"));
        let json = fleet.to_json();
        assert!(json.contains("\"devices\": 1"));
        assert!(json.contains("\"digest\": \"0x"));
        assert!(fleet.wake_rate_per_device_hour() > 0.0);
        assert!((fleet.mean_power_mw() - 40.0).abs() < 1e-9);
    }
}
