//! `fleetd` — drive the fleet simulation service from the command line.
//!
//! Every request goes through the wire layer ([`sidewinder_fleet::wire`])
//! exactly as a remote client's would: conditions are framed, submitted,
//! and acknowledged; the rollup is fetched with a framed query and
//! decoded from the reply. CI's `fleet-smoke` job runs this binary and
//! asserts the digest against `results/fleet_digest.json`.
//!
//! ```text
//! fleetd run [--devices N] [--seed N] [--workers N] [--shard-size N]
//!            [--duration-secs N] [--submit FILE]... [--report FILE]
//!            [--json FILE] [--check FILE] [--write-digest FILE]
//! ```
//!
//! With no `--submit`, the three accelerometer evaluation applications'
//! wake conditions are submitted (the audio conditions would make every
//! default device incompatible — the fleet is accelerometer-borne).

use std::process::ExitCode;

use sidewinder_apps::{HeadbuttsApp, StepsApp, TransitionsApp};
use sidewinder_fleet::wire::{
    decode_message, decode_submit_ack, encode_message, encode_query_rollup, MessageType,
};
use sidewinder_fleet::{FleetConfig, FleetService};
use sidewinder_sensors::Micros;
use sidewinder_sim::Application;

struct Options {
    devices: u64,
    seed: u64,
    workers: usize,
    shard_size: u64,
    duration_secs: u64,
    submissions: Vec<String>,
    report: Option<String>,
    json: Option<String>,
    check: Option<String>,
    write_digest: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            devices: 10_000,
            seed: 0x51DE_F1EE,
            workers: 2,
            shard_size: 1024,
            duration_secs: 60,
            submissions: Vec::new(),
            report: None,
            json: None,
            check: None,
            write_digest: None,
        }
    }
}

const USAGE: &str = "usage: fleetd run [--devices N] [--seed N] [--workers N] \
[--shard-size N] [--duration-secs N] [--submit FILE]... [--report FILE] \
[--json FILE] [--check FILE] [--write-digest FILE]";

fn parse_u64(flag: &str, value: Option<String>) -> Result<u64, String> {
    let value = value.ok_or_else(|| format!("{flag} needs a value"))?;
    let parsed = if let Some(hex) = value.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        value.parse()
    };
    parsed.map_err(|_| format!("{flag}: not a number: {value}"))
}

fn parse_args(args: Vec<String>) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.into_iter();
    match it.next().as_deref() {
        Some("run") => {}
        Some(other) => return Err(format!("unknown command {other:?}\n{USAGE}")),
        None => return Err(USAGE.to_string()),
    }
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--devices" => opts.devices = parse_u64(&arg, it.next())?,
            "--seed" => opts.seed = parse_u64(&arg, it.next())?,
            "--workers" => opts.workers = parse_u64(&arg, it.next())?.max(1) as usize,
            "--shard-size" => opts.shard_size = parse_u64(&arg, it.next())?.max(1),
            "--duration-secs" => opts.duration_secs = parse_u64(&arg, it.next())?.max(1),
            "--submit" => opts
                .submissions
                .push(it.next().ok_or("--submit needs a file")?),
            "--report" => opts.report = Some(it.next().ok_or("--report needs a file")?),
            "--json" => opts.json = Some(it.next().ok_or("--json needs a file")?),
            "--check" => opts.check = Some(it.next().ok_or("--check needs a file")?),
            "--write-digest" => {
                opts.write_digest = Some(it.next().ok_or("--write-digest needs a file")?)
            }
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    Ok(opts)
}

/// Extracts the `"digest": "0x..."` value from rollup/digest JSON.
fn digest_in(json: &str) -> Option<String> {
    let key = "\"digest\": \"";
    let start = json.find(key)? + key.len();
    let rest = &json[start..];
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

fn run(opts: Options) -> Result<(), String> {
    let config = FleetConfig {
        shard_size: opts.shard_size,
        device_duration: Micros::from_secs(opts.duration_secs),
        ..FleetConfig::new(opts.seed, opts.devices)
    };
    let mut service = FleetService::new(config).with_workers(opts.workers);

    // Gather the conditions to submit: files, or the default suite.
    let mut conditions: Vec<(String, String)> = Vec::new();
    if opts.submissions.is_empty() {
        for app in [
            Box::new(StepsApp::new()) as Box<dyn Application>,
            Box::new(TransitionsApp::new()),
            Box::new(HeadbuttsApp::new()),
        ] {
            conditions.push((app.name().to_string(), app.wake_condition().to_string()));
        }
    } else {
        for path in &opts.submissions {
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            conditions.push((path.clone(), text));
        }
    }

    // Submit each through the wire path, like a remote client.
    for (name, text) in &conditions {
        let request = encode_message(MessageType::SubmitProgram, text.as_bytes());
        let reply = service.handle(&request);
        let (kind, payload) =
            decode_message(&reply).map_err(|e| format!("undecodable reply: {e}"))?;
        match kind {
            MessageType::SubmitAck => {
                let ack = decode_submit_ack(&payload).map_err(|e| e.to_string())?;
                println!(
                    "submitted {name}: condition {} -> unique {}{} ({} active, digest {:#018x}, cert {:#018x})",
                    ack.condition_id,
                    ack.unique_index,
                    if ack.deduplicated {
                        " (deduplicated)"
                    } else {
                        ""
                    },
                    ack.active_unique,
                    ack.program_digest,
                    ack.cert_digest,
                );
            }
            MessageType::ErrorReply => {
                return Err(format!(
                    "submission {name} rejected: {}",
                    String::from_utf8_lossy(&payload)
                ));
            }
            other => return Err(format!("unexpected reply {other:?} to submission")),
        }
    }

    // Query the rollup (this runs the fleet), again over the wire.
    let reply = service.handle(&encode_query_rollup());
    let (kind, payload) = decode_message(&reply).map_err(|e| format!("undecodable reply: {e}"))?;
    let json = match kind {
        MessageType::RollupReply => String::from_utf8_lossy(&payload).into_owned(),
        MessageType::ErrorReply => {
            return Err(format!(
                "rollup query failed: {}",
                String::from_utf8_lossy(&payload)
            ))
        }
        other => return Err(format!("unexpected reply {other:?} to rollup query")),
    };
    let rollup = service.run().map_err(|e| e.to_string())?.clone();

    print!("{}", rollup.report());
    if let Some(path) = &opts.report {
        std::fs::write(path, rollup.report()).map_err(|e| format!("writing {path}: {e}"))?;
    }
    if let Some(path) = &opts.json {
        std::fs::write(path, &json).map_err(|e| format!("writing {path}: {e}"))?;
    }

    let digest = format!("{:#018x}", rollup.digest());
    if let Some(path) = &opts.write_digest {
        let pinned = format!(
            "{{\n  \"devices\": {},\n  \"seed\": \"{:#x}\",\n  \"shard_size\": {},\n  \"duration_secs\": {},\n  \"digest\": \"{digest}\"\n}}\n",
            opts.devices, opts.seed, opts.shard_size, opts.duration_secs,
        );
        std::fs::write(path, pinned).map_err(|e| format!("writing {path}: {e}"))?;
        println!("pinned digest {digest} to {path}");
    }
    if let Some(path) = &opts.check {
        let pinned = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let expected = digest_in(&pinned)
            .ok_or_else(|| format!("{path}: no \"digest\": \"0x...\" entry found"))?;
        if expected == digest {
            println!("digest check OK: {digest} matches {path}");
        } else {
            return Err(format!(
                "digest mismatch: fleet produced {digest}, {path} pins {expected}"
            ));
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(args).and_then(run) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fleetd: {e}");
            ExitCode::FAILURE
        }
    }
}
