//! Fleet-scale simulation service for the Sidewinder reproduction.
//!
//! The paper evaluates one phone at a time; a platform operator cares
//! about the *population*: what happens to wake rates, energy, and
//! degraded-mode prevalence when a wake condition ships to a million
//! heterogeneous, partly-faulty devices? This crate answers that by
//! scaling the existing single-device machinery out, without loading
//! more than a shard of it into memory at once:
//!
//! * [`device`] — per-device identity as a pure function of the fleet
//!   seed: carrier archetype (trace statistics + classifier app),
//!   private RNG seed, and reliability class realized as a
//!   [`sidewinder_hub::fault::FaultSchedule`];
//! * [`shard`] — the execution core: [`shard::FleetConfig`],
//!   [`shard::run_shard`] (streaming one generated trace at a time
//!   through [`sidewinder_sim::engine::simulate_with_faults`], panics
//!   caught per device), and [`shard::run_fleet`] (shards fanned out
//!   over [`sidewinder_sim::try_par_map`], merged in shard order — the
//!   rollup digest is bit-identical at any worker count or shard size);
//! * [`rollup`] — integer-only observability aggregates built on
//!   [`sidewinder_obs::Histogram`]: wake-rate and power-percentile
//!   rollups, fault totals, degraded-population fractions, and the
//!   FNV-1a fleet digest the conformance suite pins;
//! * [`wire`] — the service's client protocol, carried over the hub's
//!   CRC-framed link encoding; total (typed-error) decoding;
//! * [`service`] — [`service::FleetService`]: submissions are
//!   optimized and structurally deduplicated on ingest
//!   ([`sidewinder_opt::optimize_suite`]), the fleet serves the fused
//!   join of the unique survivors, rollups are computed lazily and
//!   cached until the served set changes.
//!
//! The `fleetd` binary wraps [`service::FleetService`] in a CLI that
//! drives every request through the wire layer, so CI exercises the
//! same byte path a remote client would.

pub mod device;
pub mod rollup;
pub mod service;
pub mod shard;
pub mod wire;

pub use device::{DeviceArchetype, DeviceMix, DeviceSpec, FaultClass, FleetFaultModel};
pub use rollup::{DeviceDisposition, DeviceFailure, FleetRollup, ShardRollup, ShardSummary};
pub use service::{FleetService, ServiceError};
pub use shard::{run_fleet, run_shard, run_shard_with_apps, FleetConfig};
pub use wire::{MessageType, SubmitAck, WireError};
