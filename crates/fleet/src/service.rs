//! The long-running fleet service.
//!
//! [`FleetService`] is the stateful core `fleetd` wraps: clients submit
//! wake-condition programs over the wire API, the service runs every
//! submission through the optimizing compiler's suite pass
//! ([`sidewinder_opt::optimize_suite`]) on ingest — optimizing each
//! program and deduplicating structural twins — and serves the fleet
//! with the fused join of the surviving unique conditions. Rollup
//! queries run the fleet (lazily, cached until the served program set
//! changes) and return the deterministic [`FleetRollup`] as JSON.

use sidewinder_cert::{certify_program, diagnostics, CertTarget, Precision};
use sidewinder_hub::runtime::ChannelRates;
use sidewinder_ir::Program;
use sidewinder_opt::{optimize_suite, OptOptions, SuiteResult};

use crate::rollup::FleetRollup;
use crate::shard::{run_fleet, FleetConfig};
use crate::wire::{
    decode_message, decode_submit, encode_message, encode_submit_ack, MessageType, SubmitAck,
    WireError,
};

/// A service-level failure (wire fault or empty service).
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The request could not be decoded or admitted.
    Wire(WireError),
    /// A rollup was requested before any condition was submitted.
    NothingSubmitted,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Wire(e) => write!(f, "{e}"),
            ServiceError::NothingSubmitted => {
                write!(f, "no wake condition submitted yet; nothing to run")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<WireError> for ServiceError {
    fn from(e: WireError) -> Self {
        ServiceError::Wire(e)
    }
}

/// The fleet simulation service: ingest, optimize, dedup, run, report.
#[derive(Debug)]
pub struct FleetService {
    config: FleetConfig,
    workers: usize,
    cert_target: CertTarget,
    submissions: Vec<Program>,
    suite: Option<SuiteResult>,
    rollup: Option<FleetRollup>,
}

/// Arena capacity the fleet certifies against by default: the
/// 16k-element core class the audio fixtures (music/phrase) require,
/// matching the big core the conformance suites run fused suites on.
pub const FLEET_CERT_ARENA: usize = 16 * 1024;

impl FleetService {
    /// A service over `config`, initially serving nothing.
    pub fn new(config: FleetConfig) -> FleetService {
        FleetService {
            config,
            workers: 1,
            cert_target: CertTarget {
                mcu: None,
                cap: FLEET_CERT_ARENA,
            },
            submissions: Vec::new(),
            suite: None,
            rollup: None,
        }
    }

    /// Sets the worker-thread count used for fleet runs.
    pub fn with_workers(mut self, workers: usize) -> FleetService {
        self.workers = workers.max(1);
        self
    }

    /// Sets the core the ingest gate certifies fused suites against.
    pub fn with_cert_target(mut self, target: CertTarget) -> FleetService {
        self.cert_target = target;
        self
    }

    /// The core the ingest gate certifies fused suites against.
    pub fn cert_target(&self) -> &CertTarget {
        &self.cert_target
    }

    /// The fleet configuration being served.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Conditions submitted so far, in arrival order.
    pub fn submissions(&self) -> &[Program] {
        &self.submissions
    }

    /// The fused program the fleet executes, if any conditions are in.
    pub fn served_program(&self) -> Option<Program> {
        self.suite.as_ref().and_then(|s| s.fused())
    }

    /// Ingests one already-decoded program: validate, re-optimize the
    /// whole suite, dedup, certify the fused suite against the
    /// configured core, and describe where the submission landed.
    ///
    /// The certificate gate is transactional: a submission whose fused
    /// suite certifiably overflows the configured arena capacity — or
    /// misses its deadline on a pinned MCU — is rolled back, and the
    /// previously served set keeps running untouched. A fused suite too
    /// large to compile to an MCU image at all is served by the host
    /// runtime uncertified (`cert_digest` 0 in the ack).
    ///
    /// # Errors
    ///
    /// [`WireError::Invalid`] when the program fails validation or the
    /// certificate gate rejects the fused suite; the service's served
    /// set is unchanged.
    pub fn submit_program(&mut self, program: Program) -> Result<SubmitAck, WireError> {
        program
            .validate_located()
            .map_err(|e| WireError::Invalid(format!("{e}")))?;
        let unique_before = self.suite.as_ref().map_or(0, |s| s.unique.len());
        self.submissions.push(program);
        let suite = optimize_suite(
            &self.submissions,
            &ChannelRates::default(),
            &OptOptions::default(),
        );
        let cert_digest = match self.certify_fused(&suite) {
            Ok(digest) => digest,
            Err(reason) => {
                // Roll back: the rejected condition never joins the set.
                self.submissions.pop();
                return Err(WireError::Invalid(reason));
            }
        };
        let condition_id = self.submissions.len() - 1;
        let unique_index = suite.assignment[condition_id];
        let ack = SubmitAck {
            condition_id: condition_id as u32,
            unique_index: unique_index as u32,
            deduplicated: suite.unique.len() == unique_before,
            active_unique: suite.unique.len() as u32,
            program_digest: suite.unique[unique_index].stable_digest(),
            cert_digest,
        };
        self.suite = Some(suite);
        self.rollup = None; // the served program changed
        Ok(ack)
    }

    /// Certifies the suite's fused program against the configured core.
    ///
    /// Returns the certificate digest, or 0 when the fused suite does
    /// not compile to an MCU image (it then runs on the host runtime
    /// and no static bound applies). Rejections carry the certifier's
    /// SW008/SW009 diagnostics as the error text.
    fn certify_fused(&self, suite: &SuiteResult) -> Result<u64, String> {
        let Some(fused) = suite.fused() else {
            return Ok(0);
        };
        let rates = ChannelRates::default();
        let Ok(cert) = certify_program(&fused, &rates, Precision::F64, &self.cert_target) else {
            return Ok(0);
        };
        let overflows = !cert.fits_cap;
        let misses_deadline = self.cert_target.mcu.is_some() && cert.mcu.error.is_some();
        if overflows || misses_deadline {
            let details = diagnostics(&cert)
                .iter()
                .map(|d| format!("{}: {}", d.code.code(), d.message))
                .collect::<Vec<_>>()
                .join("; ");
            return Err(format!(
                "fused suite fails certification against {} (cap {}): {details}",
                cert.mcu.mcu, cert.cap
            ));
        }
        Ok(cert.digest())
    }

    /// Runs the fleet under the currently served program, or returns
    /// the cached rollup when the served set has not changed.
    ///
    /// # Errors
    ///
    /// [`ServiceError::NothingSubmitted`] when no condition is in.
    pub fn run(&mut self) -> Result<&FleetRollup, ServiceError> {
        if self.rollup.is_none() {
            let program = self
                .served_program()
                .ok_or(ServiceError::NothingSubmitted)?;
            self.rollup = Some(run_fleet(&self.config, &program, self.workers));
        }
        Ok(self.rollup.as_ref().expect("rollup just ensured"))
    }

    /// Handles one framed request and produces one framed reply:
    /// submissions get a [`MessageType::SubmitAck`], rollup queries a
    /// [`MessageType::RollupReply`] carrying the rollup JSON, and every
    /// failure a [`MessageType::ErrorReply`] with the error text — the
    /// service never panics on hostile input.
    pub fn handle(&mut self, request: &[u8]) -> Vec<u8> {
        match self.handle_inner(request) {
            Ok(reply) => reply,
            Err(e) => encode_message(MessageType::ErrorReply, e.to_string().as_bytes()),
        }
    }

    fn handle_inner(&mut self, request: &[u8]) -> Result<Vec<u8>, ServiceError> {
        let (kind, payload) = decode_message(request)?;
        match kind {
            MessageType::SubmitProgram => {
                let program = decode_submit(&payload)?;
                let ack = self.submit_program(program)?;
                Ok(encode_submit_ack(&ack))
            }
            MessageType::QueryRollup => {
                let json = self.run()?.to_json();
                Ok(encode_message(MessageType::RollupReply, json.as_bytes()))
            }
            other => Err(ServiceError::Wire(WireError::UnexpectedType {
                expected: MessageType::SubmitProgram,
                got: other,
            })),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{encode_query_rollup, encode_submit};
    use sidewinder_sensors::Micros;

    fn tiny_service() -> FleetService {
        let config = FleetConfig {
            shard_size: 8,
            device_duration: Micros::from_secs(10),
            ..FleetConfig::new(0xBEE, 16)
        };
        FleetService::new(config).with_workers(2)
    }

    fn steps() -> Program {
        "ACC_X -> movingAvg(id=1, params={10});
         1 -> minThreshold(id=2, params={15});
         2 -> OUT;"
            .parse()
            .unwrap()
    }

    #[test]
    fn duplicate_submissions_share_an_instance() {
        let mut svc = tiny_service();
        let first = svc.submit_program(steps()).unwrap();
        assert_eq!(first.condition_id, 0);
        assert!(!first.deduplicated);
        assert_eq!(first.active_unique, 1);
        // The same condition with different node ids: deduplicated.
        let twin: Program = "ACC_X -> movingAvg(id=9, params={10});
                             9 -> minThreshold(id=4, params={15});
                             4 -> OUT;"
            .parse()
            .unwrap();
        let second = svc.submit_program(twin).unwrap();
        assert!(second.deduplicated);
        assert_eq!(second.active_unique, 1);
        assert_eq!(second.unique_index, first.unique_index);
        assert_eq!(second.program_digest, first.program_digest);
    }

    #[test]
    fn full_wire_round_trip_submit_then_query() {
        let mut svc = tiny_service();
        let reply = svc.handle(&encode_submit(&steps()));
        let (kind, payload) = decode_message(&reply).unwrap();
        assert_eq!(kind, MessageType::SubmitAck);
        let ack = crate::wire::decode_submit_ack(&payload).unwrap();
        assert_eq!(ack.active_unique, 1);

        let reply = svc.handle(&encode_query_rollup());
        let (kind, payload) = decode_message(&reply).unwrap();
        assert_eq!(kind, MessageType::RollupReply);
        let json = String::from_utf8(payload).unwrap();
        assert!(json.contains("\"devices\": 16"));
        assert!(json.contains("\"digest\": \"0x"));
    }

    #[test]
    fn hostile_requests_get_error_replies_not_panics() {
        let mut svc = tiny_service();
        for request in [
            &b""[..],
            &[0u8; 3][..],
            &[0xFFu8; 300][..],
            &encode_submit(&steps())[..10],
            &encode_message(MessageType::SubmitProgram, b"not a program")[..],
        ] {
            let reply = svc.handle(request);
            let (kind, payload) = decode_message(&reply).unwrap();
            assert_eq!(kind, MessageType::ErrorReply);
            assert!(!payload.is_empty());
        }
        // A rollup query with nothing submitted is an error, not a run.
        let reply = svc.handle(&encode_query_rollup());
        let (kind, _) = decode_message(&reply).unwrap();
        assert_eq!(kind, MessageType::ErrorReply);
    }

    #[test]
    fn accepted_submissions_carry_the_fused_certificate_digest() {
        let mut svc = tiny_service();
        let ack = svc.submit_program(steps()).unwrap();
        assert_ne!(ack.cert_digest, 0);
        // The digest is the certificate of the fused served program.
        let fused = svc.served_program().unwrap();
        let cert = certify_program(
            &fused,
            &ChannelRates::default(),
            Precision::F64,
            svc.cert_target(),
        )
        .unwrap();
        assert_eq!(ack.cert_digest, cert.digest());
    }

    #[test]
    fn ingest_rejects_suites_that_certifiably_overflow_the_core() {
        // A fleet pinned to a toy 64-element core: the windowed audio
        // condition certifiably needs ~1.5k sample-arena elements.
        let mut svc = tiny_service().with_cert_target(CertTarget { mcu: None, cap: 64 });
        let ok = svc.submit_program(steps()).unwrap();
        assert_ne!(ok.cert_digest, 0);
        let served_before = svc.served_program().unwrap();
        let rollup_before = svc.run().unwrap().digest();

        let audio: Program = "MIC -> window(id=1, params={512, 512, 0});
                              1 -> zcrVariance(id=2, params={2});
                              2 -> minThreshold(id=3, params={0});
                              3 -> OUT;"
            .parse()
            .unwrap();
        let err = svc.submit_program(audio).unwrap_err();
        let WireError::Invalid(msg) = err else {
            panic!("expected a certification rejection, got {err:?}");
        };
        assert!(msg.contains("SW008"), "diagnostics missing from: {msg}");
        assert!(msg.contains("sample arena"), "arena name missing: {msg}");

        // Transactional: the served set and rollup are untouched.
        assert_eq!(svc.submissions().len(), 1);
        assert_eq!(svc.served_program().unwrap(), served_before);
        assert_eq!(svc.run().unwrap().digest(), rollup_before);
    }

    #[test]
    fn rollups_are_cached_until_the_served_set_changes() {
        let mut svc = tiny_service();
        svc.submit_program(steps()).unwrap();
        let d1 = svc.run().unwrap().digest();
        let d2 = svc.run().unwrap().digest();
        assert_eq!(d1, d2);
        // A genuinely new condition invalidates the cache and changes
        // the served program.
        let other: Program = "ACC_Y -> movingAvg(id=1, params={4});
                              1 -> maxThreshold(id=2, params={-2});
                              2 -> OUT;"
            .parse()
            .unwrap();
        let ack = svc.submit_program(other).unwrap();
        assert!(!ack.deduplicated);
        assert_eq!(ack.active_unique, 2);
        let d3 = svc.run().unwrap().digest();
        assert_ne!(d1, d3);
    }
}
