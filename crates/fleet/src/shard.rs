//! The fleet's execution core: configuration, the per-shard device
//! loop, and the parallel fleet runner.
//!
//! A fleet of `N` devices is split into `ceil(N / shard_size)` shards.
//! Shards are the parallel unit: they fan out over
//! [`sidewinder_sim::try_par_map`], so a panicking device *or* shard is
//! caught and reported rather than killing the run. Within a shard,
//! devices stream one at a time — derive the spec, generate the trace,
//! simulate, fold into the rollup, drop the trace — so peak memory is
//! one trace per worker regardless of fleet size.

use std::panic::{catch_unwind, AssertUnwindSafe};

use sidewinder_hub::runtime::ChannelRates;
use sidewinder_hub::Mcu;
use sidewinder_ir::Program;
use sidewinder_sensors::Micros;
use sidewinder_sim::engine::{simulate_with_faults, SimConfig};
use sidewinder_sim::power::PhonePowerProfile;
use sidewinder_sim::{try_par_map, Application, SimResult, Strategy};

use crate::device::{DeviceArchetype, DeviceMix, DeviceSpec, FleetFaultModel};
use crate::rollup::{DeviceDisposition, FleetRollup, ShardRollup, ShardSummary};

/// Everything that defines a fleet run. Two equal configs produce
/// bit-identical rollups at any worker count.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Root seed every per-device derivation flows from.
    pub seed: u64,
    /// Number of simulated devices.
    pub devices: u64,
    /// Devices per shard (the parallel work unit).
    pub shard_size: u64,
    /// Length of each device's trace.
    pub device_duration: Micros,
    /// Archetype population weights.
    pub mix: DeviceMix,
    /// Fault-class population fractions.
    pub faults: FleetFaultModel,
    /// Sleep interval of the degraded duty-cycle fallback.
    pub fallback_sleep: Micros,
}

impl FleetConfig {
    /// A fleet of `devices` devices derived from `seed`, with default
    /// mix, fault model, 60 s traces, and 1024-device shards.
    pub fn new(seed: u64, devices: u64) -> FleetConfig {
        FleetConfig {
            seed,
            devices,
            shard_size: 1024,
            device_duration: Micros::from_secs(60),
            mix: DeviceMix::default(),
            faults: FleetFaultModel::default(),
            fallback_sleep: Micros::from_secs(10),
        }
    }

    /// Number of shards the fleet splits into.
    pub fn shards(&self) -> u64 {
        if self.devices == 0 {
            0
        } else {
            self.devices.div_ceil(self.shard_size.max(1))
        }
    }

    /// The device-id range shard `shard` owns.
    pub fn shard_range(&self, shard: u64) -> std::ops::Range<u64> {
        let size = self.shard_size.max(1);
        let start = shard * size;
        start.min(self.devices)..((shard + 1) * size).min(self.devices)
    }

    /// Derives device `device_id`'s spec.
    pub fn device_spec(&self, device_id: u64) -> DeviceSpec {
        DeviceSpec::derive(
            self.seed,
            device_id,
            &self.mix,
            &self.faults,
            self.device_duration,
        )
    }

    /// The hub draw for serving `program`: the cheapest capable MCU, or
    /// the big LM4F120 when even it cannot fit the program (the run
    /// still proceeds; the cost model just charges the ceiling).
    pub fn hub_mw_for(&self, program: &Program) -> f64 {
        Mcu::cheapest_for(program, &ChannelRates::default())
            .map(|m| m.awake_power_mw)
            .unwrap_or(Mcu::LM4F120.awake_power_mw)
    }

    /// The strategy every device of the fleet runs: the submitted
    /// condition on the hub, hardened with the degraded duty-cycle
    /// fallback so full-outage devices keep detecting.
    pub fn strategy_for(&self, program: &Program) -> Strategy {
        Strategy::HubWakeDegraded {
            program: program.clone(),
            hub_mw: self.hub_mw_for(program),
            label: "Sw+",
            fallback_sleep: self.fallback_sleep,
        }
    }
}

/// Renders a caught panic payload.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// One device's journey through the shard loop, before rollup folding.
enum DeviceRun {
    Sim(Box<Result<SimResult, sidewinder_sim::SimError>>),
    Incompatible(String),
}

fn archetype_slot(a: DeviceArchetype) -> usize {
    match a {
        DeviceArchetype::CommuterPhone => 0,
        DeviceArchetype::RetailPhone => 1,
        DeviceArchetype::OfficePhone => 2,
        DeviceArchetype::RobotMount => 3,
    }
}

/// Simulates every device of shard `shard`, streaming traces one at a
/// time, and returns the shard's rollup.
///
/// Panic isolation is per *device*: a device whose trace generator,
/// classifier, or simulation panics is recorded as a
/// [`DeviceDisposition::Panicked`] failure and the loop moves on —
/// the UnwindSafe audit mirrors the batch runner's: the closure only
/// touches the per-device trace and spec (dropped on unwind) and shared
/// read-only state (`program`, apps, config), so no observable broken
/// invariant survives the catch.
pub fn run_shard(config: &FleetConfig, program: &Program, shard: u64) -> ShardRollup {
    let apps: [Box<dyn Application + Send + Sync>; 4] = [
        DeviceArchetype::CommuterPhone.app(),
        DeviceArchetype::RetailPhone.app(),
        DeviceArchetype::OfficePhone.app(),
        DeviceArchetype::RobotMount.app(),
    ];
    run_shard_with_apps(config, program, shard, &apps)
}

/// [`run_shard`] with the archetype→application table supplied by the
/// caller (indexed per [`DeviceArchetype::ALL`]) — the seam the
/// conformance suite uses to plant a deliberately panicking classifier
/// and watch it degrade to a per-device failure.
pub fn run_shard_with_apps(
    config: &FleetConfig,
    program: &Program,
    shard: u64,
    apps: &[Box<dyn Application + Send + Sync>; 4],
) -> ShardRollup {
    let mut rollup = ShardRollup::new(shard);
    let strategy = config.strategy_for(program);
    let profile = PhonePowerProfile::default();
    let sim_config = SimConfig::default();
    let channels = program.channels();
    for device_id in config.shard_range(shard) {
        let spec = config.device_spec(device_id);
        let run = catch_unwind(AssertUnwindSafe(|| {
            let trace = spec.trace();
            for &ch in &channels {
                if !trace.has_channel(ch) {
                    return DeviceRun::Incompatible(format!(
                        "condition reads {ch} which the {} trace does not record",
                        spec.archetype.label()
                    ));
                }
            }
            let app = &apps[archetype_slot(spec.archetype)];
            DeviceRun::Sim(Box::new(simulate_with_faults(
                &trace,
                app.as_ref(),
                &strategy,
                &profile,
                &sim_config,
                &spec.faults,
            )))
        }));
        match run {
            Ok(DeviceRun::Sim(result)) => match *result {
                Ok(result) => rollup.absorb_ok(spec.fault_class, &result),
                Err(e) => {
                    rollup.absorb_failure(device_id, DeviceDisposition::Failed, e.to_string())
                }
            },
            Ok(DeviceRun::Incompatible(why)) => {
                rollup.absorb_failure(device_id, DeviceDisposition::Incompatible, why)
            }
            Err(panic) => rollup.absorb_failure(
                device_id,
                DeviceDisposition::Panicked,
                panic_message(&*panic),
            ),
        }
    }
    rollup
}

/// Runs the whole fleet over `workers` threads and merges the shard
/// rollups in shard-index order.
///
/// Determinism: each shard's rollup is a pure function of
/// `(config, program, shard)`, shards never share mutable state, and
/// the merge order is the shard index — so the returned rollup (and its
/// digest) is bit-identical at any worker count. A shard whose runner
/// itself panics (outside any device's catch) is folded in as a shard
/// of panicked devices rather than aborting the fleet.
pub fn run_fleet(config: &FleetConfig, program: &Program, workers: usize) -> FleetRollup {
    let shard_ids: Vec<u64> = (0..config.shards()).collect();
    let results = try_par_map(workers, &shard_ids, |&shard| {
        run_shard(config, program, shard)
    });
    let mut totals = ShardRollup::new(0);
    let mut shards = Vec::with_capacity(results.len());
    for (shard, outcome) in shard_ids.iter().zip(results) {
        let rollup = match outcome {
            Ok(rollup) => rollup,
            Err(panic) => {
                let mut lost = ShardRollup::new(*shard);
                for device_id in config.shard_range(*shard) {
                    lost.absorb_failure(
                        device_id,
                        DeviceDisposition::Panicked,
                        format!("shard {shard} worker panicked: {}", panic.message),
                    );
                }
                lost
            }
        };
        shards.push(ShardSummary {
            shard: *shard,
            devices: rollup.devices,
            failed: rollup.failed + rollup.panicked,
            frames_lost: rollup.fault.frames_lost,
            hub_resets: rollup.fault.hub_resets,
            digest: rollup.digest(),
        });
        totals.merge(&rollup);
    }
    FleetRollup {
        seed: config.seed,
        totals,
        shards,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn steps_condition() -> Program {
        sidewinder_apps::StepsApp::new().wake_condition()
    }

    fn tiny_config() -> FleetConfig {
        FleetConfig {
            shard_size: 8,
            device_duration: Micros::from_secs(10),
            ..FleetConfig::new(0xF1EE7, 24)
        }
    }

    #[test]
    fn shard_ranges_tile_the_fleet() {
        let c = tiny_config();
        assert_eq!(c.shards(), 3);
        assert_eq!(c.shard_range(0), 0..8);
        assert_eq!(c.shard_range(2), 16..24);
        let uneven = FleetConfig {
            shard_size: 10,
            ..c.clone()
        };
        assert_eq!(uneven.shards(), 3);
        assert_eq!(uneven.shard_range(2), 20..24);
        assert_eq!(FleetConfig::new(1, 0).shards(), 0);
    }

    #[test]
    fn shard_rollups_are_reproducible() {
        let c = tiny_config();
        let p = steps_condition();
        let a = run_shard(&c, &p, 1);
        let b = run_shard(&c, &p, 1);
        assert_eq!(a, b);
        assert_eq!(a.devices, 8);
        assert_eq!(a.devices, a.ok + a.incompatible + a.failed + a.panicked);
    }

    #[test]
    fn fleet_digest_is_worker_count_invariant() {
        let c = tiny_config();
        let p = steps_condition();
        let serial = run_fleet(&c, &p, 1);
        let parallel = run_fleet(&c, &p, 4);
        assert_eq!(serial.digest(), parallel.digest());
        assert_eq!(serial.shards, parallel.shards);
        assert_eq!(serial.totals, parallel.totals);
    }

    #[test]
    fn fleet_digest_is_shard_size_invariant() {
        let p = steps_condition();
        let small = FleetConfig {
            shard_size: 5,
            ..tiny_config()
        };
        let large = FleetConfig {
            shard_size: 24,
            ..tiny_config()
        };
        let a = run_fleet(&small, &p, 2);
        let b = run_fleet(&large, &p, 2);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.totals, b.totals);
        assert_ne!(a.shards.len(), b.shards.len());
    }

    #[test]
    fn incompatible_conditions_are_population_level_not_failures() {
        // A microphone condition meets an all-accelerometer fleet.
        let p: Program = "MIC -> movingAvg(id=1, params={8});
                          1 -> minThreshold(id=2, params={100});
                          2 -> OUT;"
            .parse()
            .unwrap();
        let c = tiny_config();
        let rollup = run_fleet(&c, &p, 2);
        assert_eq!(rollup.totals.incompatible, 24);
        assert_eq!(rollup.totals.failed, 0);
        assert_eq!(rollup.totals.ok, 0);
    }
}
