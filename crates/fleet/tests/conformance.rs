//! Fleet conformance suite: the guarantees the service advertises,
//! checked end to end.
//!
//! 1. Determinism — one fixed seed, workers 1/2/8: bit-identical fleet
//!    digest *and* per-shard fault totals.
//! 2. Degraded-mode semantics — an all-outage fleet detects exactly
//!    what per-device duty cycling at the fallback interval detects.
//! 3. Wire robustness — truncated and garbage submissions are typed
//!    error replies, never panics.
//! 4. Panic isolation — a device cell whose classifier panics degrades
//!    to a reported per-device failure; the shard completes.

use sidewinder_fleet::device::DeviceArchetype;
use sidewinder_fleet::wire::{decode_message, encode_message, MessageType};
use sidewinder_fleet::{
    run_fleet, run_shard_with_apps, DeviceDisposition, FleetConfig, FleetFaultModel, FleetService,
};
use sidewinder_ir::Program;
use sidewinder_sensors::Micros;
use sidewinder_sim::engine::{simulate, SimConfig};
use sidewinder_sim::power::PhonePowerProfile;
use sidewinder_sim::{Application, Strategy};

fn steps_condition() -> Program {
    sidewinder_apps::StepsApp::new().wake_condition()
}

fn conformance_config() -> FleetConfig {
    FleetConfig {
        shard_size: 64,
        device_duration: Micros::from_secs(20),
        ..FleetConfig::new(0xC0FF_EE00_5EED, 512)
    }
}

#[test]
fn one_seed_is_bit_identical_at_1_2_and_8_workers() {
    let config = conformance_config();
    let program = steps_condition();
    let baseline = run_fleet(&config, &program, 1);
    for workers in [2, 8] {
        let run = run_fleet(&config, &program, workers);
        assert_eq!(
            baseline.digest(),
            run.digest(),
            "fleet digest diverged at {workers} workers"
        );
        assert_eq!(
            baseline.totals, run.totals,
            "merged totals diverged at {workers} workers"
        );
        // Per-shard fault totals, not just the merged fleet view.
        assert_eq!(baseline.shards.len(), run.shards.len());
        for (a, b) in baseline.shards.iter().zip(&run.shards) {
            assert_eq!(a.shard, b.shard);
            assert_eq!(
                (a.frames_lost, a.hub_resets, a.digest),
                (b.frames_lost, b.hub_resets, b.digest),
                "shard {} fault totals diverged at {workers} workers",
                a.shard
            );
        }
    }
    // The fleet actually exercised the fault machinery: with the
    // default model ~20% of 512 devices are faulty.
    assert!(baseline.totals.fault.frames_sent > 0);
    assert!(baseline.totals.fault.hub_resets > 0);
    assert!(baseline.totals.degraded_devices > 0);
    assert_eq!(baseline.totals.devices, 512);
    assert_eq!(baseline.totals.failed + baseline.totals.panicked, 0);
}

#[test]
fn all_outage_fleet_detects_exactly_like_duty_cycling() {
    // Every hub down for the whole run: each device rides the degraded
    // duty-cycle fallback end to end, so the fleet's detections must
    // equal per-device DutyCycle at the fallback interval.
    let config = FleetConfig {
        faults: FleetFaultModel {
            noisy_link: 0.0,
            flaky_hub: 0.0,
            outage: 1.0,
            ..FleetFaultModel::default()
        },
        shard_size: 8,
        device_duration: Micros::from_secs(20),
        ..FleetConfig::new(0xD0_D0, 24)
    };
    let program = steps_condition();
    let rollup = run_fleet(&config, &program, 2);
    assert_eq!(rollup.totals.outage_devices, config.devices);
    assert_eq!(rollup.totals.degraded_devices, config.devices);
    assert!((rollup.degraded_fraction() - 1.0).abs() < 1e-12);

    // Ground truth: simulate each device under plain DutyCycle.
    let duty = Strategy::DutyCycle {
        sleep: config.fallback_sleep,
    };
    let profile = PhonePowerProfile::default();
    let sim_config = SimConfig::default();
    let mut expected_detections = 0u64;
    let mut expected_wake_ups = 0u64;
    for device_id in 0..config.devices {
        let spec = config.device_spec(device_id);
        let trace = spec.trace();
        let app = spec.archetype.app();
        let r = simulate(&trace, app.as_ref(), &duty, &profile, &sim_config).unwrap();
        expected_detections += r.stats.detections as u64;
        expected_wake_ups += r.wake_ups as u64;
    }
    assert_eq!(rollup.totals.detections, expected_detections);
    assert_eq!(rollup.totals.wake_ups, expected_wake_ups);
}

#[test]
fn truncated_and_garbage_submissions_are_rejected_without_panicking() {
    let mut service = FleetService::new(FleetConfig {
        device_duration: Micros::from_secs(5),
        ..FleetConfig::new(1, 4)
    });
    let good = encode_message(
        MessageType::SubmitProgram,
        steps_condition().to_string().as_bytes(),
    );
    // Every truncation of a valid submission.
    for cut in 0..good.len() {
        let reply = service.handle(&good[..cut]);
        let (kind, payload) = decode_message(&reply).expect("replies are well-formed");
        assert_eq!(kind, MessageType::ErrorReply, "cut at {cut}");
        assert!(!payload.is_empty());
    }
    // Deterministic pseudo-garbage of assorted lengths.
    let mut x = 0x1234_5678_9abc_def0u64;
    for len in [1usize, 7, 64, 68, 136, 500] {
        let garbage: Vec<u8> = (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        let reply = service.handle(&garbage);
        let (kind, _) = decode_message(&reply).expect("replies are well-formed");
        assert_eq!(kind, MessageType::ErrorReply, "garbage of length {len}");
    }
    // The service is still healthy: a real submission now succeeds.
    let reply = service.handle(&good);
    let (kind, _) = decode_message(&reply).unwrap();
    assert_eq!(kind, MessageType::SubmitAck);
}

/// A classifier that panics on every call — the hostile device cell.
struct ExplodingApp;

impl Application for ExplodingApp {
    fn name(&self) -> &str {
        "exploding"
    }
    fn target_kinds(&self) -> Vec<sidewinder_sensors::EventKind> {
        vec![sidewinder_sensors::EventKind::Walking]
    }
    fn classify(
        &self,
        _trace: &sidewinder_sensors::SensorTrace,
        _start: Micros,
        _end: Micros,
    ) -> Vec<Micros> {
        panic!("classifier blew up");
    }
    fn wake_condition(&self) -> Program {
        steps_condition()
    }
    fn wake_condition_hub_mw(&self) -> f64 {
        3.6
    }
}

#[test]
fn a_panicking_device_cell_is_a_reported_failure_not_a_crash() {
    let config = FleetConfig {
        faults: FleetFaultModel::none(),
        shard_size: 16,
        device_duration: Micros::from_secs(10),
        ..FleetConfig::new(0xBAD, 16)
    };
    let program = steps_condition();
    // Plant the exploding classifier behind every archetype slot.
    let apps: [Box<dyn Application + Send + Sync>; 4] = [
        Box::new(ExplodingApp),
        Box::new(ExplodingApp),
        Box::new(ExplodingApp),
        Box::new(ExplodingApp),
    ];
    let rollup = run_shard_with_apps(&config, &program, 0, &apps);
    // The shard ran to completion; every panicking cell is accounted.
    assert_eq!(rollup.devices, 16);
    assert_eq!(rollup.ok + rollup.panicked, 16);
    assert!(rollup.panicked > 0, "at least one cell hit the classifier");
    let sample = rollup
        .failures
        .iter()
        .find(|f| f.disposition == DeviceDisposition::Panicked)
        .expect("a panic sample is retained");
    assert!(sample.message.contains("classifier blew up"));

    // Healthy archetype table over the same config: zero failures, so
    // the panics above came from the planted classifier alone.
    let healthy: [Box<dyn Application + Send + Sync>; 4] = [
        DeviceArchetype::CommuterPhone.app(),
        DeviceArchetype::RetailPhone.app(),
        DeviceArchetype::OfficePhone.app(),
        DeviceArchetype::RobotMount.app(),
    ];
    let clean = run_shard_with_apps(&config, &program, 0, &healthy);
    assert_eq!(clean.panicked, 0);
    assert_eq!(clean.ok, 16);
}

/// Every fleet archetype's wake condition fits the `no_std` MCU core:
/// its resource certificate places it in the default-arena class, it
/// compiles to an [`sidewinder_hub::McuImage`] within the fixed node
/// and port capacities, loads into a default-arena core, and replays
/// the archetype's own generated trace bit-identically to the hub
/// interpreter the fleet cells run. The fleet's device programs are
/// therefore deployable to the hub hardware unchanged — and the
/// capacity expectation is derived from the certificate, not assumed.
#[test]
fn every_archetype_condition_runs_on_the_mcu_core() {
    use sidewinder_cert::{certify_program, CertTarget, Precision};
    use sidewinder_hub::runtime::{ChannelRates, HubRuntime};
    use sidewinder_hub::{compile_image, McuCore, DEFAULT_ARENA};

    for archetype in DeviceArchetype::ALL {
        let program = archetype.app().wake_condition();
        let rates = ChannelRates::default();
        let cert = certify_program(
            &program,
            &rates,
            Precision::F64,
            &CertTarget {
                mcu: None,
                cap: DEFAULT_ARENA,
            },
        )
        .unwrap_or_else(|e| panic!("{}: certification failed: {e}", archetype.label()));
        assert!(
            cert.fits_cap,
            "{}: certified at {} elements, past the default core",
            archetype.label(),
            cert.required_capacity
        );
        let image = compile_image(&program, &rates)
            .unwrap_or_else(|e| panic!("{}: image compilation failed: {e}", archetype.label()));
        let mut hub = HubRuntime::load(&program, &rates).unwrap();
        let mut core: McuCore = McuCore::new();
        core.load(&image)
            .unwrap_or_else(|e| panic!("{}: core load failed: {e}", archetype.label()));

        let trace = archetype.generate_trace(
            0x5EED ^ archetype.label().len() as u64,
            Micros::from_secs(30),
        );
        for channel in program.channels() {
            let samples = trace
                .channel(channel)
                .unwrap_or_else(|| panic!("{}: trace lacks {channel:?}", archetype.label()))
                .samples();
            let host_wakes = hub.push_samples(channel, samples).unwrap();
            let mut core_wakes = Vec::with_capacity(host_wakes.len());
            core.push_samples(channel.index() as u8, samples, &mut |w| core_wakes.push(w))
                .unwrap();
            assert_eq!(
                host_wakes.len(),
                core_wakes.len(),
                "{}: wake count diverged",
                archetype.label()
            );
            for (h, c) in host_wakes.iter().zip(core_wakes.iter()) {
                assert_eq!(h.seq, c.seq, "{}: wake moved", archetype.label());
                assert_eq!(
                    h.value.to_bits(),
                    c.value.to_bits(),
                    "{}: wake bits diverged at seq {}",
                    archetype.label(),
                    h.seq
                );
            }
        }
    }
}
