//! Defective fixture variants with their expected diagnostics pinned
//! verbatim: code, severity, source line, and the load-bearing phrases
//! of each message. These are the contract the CI `lint-fixtures` job
//! and editor integrations rely on.

use sidewinder_hub::runtime::ChannelRates;
use sidewinder_ir::Program;
use sidewinder_lint::{lint_program, LintReport, Severity};

fn lint_fixture(name: &str, text: &str) -> LintReport {
    let program: Program = text
        .parse()
        .unwrap_or_else(|e| panic!("{name}.swir does not parse: {e}"));
    program
        .validate()
        .unwrap_or_else(|e| panic!("{name}.swir does not validate: {e:?}"));
    lint_program(&program, &ChannelRates::default())
}

/// `(code, severity, line, must_contain)` for every expected finding,
/// in report order.
fn assert_expected(name: &str, report: &LintReport, expected: &[(&str, Severity, u32, &str)]) {
    assert_eq!(
        report.diagnostics.len(),
        expected.len(),
        "{name}: unexpected diagnostics:\n{}",
        report.render_human(name)
    );
    for (d, (code, severity, line, phrase)) in report.diagnostics.iter().zip(expected) {
        assert_eq!(d.code.code(), *code, "{name}: wrong code: {}", d.message);
        assert_eq!(d.severity, *severity, "{name}: wrong severity for {code}");
        assert_eq!(d.line, Some(*line), "{name}: wrong line for {code}");
        assert!(
            d.message.contains(phrase),
            "{name}: {code} message missing {phrase:?}: {}",
            d.message
        );
    }
}

#[test]
fn dead_threshold_is_flagged_at_the_gate() {
    // ±2 g is ±19.61 m/s²; a ≥ 25 threshold can never pass.
    let report = lint_fixture(
        "dead_threshold",
        include_str!("fixtures/dead_threshold.swir"),
    );
    assert_expected(
        "dead_threshold",
        &report,
        &[("SW001", Severity::Error, 2, "wake condition can never fire")],
    );
    assert!(report.fails(false), "SW001 must fail even without --deny");
}

#[test]
fn wake_storm_reports_the_no_op_gate_and_the_storm() {
    let report = lint_fixture("wake_storm", include_str!("fixtures/wake_storm.swir"));
    assert_expected(
        "wake_storm",
        &report,
        &[
            ("SW003", Severity::Warn, 2, "it filters nothing"),
            (
                "SW002",
                Severity::Warn,
                3,
                "fires for every upstream arrival",
            ),
        ],
    );
    assert!(!report.fails(false), "warnings pass by default");
    assert!(report.fails(true), "--deny warnings rejects the storm");
}

#[test]
fn overdriven_siren_fits_no_mcu() {
    // A 2048-point FFT filter sliding every 2 samples needs ~1 Gflop/s —
    // beyond both catalog parts.
    let report = lint_fixture(
        "siren_overflow",
        include_str!("fixtures/siren_overflow.swir"),
    );
    assert_expected(
        "siren_overflow",
        &report,
        &[("SW007", Severity::Error, 7, "fits no supported MCU")],
    );
    let d = &report.diagnostics[0];
    assert!(
        d.message.contains("heaviest compute: `highPass`"),
        "{}",
        d.message
    );
}

#[test]
fn human_rendering_matches_verbatim() {
    let report = lint_fixture(
        "dead_threshold",
        include_str!("fixtures/dead_threshold.swir"),
    );
    assert_eq!(
        report.render_human("dead_threshold.swir"),
        "error[SW001]: dead_threshold.swir:2: wake condition can never fire: \
         no value in [-19.6133, 19.6133] can reach the >= 25 threshold\n"
    );
}

#[test]
fn json_rendering_carries_code_line_and_node() {
    let report = lint_fixture("wake_storm", include_str!("fixtures/wake_storm.swir"));
    let json = report.to_json("wake_storm.swir");
    assert!(json.contains(r#""code": "SW002""#), "{json}");
    assert!(json.contains(r#""code": "SW003""#), "{json}");
    assert!(json.contains(r#""line": 2"#), "{json}");
    assert!(json.contains(r#""line": 3"#), "{json}");
    assert!(json.contains(r#""severity": "warning""#), "{json}");
}
