//! The six golden wake-condition fixtures must stay lint-clean: no
//! errors, no warnings. The FFT-based siren condition is *expected* to
//! carry the advisory SW006 note — the paper's Table 2 footnote ("…
//! includes the more powerful TI LM4F120") as a diagnostic.

use sidewinder_hub::runtime::ChannelRates;
use sidewinder_ir::Program;
use sidewinder_lint::{lint_program, LintCode, LintReport, Severity};

const GOLDEN_FIXTURES: [(&str, &str); 6] = [
    ("steps", include_str!("../../ir/tests/fixtures/steps.swir")),
    (
        "transitions",
        include_str!("../../ir/tests/fixtures/transitions.swir"),
    ),
    (
        "headbutts",
        include_str!("../../ir/tests/fixtures/headbutts.swir"),
    ),
    (
        "sirens",
        include_str!("../../ir/tests/fixtures/sirens.swir"),
    ),
    ("music", include_str!("../../ir/tests/fixtures/music.swir")),
    (
        "phrase",
        include_str!("../../ir/tests/fixtures/phrase.swir"),
    ),
];

fn lint_fixture(name: &str, text: &str) -> LintReport {
    let program: Program = text
        .parse()
        .unwrap_or_else(|e| panic!("{name}.swir does not parse: {e}"));
    program
        .validate()
        .unwrap_or_else(|e| panic!("{name}.swir does not validate: {e:?}"));
    lint_program(&program, &ChannelRates::default())
}

#[test]
fn golden_fixtures_have_no_errors_or_warnings() {
    for (name, text) in GOLDEN_FIXTURES {
        let report = lint_fixture(name, text);
        assert!(
            !report.fails(true),
            "{name}.swir fails --deny warnings:\n{}",
            report.render_human(name)
        );
    }
}

#[test]
fn only_the_siren_condition_needs_the_bigger_mcu() {
    for (name, text) in GOLDEN_FIXTURES {
        let report = lint_fixture(name, text);
        if name == "sirens" {
            let note = report
                .diagnostics
                .iter()
                .find(|d| d.code == LintCode::NeedsBiggerMcu)
                .expect("sirens.swir must carry the SW006 note");
            assert_eq!(note.severity, Severity::Info);
            assert!(
                note.message.contains("needs TI LM4F120"),
                "{}",
                note.message
            );
        } else {
            assert!(
                report.is_clean(),
                "{name}.swir is not lint-clean:\n{}",
                report.render_human(name)
            );
        }
    }
}
