//! Totality: the analyzer and every lint pass must accept *anything*
//! that parses — validated or not — without panicking, and the report
//! must hold its structural invariants.

use proptest::prelude::*;
use sidewinder_hub::runtime::ChannelRates;
use sidewinder_ir::Program;
use sidewinder_lint::testing::arb_program;
use sidewinder_lint::{analyze, lint_program, LintReport};

/// Structural invariants every report must satisfy, whatever fired.
fn check_report_invariants(report: &LintReport) {
    let mut last = (0u32, None);
    for d in &report.diagnostics {
        assert_eq!(d.severity, d.code.severity(), "severity drifted from code");
        let key = (d.line.unwrap_or(u32::MAX), Some(d.code));
        assert!(last <= key, "diagnostics not sorted by line then code");
        last = key;
    }
}

proptest! {
    /// Arbitrary bytes: whatever survives the parser must survive the
    /// linter too — including programs that fail validation.
    #[test]
    fn garbage_bytes_never_panic_the_linter(
        bytes in prop::collection::vec(0u8..=255u8, 0..200)
    ) {
        let text = String::from_utf8_lossy(&bytes);
        if let Ok(p) = text.parse::<Program>() {
            let report = lint_program(&p, &ChannelRates::default());
            check_report_invariants(&report);
        }
    }

    /// Every valid generated program lints without panicking, and its
    /// JSON/human renderings are total too.
    #[test]
    fn generated_programs_never_panic_the_linter(p in arb_program()) {
        let report = lint_program(&p, &ChannelRates::default());
        check_report_invariants(&report);
        let _ = report.render_human("generated");
        let _ = report.to_json("generated");
    }

    /// Truncating a valid program anywhere yields a parse error or a
    /// prefix the linter handles — dangling node references included.
    #[test]
    fn truncated_programs_never_panic_the_linter(
        (text, cut) in arb_program().prop_flat_map(|p| {
            let text = p.to_string();
            let len = text.len();
            (Just(text), 0usize..len)
        })
    ) {
        if let Some(truncated) = text.get(..cut) {
            if let Ok(p) = truncated.parse::<Program>() {
                let report = lint_program(&p, &ChannelRates::default());
                check_report_invariants(&report);
            }
        }
    }

    /// The abstract interpreter's facts are internally consistent on
    /// every valid program: feasibility and value emptiness agree, and
    /// rates/periods are non-negative.
    #[test]
    fn analysis_facts_are_consistent(p in arb_program()) {
        let analysis = analyze(&p, &ChannelRates::default());
        for f in analysis.facts() {
            prop_assert!(f.rate_hz >= 0.0);
            prop_assert!(f.period_ticks >= 0.0);
            prop_assert!(f.len >= 1);
            if !f.feasible {
                prop_assert!(f.value.is_empty(), "infeasible node {} kept a value", f.id.0);
            }
            prop_assert!(!(f.passes_all && f.passes_none && !f.input_value.is_empty()));
        }
    }
}
