//! Totality: the analyzer and every lint pass must accept *anything*
//! that parses — validated or not — without panicking, and the report
//! must hold its structural invariants.

use proptest::prelude::*;
use sidewinder_hub::runtime::ChannelRates;
use sidewinder_ir::{AlgorithmKind, NodeId, Program, Source, StatFn, WindowShapeParam};
use sidewinder_lint::{analyze, lint_program, LintReport};
use sidewinder_sensors::SensorChannel;

fn arb_scalar_chain_kind() -> impl Strategy<Value = AlgorithmKind> {
    prop_oneof![
        (1u32..64).prop_map(|window| AlgorithmKind::MovingAvg { window }),
        (0.01f64..=1.0).prop_map(|alpha| AlgorithmKind::ExpMovingAvg { alpha }),
        (-100.0f64..100.0).prop_map(|threshold| AlgorithmKind::MinThreshold { threshold }),
        (-100.0f64..100.0).prop_map(|threshold| AlgorithmKind::MaxThreshold { threshold }),
        (-100.0f64..100.0, 0.0f64..50.0)
            .prop_map(|(lo, span)| AlgorithmKind::BandThreshold { lo, hi: lo + span }),
        (-100.0f64..100.0, 0.0f64..50.0)
            .prop_map(|(lo, span)| AlgorithmKind::OutsideThreshold { lo, hi: lo + span }),
        (1u32..10, 1u32..4096)
            .prop_map(|(count, max_gap)| AlgorithmKind::Sustained { count, max_gap }),
    ]
}

fn arb_vector_reducer() -> impl Strategy<Value = AlgorithmKind> {
    prop_oneof![
        Just(AlgorithmKind::Zcr),
        (2u32..16).prop_map(|sub_windows| AlgorithmKind::ZcrVariance { sub_windows }),
        (0usize..StatFn::ALL.len()).prop_map(|i| AlgorithmKind::Stat(StatFn::ALL[i])),
        Just(AlgorithmKind::DominantRatio),
        Just(AlgorithmKind::DominantFreq),
        Just(AlgorithmKind::Fft),
        (100.0f64..2000.0).prop_map(|cutoff_hz| AlgorithmKind::HighPass { cutoff_hz }),
    ]
}

fn arb_window() -> impl Strategy<Value = AlgorithmKind> {
    (3u32..10, 0usize..3).prop_flat_map(|(bits, shape_idx)| {
        let size = 1u32 << bits;
        (1u32..=size).prop_map(move |hop| AlgorithmKind::Window {
            size,
            hop,
            shape: [
                WindowShapeParam::Rectangular,
                WindowShapeParam::Hamming,
                WindowShapeParam::Hann,
            ][shape_idx],
        })
    })
}

/// Valid programs shaped like the evaluation apps: accelerometer
/// branches joined by vectorMagnitude, or a mic window reduced to a
/// scalar, with arbitrary threshold chains.
fn arb_program() -> impl Strategy<Value = Program> {
    prop_oneof![accel_program(), audio_program()]
}

fn accel_program() -> impl Strategy<Value = Program> {
    (
        1usize..=3,
        prop::collection::vec(arb_scalar_chain_kind(), 1..4),
        prop::collection::vec(arb_scalar_chain_kind(), 0..3),
    )
        .prop_map(|(branches, per_branch, tail)| {
            let mut p = Program::new();
            let mut next_id = 1u32;
            let mut joins = Vec::new();
            for b in 0..branches {
                let mut src = Source::Channel(SensorChannel::ACCEL[b]);
                for kind in &per_branch {
                    let id = NodeId(next_id);
                    next_id += 1;
                    p.push_node(vec![src], id, *kind);
                    src = Source::Node(id);
                }
                joins.push(src);
            }
            let join_id = NodeId(next_id);
            next_id += 1;
            p.push_node(joins, join_id, AlgorithmKind::VectorMagnitude);
            let mut src = Source::Node(join_id);
            for kind in &tail {
                let id = NodeId(next_id);
                next_id += 1;
                p.push_node(vec![src], id, *kind);
                src = Source::Node(id);
            }
            let Source::Node(last) = src else {
                unreachable!()
            };
            p.push_out(last);
            p
        })
}

fn audio_program() -> impl Strategy<Value = Program> {
    (
        arb_window(),
        arb_vector_reducer(),
        prop::collection::vec(arb_scalar_chain_kind(), 0..3),
    )
        .prop_map(|(window, reducer, tail)| {
            let mut p = Program::new();
            p.push_node(vec![Source::Channel(SensorChannel::Mic)], NodeId(1), window);
            p.push_node(vec![Source::Node(NodeId(1))], NodeId(2), reducer);
            let mut src = Source::Node(NodeId(2));
            for (offset, kind) in tail.iter().enumerate() {
                let id = NodeId(3 + offset as u32);
                p.push_node(vec![src], id, *kind);
                src = Source::Node(id);
            }
            let Source::Node(last) = src else {
                unreachable!()
            };
            p.push_out(last);
            p
        })
}

/// Structural invariants every report must satisfy, whatever fired.
fn check_report_invariants(report: &LintReport) {
    let mut last = (0u32, None);
    for d in &report.diagnostics {
        assert_eq!(d.severity, d.code.severity(), "severity drifted from code");
        let key = (d.line.unwrap_or(u32::MAX), Some(d.code));
        assert!(last <= key, "diagnostics not sorted by line then code");
        last = key;
    }
}

proptest! {
    /// Arbitrary bytes: whatever survives the parser must survive the
    /// linter too — including programs that fail validation.
    #[test]
    fn garbage_bytes_never_panic_the_linter(
        bytes in prop::collection::vec(0u8..=255u8, 0..200)
    ) {
        let text = String::from_utf8_lossy(&bytes);
        if let Ok(p) = text.parse::<Program>() {
            let report = lint_program(&p, &ChannelRates::default());
            check_report_invariants(&report);
        }
    }

    /// Every valid generated program lints without panicking, and its
    /// JSON/human renderings are total too.
    #[test]
    fn generated_programs_never_panic_the_linter(p in arb_program()) {
        let report = lint_program(&p, &ChannelRates::default());
        check_report_invariants(&report);
        let _ = report.render_human("generated");
        let _ = report.to_json("generated");
    }

    /// Truncating a valid program anywhere yields a parse error or a
    /// prefix the linter handles — dangling node references included.
    #[test]
    fn truncated_programs_never_panic_the_linter(
        (text, cut) in arb_program().prop_flat_map(|p| {
            let text = p.to_string();
            let len = text.len();
            (Just(text), 0usize..len)
        })
    ) {
        if let Some(truncated) = text.get(..cut) {
            if let Ok(p) = truncated.parse::<Program>() {
                let report = lint_program(&p, &ChannelRates::default());
                check_report_invariants(&report);
            }
        }
    }

    /// The abstract interpreter's facts are internally consistent on
    /// every valid program: feasibility and value emptiness agree, and
    /// rates/periods are non-negative.
    #[test]
    fn analysis_facts_are_consistent(p in arb_program()) {
        let analysis = analyze(&p, &ChannelRates::default());
        for f in analysis.facts() {
            prop_assert!(f.rate_hz >= 0.0);
            prop_assert!(f.period_ticks >= 0.0);
            prop_assert!(f.len >= 1);
            if !f.feasible {
                prop_assert!(f.value.is_empty(), "infeasible node {} kept a value", f.id.0);
            }
            prop_assert!(!(f.passes_all && f.passes_none && !f.input_value.is_empty()));
        }
    }
}
