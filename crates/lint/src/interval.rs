//! A closed-interval abstract domain over `f64`.
//!
//! The analyzer tracks, for every node of an IR program, a conservative
//! over-approximation of the values its emissions can take. The domain is
//! the classic interval lattice: the bottom element is the empty interval
//! (the node provably never emits), the top element is `(-∞, +∞)`. All
//! transfer functions in [`crate::absint`] are monotone hull operations,
//! so a single forward pass over the (acyclic, define-before-use) IR
//! reaches the fixed point.

/// A closed interval `[lo, hi]` of real values, possibly unbounded, or
/// the empty set.
///
/// Invariant: `lo <= hi` for non-empty intervals; the canonical empty
/// interval is `lo = +∞, hi = -∞`. Bounds are never NaN — NaN potential
/// is tracked separately by the analysis (`may_non_finite`), because an
/// interval with NaN endpoints would poison every comparison below.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower bound (inclusive when finite).
    pub lo: f64,
    /// Upper bound (inclusive when finite).
    pub hi: f64,
}

impl Interval {
    /// The empty interval (bottom): no value is possible.
    pub const EMPTY: Interval = Interval {
        lo: f64::INFINITY,
        hi: f64::NEG_INFINITY,
    };

    /// The unbounded interval (top): nothing is known.
    pub const UNBOUNDED: Interval = Interval {
        lo: f64::NEG_INFINITY,
        hi: f64::INFINITY,
    };

    /// Creates `[lo, hi]`; returns [`Interval::EMPTY`] when `lo > hi` or
    /// either bound is NaN.
    pub fn new(lo: f64, hi: f64) -> Interval {
        if lo.is_nan() || hi.is_nan() || lo > hi {
            Interval::EMPTY
        } else {
            Interval { lo, hi }
        }
    }

    /// The single-point interval `[v, v]`.
    pub fn point(v: f64) -> Interval {
        Interval::new(v, v)
    }

    /// Whether no value is possible.
    pub fn is_empty(&self) -> bool {
        self.lo > self.hi
    }

    /// Whether both bounds are finite.
    pub fn is_bounded(&self) -> bool {
        self.is_empty() || (self.lo.is_finite() && self.hi.is_finite())
    }

    /// Whether `v` lies inside the interval.
    pub fn contains(&self, v: f64) -> bool {
        !self.is_empty() && self.lo <= v && v <= self.hi
    }

    /// Whether `self` is entirely inside `other`.
    pub fn subset_of(&self, other: &Interval) -> bool {
        self.is_empty() || (!other.is_empty() && other.lo <= self.lo && self.hi <= other.hi)
    }

    /// The smallest interval containing both operands (lattice join).
    pub fn hull(&self, other: &Interval) -> Interval {
        if self.is_empty() {
            *other
        } else if other.is_empty() {
            *self
        } else {
            Interval::new(self.lo.min(other.lo), self.hi.max(other.hi))
        }
    }

    /// The intersection of both operands (lattice meet).
    pub fn intersect(&self, other: &Interval) -> Interval {
        Interval::new(self.lo.max(other.lo), self.hi.min(other.hi))
    }

    /// The largest absolute value the interval admits (`0` when empty).
    pub fn abs_bound(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.lo.abs().max(self.hi.abs())
        }
    }

    /// `hi - lo`, or `0` when empty.
    pub fn width(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.hi - self.lo
        }
    }

    /// The interval after multiplying every value by a weight in
    /// `[0, 1]` — the effect of a window taper. The hull necessarily
    /// includes 0 (the weight can vanish).
    pub fn tapered(&self) -> Interval {
        if self.is_empty() {
            Interval::EMPTY
        } else {
            Interval::new(self.lo.min(0.0), self.hi.max(0.0))
        }
    }

    /// The symmetric interval `[-m, m]` with `m` the given magnitude
    /// bound (empty input stays empty).
    pub fn symmetric(m: f64) -> Interval {
        Interval::new(-m, m)
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            f.write_str("∅")
        } else {
            write!(f, "[{:.4}, {:.4}]", self.lo, self.hi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_interval_identities() {
        assert!(Interval::EMPTY.is_empty());
        assert!(!Interval::new(1.0, 2.0).is_empty());
        assert!(Interval::new(2.0, 1.0).is_empty());
        assert!(Interval::new(f64::NAN, 1.0).is_empty());
        assert_eq!(Interval::EMPTY.abs_bound(), 0.0);
        assert_eq!(Interval::EMPTY.width(), 0.0);
        assert!(!Interval::EMPTY.contains(0.0));
    }

    #[test]
    fn hull_and_intersect() {
        let a = Interval::new(-1.0, 2.0);
        let b = Interval::new(1.0, 5.0);
        assert_eq!(a.hull(&b), Interval::new(-1.0, 5.0));
        assert_eq!(a.intersect(&b), Interval::new(1.0, 2.0));
        assert_eq!(a.hull(&Interval::EMPTY), a);
        assert_eq!(Interval::EMPTY.hull(&b), b);
        assert!(a.intersect(&Interval::new(3.0, 4.0)).is_empty());
    }

    #[test]
    fn subset_and_contains() {
        let outer = Interval::new(-10.0, 10.0);
        assert!(Interval::new(-1.0, 1.0).subset_of(&outer));
        assert!(Interval::EMPTY.subset_of(&outer));
        assert!(!outer.subset_of(&Interval::new(-1.0, 1.0)));
        assert!(outer.contains(0.0));
        assert!(!outer.contains(11.0));
        assert!(Interval::UNBOUNDED.contains(1e300));
    }

    #[test]
    fn boundedness_and_magnitude() {
        assert!(Interval::new(-2.0, 3.0).is_bounded());
        assert!(!Interval::UNBOUNDED.is_bounded());
        assert_eq!(Interval::new(-5.0, 3.0).abs_bound(), 5.0);
        assert_eq!(Interval::symmetric(4.0), Interval::new(-4.0, 4.0));
    }

    #[test]
    fn taper_pulls_hull_to_zero() {
        assert_eq!(Interval::new(2.0, 5.0).tapered(), Interval::new(0.0, 5.0));
        assert_eq!(
            Interval::new(-3.0, -1.0).tapered(),
            Interval::new(-3.0, 0.0)
        );
        assert_eq!(Interval::new(-1.0, 1.0).tapered(), Interval::new(-1.0, 1.0));
        assert!(Interval::EMPTY.tapered().is_empty());
    }

    #[test]
    fn display_renders_compactly() {
        assert_eq!(Interval::EMPTY.to_string(), "∅");
        assert!(Interval::new(0.0, 1.0).to_string().contains("[0.0000"));
    }
}
