//! Abstract interpretation of IR dataflow graphs.
//!
//! One forward pass propagates four abstract properties through the
//! (acyclic, define-before-use) program:
//!
//! * a **value interval** per emitted element, seeded from the physical
//!   sensor bounds (±2 g accelerometer, ±1 normalized audio);
//! * an **emission rate** in Hz and the expected **period in source
//!   sample ticks** between emissions (what `sustained` compares its
//!   `max_gap` against);
//! * the **vector length** flowing along each edge;
//! * **feasibility** flags: can the node ever emit, and does it emit for
//!   every upstream arrival (the two ends of the admission-control
//!   spectrum — a dead wake condition versus a wake storm).
//!
//! The pass is *total*: it never panics, even on unvalidated or
//! malformed programs. References to undefined nodes resolve to a
//! conservative top element (unbounded value, possibly non-finite),
//! which is also what lets the numeric-hazard lint reason about
//! FFT stages fed by unconstrained intermediates.

use crate::interval::Interval;
use sidewinder_hub::runtime::ChannelRates;
use sidewinder_ir::{AlgorithmKind, NodeId, Program, Source, StatFn};
use sidewinder_sensors::SensorChannel;
use std::collections::BTreeMap;

/// Standard gravity, m/s² — the accelerometer seed is ±2 g.
const G: f64 = 9.80665;

/// The physical value bounds of a sensor channel: ±2 g for the
/// accelerometer axes (the part's configured full-scale range), `[-1, 1]`
/// for normalized microphone amplitude.
pub fn channel_interval(channel: SensorChannel) -> Interval {
    if channel.is_accelerometer() {
        Interval::symmetric(2.0 * G)
    } else {
        Interval::symmetric(1.0)
    }
}

/// Everything the analyzer derived about one node.
#[derive(Debug, Clone)]
pub struct NodeFacts {
    /// The node.
    pub id: NodeId,
    /// Source line of its declaration, when parsed from text.
    pub line: Option<u32>,
    /// The algorithm running at this node.
    pub kind: AlgorithmKind,
    /// Per-element interval of emitted values ([`Interval::EMPTY`] when
    /// the node provably never emits).
    pub value: Interval,
    /// Hull of the incoming element intervals.
    pub input_value: Interval,
    /// Emission rate of each input edge, in Hz.
    pub input_rates: Vec<f64>,
    /// Whether an emitted value could be NaN or ±∞.
    pub may_non_finite: bool,
    /// Whether any incoming value could be NaN or ±∞.
    pub input_may_non_finite: bool,
    /// Emissions per second (upper bound).
    pub rate_hz: f64,
    /// Elements per emission (1 for scalars).
    pub len: usize,
    /// Expected source-sample ticks between emissions — the unit
    /// `sustained` compares its `max_gap` parameter against.
    pub period_ticks: f64,
    /// Sample rate of the driving sensor channel (Nyquist context for
    /// `dominantFreq`).
    pub base_rate_hz: f64,
    /// Whether the node can ever emit.
    pub feasible: bool,
    /// Whether the node emits for *every* upstream arrival.
    pub always_emits: bool,
    /// For admission-control nodes: the gate provably passes every
    /// possible input value (it filters nothing).
    pub passes_all: bool,
    /// For admission-control nodes: the gate provably rejects every
    /// possible input value.
    pub passes_none: bool,
}

/// The result of analyzing a program.
#[derive(Debug, Clone)]
pub struct Analysis {
    facts: BTreeMap<NodeId, NodeFacts>,
    order: Vec<NodeId>,
    out_source: Option<NodeId>,
    out_line: Option<u32>,
}

impl Analysis {
    /// Facts for one node, if it exists.
    pub fn fact(&self, id: NodeId) -> Option<&NodeFacts> {
        self.facts.get(&id)
    }

    /// Facts in statement order.
    pub fn facts(&self) -> impl Iterator<Item = &NodeFacts> {
        self.order.iter().filter_map(|id| self.facts.get(id))
    }

    /// The node feeding `OUT`, if any.
    pub fn out_source(&self) -> Option<NodeId> {
        self.out_source
    }

    /// Source line of the `OUT` statement, when parsed from text.
    pub fn out_line(&self) -> Option<u32> {
        self.out_line
    }

    /// Facts of the node feeding `OUT`.
    pub fn out_fact(&self) -> Option<&NodeFacts> {
        self.out_source.and_then(|id| self.facts.get(&id))
    }
}

/// An upstream edge resolved to its abstract properties.
#[derive(Debug, Clone)]
struct Up {
    value: Interval,
    may_non_finite: bool,
    rate_hz: f64,
    len: usize,
    period_ticks: f64,
    base_rate_hz: f64,
    feasible: bool,
    always: bool,
}

impl Up {
    /// Conservative top for references the program never defines
    /// (unvalidated input): value unknown and possibly non-finite, but
    /// neither provably dead nor provably storming.
    fn unknown() -> Up {
        Up {
            value: Interval::UNBOUNDED,
            may_non_finite: true,
            rate_hz: 0.0,
            len: 1,
            period_ticks: f64::INFINITY,
            base_rate_hz: 0.0,
            feasible: true,
            always: false,
        }
    }
}

/// Runs the forward pass. Total: accepts unvalidated programs and never
/// panics; garbage in yields conservative facts out.
pub fn analyze(program: &Program, rates: &ChannelRates) -> Analysis {
    let mut facts: BTreeMap<NodeId, NodeFacts> = BTreeMap::new();
    let mut order = Vec::new();

    for (sources, id, kind) in program.nodes() {
        let ups: Vec<Up> = sources
            .iter()
            .map(|s| match s {
                Source::Channel(c) => {
                    let rate = rates.rate_of(*c);
                    Up {
                        value: channel_interval(*c),
                        may_non_finite: false,
                        rate_hz: rate,
                        len: 1,
                        period_ticks: 1.0,
                        base_rate_hz: rate,
                        feasible: true,
                        always: true,
                    }
                }
                Source::Node(n) => facts.get(n).map_or_else(Up::unknown, |f| Up {
                    value: f.value,
                    may_non_finite: f.may_non_finite,
                    rate_hz: f.rate_hz,
                    len: f.len,
                    period_ticks: f.period_ticks,
                    base_rate_hz: f.base_rate_hz,
                    feasible: f.feasible,
                    always: f.always_emits,
                }),
            })
            .collect();
        let fact = transfer(id, program.line_of(id), kind, &ups);
        if !facts.contains_key(&id) {
            order.push(id);
        }
        facts.insert(id, fact);
    }

    Analysis {
        facts,
        order,
        out_source: program.out_source(),
        out_line: program.out_line(),
    }
}

/// Applies one node's transfer function to its resolved inputs.
fn transfer(id: NodeId, line: Option<u32>, kind: &AlgorithmKind, ups: &[Up]) -> NodeFacts {
    // Aggregate input properties; a node with no inputs (malformed)
    // degrades to the conservative unknown edge.
    let ups_or_unknown: Vec<Up> = if ups.is_empty() {
        vec![Up::unknown()]
    } else {
        ups.to_vec()
    };
    let ups = &ups_or_unknown[..];
    let primary = &ups[0];
    let input_value = ups
        .iter()
        .fold(Interval::EMPTY, |acc, u| acc.hull(&u.value));
    let input_rates: Vec<f64> = ups.iter().map(|u| u.rate_hz).collect();
    let input_may_non_finite = ups.iter().any(|u| u.may_non_finite);
    let inputs_feasible = ups.iter().all(|u| u.feasible);
    let base_rate_hz = ups.iter().fold(0.0f64, |m, u| m.max(u.base_rate_hz));

    let n = primary.len as f64;
    let m = primary.value.abs_bound();
    let v = primary.value;

    // Defaults: scalar pass-through of the primary edge.
    let mut value = v;
    let mut may_non_finite = input_may_non_finite;
    let mut rate_hz = primary.rate_hz;
    let mut len = 1usize;
    let mut period_ticks = primary.period_ticks;
    let mut feasible = inputs_feasible;
    let mut always_emits = ups.iter().all(|u| u.always);
    let mut passes_all = false;
    let mut passes_none = false;

    match *kind {
        AlgorithmKind::Window { size, hop, shape } => {
            value = match shape {
                sidewinder_ir::WindowShapeParam::Rectangular => v,
                _ => v.tapered(),
            };
            let hop = hop.max(1) as f64;
            rate_hz = primary.rate_hz / hop;
            period_ticks = primary.period_ticks * hop;
            len = size as usize;
        }
        AlgorithmKind::Fft => {
            // An N-point transform's bins are bounded by Σ|x| ≤ N·max|x|.
            value = Interval::symmetric(n.max(1.0) * m);
            may_non_finite |= !v.is_bounded();
            len = primary.len;
        }
        AlgorithmKind::Ifft => {
            // Normalized inverse: |y| ≤ (1/N)·Σ|X| ≤ max|X|.
            value = Interval::symmetric(m);
            may_non_finite |= !v.is_bounded();
            len = primary.len;
        }
        AlgorithmKind::SpectralMagnitude => {
            // |re + j·im| ≤ √2·max(|re|, |im|).
            value = Interval::new(0.0, std::f64::consts::SQRT_2 * m);
            len = primary.len / 2 + 1;
        }
        AlgorithmKind::LowPass { .. } | AlgorithmKind::HighPass { .. } => {
            // fft → mask → ifft; ringing can overshoot the input range
            // but stays within the spectral bound.
            value = Interval::symmetric(n.max(1.0) * m);
            may_non_finite |= !v.is_bounded();
            len = primary.len;
        }
        AlgorithmKind::MovingAvg { .. } | AlgorithmKind::ExpMovingAvg { .. } => {
            // Convex combinations of history stay inside the input hull.
            value = v;
        }
        AlgorithmKind::VectorMagnitude => {
            let sq: f64 = ups.iter().map(|u| u.value.abs_bound().powi(2)).sum();
            value = Interval::new(0.0, sq.sqrt());
            rate_hz = min_rate(&input_rates);
            period_ticks = ups.iter().fold(0.0f64, |p, u| p.max(u.period_ticks));
        }
        AlgorithmKind::Zcr => value = Interval::new(0.0, 1.0),
        AlgorithmKind::ZcrVariance { .. } => {
            // Variance of values in [0, 1] is at most 1/4.
            value = Interval::new(0.0, 0.25);
        }
        AlgorithmKind::Stat(s) => {
            value = match s {
                StatFn::Mean | StatFn::Min | StatFn::Max => v,
                StatFn::PeakToPeak => Interval::new(0.0, v.width()),
                StatFn::Variance => Interval::new(0.0, (v.width() / 2.0).powi(2)),
                StatFn::StdDev => Interval::new(0.0, v.width() / 2.0),
                StatFn::MeanAbs | StatFn::Rms => Interval::new(0.0, m),
                StatFn::Energy => Interval::new(0.0, n.max(1.0) * m * m),
            };
        }
        AlgorithmKind::DominantRatio => {
            // The hub kernel skips emission when the mean is <= 0, so the
            // division never produces NaN and the peak (the max element,
            // >= the mean) keeps the ratio >= 1. The [1, bins] upper
            // bound additionally needs every element nonnegative (a true
            // magnitude spectrum): then mean >= peak/bins. On signed
            // input — the IR type system also admits raw time-domain
            // windows here — cancellation can drive the mean arbitrarily
            // close to zero while the peak stays large, so the ratio is
            // unbounded above.
            value = if v.lo >= 0.0 {
                Interval::new(1.0, (primary.len.saturating_sub(1)).max(1) as f64)
            } else {
                Interval::new(1.0, f64::INFINITY)
            };
            may_non_finite |= !value.is_bounded();
        }
        AlgorithmKind::DominantFreq => {
            value = Interval::new(0.0, base_rate_hz / 2.0);
        }
        AlgorithmKind::Goertzel { lo_hz, hi_hz } => {
            // A single DFT bin obeys the same bound as an FFT bin:
            // |X_k| ≤ Σ|x| ≤ N·max|x|.
            value = Interval::new(0.0, n.max(1.0) * m);
            may_non_finite |= !v.is_bounded();
            // With a known bin grid, an empty probe set (no bin center
            // inside the band) means the node can never emit.
            if base_rate_hz > 0.0 && primary.len > 0 {
                let bins = primary.len;
                let bin_hz = base_rate_hz / bins as f64;
                let any_in_band = (0..=bins / 2).any(|k| {
                    let f = k as f64 * bin_hz;
                    lo_hz <= f && f <= hi_hz
                });
                if !any_in_band {
                    feasible = false;
                }
            }
        }
        AlgorithmKind::GoertzelFreq { lo_hz, hi_hz } => {
            // Emits the frequency of an in-band, sub-Nyquist, non-DC
            // probe, so the result is confined to the band clipped to
            // (0, rate/2]; without a known rate only the band bounds it.
            let nyquist = if base_rate_hz > 0.0 {
                base_rate_hz / 2.0
            } else {
                f64::INFINITY
            };
            let hi = hi_hz.min(nyquist);
            value = Interval::new(lo_hz.min(hi), hi);
            if base_rate_hz > 0.0 && primary.len > 0 {
                let bins = primary.len;
                let bin_hz = base_rate_hz / bins as f64;
                // DC is never probed — the chains this node strength-
                // reduces search `mags[1..]`.
                let any_in_band = (1..=bins / 2).any(|k| {
                    let f = k as f64 * bin_hz;
                    lo_hz <= f && f <= hi_hz
                });
                if !any_in_band {
                    feasible = false;
                }
            }
        }
        AlgorithmKind::GoertzelRatio { lo_hz, hi_hz } => {
            // peak ≥ sum/probes and sum ≥ peak, so the emitted
            // `peak · bins / sum` lies in [1, bins] with bins = len/2 —
            // Goertzel magnitudes are nonnegative by construction, so
            // unlike `dominantRatio` no signed-input caveat applies.
            value = Interval::new(1.0, (primary.len / 2).max(1) as f64);
            if base_rate_hz > 0.0 && primary.len > 0 {
                let bins = primary.len;
                let bin_hz = base_rate_hz / bins as f64;
                let any_in_band = (1..=bins / 2).any(|k| {
                    let f = k as f64 * bin_hz;
                    lo_hz <= f && f <= hi_hz
                });
                if !any_in_band {
                    feasible = false;
                }
            }
        }
        AlgorithmKind::MinThreshold { threshold } => {
            gate(
                v,
                Interval::new(threshold, f64::INFINITY),
                &mut value,
                &mut passes_all,
                &mut passes_none,
            );
        }
        AlgorithmKind::MaxThreshold { threshold } => {
            gate(
                v,
                Interval::new(f64::NEG_INFINITY, threshold),
                &mut value,
                &mut passes_all,
                &mut passes_none,
            );
        }
        AlgorithmKind::BandThreshold { lo, hi } => {
            gate(
                v,
                Interval::new(lo, hi),
                &mut value,
                &mut passes_all,
                &mut passes_none,
            );
        }
        AlgorithmKind::OutsideThreshold { lo, hi } => {
            let band = Interval::new(lo, hi);
            let below = v.intersect(&Interval::new(f64::NEG_INFINITY, lo));
            let above = v.intersect(&Interval::new(hi, f64::INFINITY));
            value = below.hull(&above);
            passes_none = v.subset_of(&band);
            passes_all = !v.is_empty() && (v.hi < lo || v.lo > hi);
        }
        AlgorithmKind::Sustained { count, max_gap } => {
            // Arrivals are "consecutive" when their sequence tags are at
            // most max_gap ticks apart; an input cadence wider than the
            // gap can never chain count ≥ 2 arrivals.
            passes_none = count >= 2 && (max_gap as f64) < primary.period_ticks;
            passes_all = !passes_none;
        }
        AlgorithmKind::AllOf => {
            // Forwards the last input's value once every branch delivered.
            value = ups.last().map_or(Interval::EMPTY, |u| u.value);
            rate_hz = min_rate(&input_rates);
            period_ticks = ups.iter().fold(0.0f64, |p, u| p.max(u.period_ticks));
        }
        AlgorithmKind::AnyOf => {
            value = input_value;
            rate_hz = input_rates.iter().sum();
            period_ticks = ups.iter().fold(f64::INFINITY, |p, u| p.min(u.period_ticks));
            feasible = ups.iter().any(|u| u.feasible);
            always_emits = ups.iter().any(|u| u.always);
        }
    }

    if passes_none {
        feasible = false;
    }
    if is_gate(kind) {
        always_emits = always_emits && passes_all;
    }
    if !feasible {
        value = Interval::EMPTY;
    }

    NodeFacts {
        id,
        line,
        kind: *kind,
        value,
        input_value,
        input_rates,
        may_non_finite,
        input_may_non_finite,
        rate_hz,
        len,
        period_ticks,
        base_rate_hz,
        feasible,
        always_emits,
        passes_all,
        passes_none,
    }
}

/// Threshold transfer: intersect the input interval with the pass set.
fn gate(
    input: Interval,
    pass: Interval,
    value: &mut Interval,
    passes_all: &mut bool,
    passes_none: &mut bool,
) {
    *value = input.intersect(&pass);
    *passes_all = !input.is_empty() && input.subset_of(&pass);
    *passes_none = value.is_empty();
}

/// Whether this algorithm filters its input stream (admission control or
/// a duration condition).
pub fn is_gate(kind: &AlgorithmKind) -> bool {
    matches!(
        kind,
        AlgorithmKind::MinThreshold { .. }
            | AlgorithmKind::MaxThreshold { .. }
            | AlgorithmKind::BandThreshold { .. }
            | AlgorithmKind::OutsideThreshold { .. }
            | AlgorithmKind::Sustained { .. }
    )
}

fn min_rate(rates: &[f64]) -> f64 {
    let r = rates.iter().copied().fold(f64::INFINITY, f64::min);
    if r.is_finite() {
        r
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyzed(text: &str) -> Analysis {
        let p: Program = text.parse().unwrap();
        analyze(&p, &ChannelRates::default())
    }

    #[test]
    fn channel_seeds_match_physical_bounds() {
        assert_eq!(
            channel_interval(SensorChannel::AccX),
            Interval::symmetric(2.0 * G)
        );
        assert_eq!(
            channel_interval(SensorChannel::Mic),
            Interval::new(-1.0, 1.0)
        );
    }

    #[test]
    fn rates_and_lengths_propagate_through_windows() {
        let a = analyzed(
            "MIC -> window(id=1, params={512, 512, 0});
             1 -> rms(id=2);
             2 -> minThreshold(id=3, params={0.5});
             3 -> OUT;",
        );
        let w = a.fact(NodeId(1)).unwrap();
        assert_eq!(w.len, 512);
        assert!((w.rate_hz - 8000.0 / 512.0).abs() < 1e-9);
        assert_eq!(w.period_ticks, 512.0);
        let rms = a.fact(NodeId(2)).unwrap();
        assert_eq!(rms.value, Interval::new(0.0, 1.0));
        assert_eq!(rms.len, 1);
    }

    #[test]
    fn threshold_narrows_and_detects_dead_gates() {
        let a = analyzed(
            "ACC_Y -> movingAvg(id=1, params={3});
             1 -> minThreshold(id=2, params={25});
             2 -> OUT;",
        );
        let thr = a.fact(NodeId(2)).unwrap();
        // ±2 g ≈ ±19.6 m/s² can never reach 25.
        assert!(thr.passes_none);
        assert!(!thr.feasible);
        assert!(thr.value.is_empty());
        assert!(!a.out_fact().unwrap().feasible);
    }

    #[test]
    fn always_passing_threshold_is_flagged() {
        let a = analyzed(
            "ACC_X -> movingAvg(id=1, params={5});
             1 -> minThreshold(id=2, params={-100});
             2 -> OUT;",
        );
        let thr = a.fact(NodeId(2)).unwrap();
        assert!(thr.passes_all);
        assert!(thr.always_emits);
        assert!(a.out_fact().unwrap().always_emits);
    }

    #[test]
    fn outside_threshold_splits_the_interval() {
        let a = analyzed(
            "ACC_X -> movingAvg(id=1, params={5});
             1 -> outsideThreshold(id=2, params={-2, 2});
             2 -> OUT;",
        );
        let t = a.fact(NodeId(2)).unwrap();
        assert!(!t.passes_all && !t.passes_none);
        assert_eq!(t.value, Interval::symmetric(2.0 * G));
    }

    #[test]
    fn sustained_with_unreachable_gap_is_dead() {
        let a = analyzed(
            "MIC -> window(id=1, params={1024, 1024, 0});
             1 -> rms(id=2);
             2 -> minThreshold(id=3, params={0});
             3 -> sustained(id=4, params={3, 64});
             4 -> OUT;",
        );
        // Emissions arrive 1024 ticks apart; a 64-tick gap never chains.
        let s = a.fact(NodeId(4)).unwrap();
        assert!(s.passes_none);
        assert!(!s.feasible);

        let ok = analyzed(
            "MIC -> window(id=1, params={1024, 1024, 0});
             1 -> rms(id=2);
             2 -> minThreshold(id=3, params={0});
             3 -> sustained(id=4, params={3, 1024});
             4 -> OUT;",
        );
        assert!(ok.fact(NodeId(4)).unwrap().feasible);
    }

    #[test]
    fn vector_magnitude_joins_at_the_slowest_branch() {
        let a = analyzed(
            "ACC_X -> movingAvg(id=1, params={10});
             ACC_Y -> movingAvg(id=2, params={10});
             ACC_Z -> movingAvg(id=3, params={10});
             1,2,3 -> vectorMagnitude(id=4);
             4 -> minThreshold(id=5, params={15});
             5 -> OUT;",
        );
        let vm = a.fact(NodeId(4)).unwrap();
        assert_eq!(vm.input_rates, vec![50.0, 50.0, 50.0]);
        assert!((vm.rate_hz - 50.0).abs() < 1e-9);
        // √(3·(2g)²) ≈ 33.97 — the 15 m/s² wake threshold is reachable.
        let bound = (3.0f64 * (2.0 * G).powi(2)).sqrt();
        assert!((vm.value.hi - bound).abs() < 1e-9);
        assert!(a.fact(NodeId(5)).unwrap().feasible);
    }

    #[test]
    fn fft_chain_stays_bounded_and_finite() {
        let a = analyzed(
            "MIC -> window(id=1, params={1024, 1024, 0});
             1 -> highPass(id=2, params={750});
             2 -> fft(id=3);
             3 -> spectralMagnitude(id=4);
             4 -> max(id=5);
             5 -> minThreshold(id=6, params={25});
             6 -> OUT;",
        );
        for id in 1..=6 {
            let f = a.fact(NodeId(id)).unwrap();
            assert!(!f.may_non_finite, "node {id} flagged non-finite");
            assert!(f.value.is_bounded(), "node {id} unbounded");
        }
        // The 25-threshold on a [0, …] magnitude peak is reachable.
        assert!(a.fact(NodeId(6)).unwrap().feasible);
        assert!(!a.fact(NodeId(6)).unwrap().always_emits);
    }

    #[test]
    fn undefined_sources_degrade_to_unknown_not_panic() {
        // Unvalidated program: node 7 was never defined.
        let p = Program::from_stmts(vec![sidewinder_ir::Stmt::Node {
            sources: vec![Source::Node(NodeId(7))],
            id: NodeId(1),
            kind: AlgorithmKind::MovingAvg { window: 2 },
            line: 0,
        }]);
        let a = analyze(&p, &ChannelRates::default());
        let f = a.fact(NodeId(1)).unwrap();
        assert!(f.input_may_non_finite);
        assert!(!f.value.is_bounded());
        assert!(f.feasible);
        assert!(!f.always_emits);
    }

    #[test]
    fn dominant_freq_bounded_by_nyquist() {
        let a = analyzed(
            "MIC -> window(id=1, params={256, 256, 0});
             1 -> fft(id=2);
             2 -> spectralMagnitude(id=3);
             3 -> dominantFreq(id=4);
             4 -> minThreshold(id=5, params={500});
             5 -> OUT;",
        );
        let df = a.fact(NodeId(4)).unwrap();
        assert_eq!(df.value, Interval::new(0.0, 4000.0));
    }
}
