//! `sidewinder-lint`: a static analyzer for Sidewinder IR programs.
//!
//! Wake-up conditions run unattended on a battery-powered sensor hub, so
//! the two classic dataflow bugs are expensive in a very literal sense: a
//! condition that can never fire silently disables an application, and a
//! condition that always fires wakes the main CPU for every sample and
//! erases the hub's energy win. Neither is visible in unit tests that
//! drive the pipeline with synthetic traces chosen to trigger it.
//!
//! This crate finds both — plus numeric hazards, no-op nodes, rate-
//! mismatched joins, and MCU schedulability problems — by *abstract
//! interpretation*: a single forward pass propagates per-node value
//! intervals (seeded from the physical sensor bounds, ±2 g acceleration
//! and ±1 normalized audio), emission rates, vector lengths, and
//! feasibility flags through the dataflow graph ([`absint`]). The lint
//! passes ([`lints`]) then read those facts and report findings through a
//! registry of stable `SW0xx` codes ([`registry`]) with both human and
//! JSON renderings. The schedulability lints reuse the hub's own cost
//! model and MCU catalog, so "does not fit TI MSP430 (needs TI LM4F120)"
//! is derived from the same numbers the simulator charges for energy.
//!
//! The command-line front end lives in the `bench` crate as the `swlint`
//! binary.
//!
//! ```
//! use sidewinder_hub::runtime::ChannelRates;
//! use sidewinder_ir::Program;
//! use sidewinder_lint::{lint, LintCode};
//!
//! let program: Program = "ACC_Y -> movingAvg(id=1, params={10});
//!                         1 -> minThreshold(id=2, params={25});
//!                         2 -> OUT;"
//!     .parse()
//!     .unwrap();
//! let report = lint(&program, &ChannelRates::default());
//! // ±2 g is ±19.61 m/s²; a 25 m/s² threshold can never pass.
//! assert!(report.has(LintCode::DeadWake));
//! ```

pub mod absint;
pub mod facts;
pub mod interval;
pub mod lints;
pub mod registry;
#[cfg(feature = "testing")]
pub mod testing;

pub use absint::{analyze, channel_interval, Analysis, NodeFacts};
pub use facts::{redundancy, Redundancy};
pub use interval::Interval;
pub use lints::lint_program;
pub use registry::{render_json_array, Diagnostic, LintCode, LintReport, Severity};

use sidewinder_hub::runtime::ChannelRates;
use sidewinder_ir::Program;

/// Lints `program` with every registered lint (alias for
/// [`lints::lint_program`]).
pub fn lint(program: &Program, rates: &ChannelRates) -> LintReport {
    lint_program(program, rates)
}
