//! Proptest generators for valid IR programs, shaped like the paper's
//! evaluation apps.
//!
//! These were born in the linter's totality suite and are shared (behind
//! the `testing` feature) with the optimizer's differential-equivalence
//! harness: any crate that needs "arbitrary valid program" should pull
//! from here rather than grow its own slightly-different generator.

use proptest::prelude::*;
use sidewinder_ir::{AlgorithmKind, NodeId, Program, Source, StatFn, WindowShapeParam};
use sidewinder_sensors::SensorChannel;

/// Scalar-to-scalar stages: smoothing filters and threshold gates.
pub fn arb_scalar_chain_kind() -> impl Strategy<Value = AlgorithmKind> {
    prop_oneof![
        (1u32..64).prop_map(|window| AlgorithmKind::MovingAvg { window }),
        (0.01f64..=1.0).prop_map(|alpha| AlgorithmKind::ExpMovingAvg { alpha }),
        (-100.0f64..100.0).prop_map(|threshold| AlgorithmKind::MinThreshold { threshold }),
        (-100.0f64..100.0).prop_map(|threshold| AlgorithmKind::MaxThreshold { threshold }),
        (-100.0f64..100.0, 0.0f64..50.0)
            .prop_map(|(lo, span)| AlgorithmKind::BandThreshold { lo, hi: lo + span }),
        (-100.0f64..100.0, 0.0f64..50.0)
            .prop_map(|(lo, span)| AlgorithmKind::OutsideThreshold { lo, hi: lo + span }),
        (1u32..10, 1u32..4096)
            .prop_map(|(count, max_gap)| AlgorithmKind::Sustained { count, max_gap }),
    ]
}

/// Vector-to-scalar reducers (plus the FFT-family vector transforms).
pub fn arb_vector_reducer() -> impl Strategy<Value = AlgorithmKind> {
    prop_oneof![
        Just(AlgorithmKind::Zcr),
        (2u32..16).prop_map(|sub_windows| AlgorithmKind::ZcrVariance { sub_windows }),
        (0usize..StatFn::ALL.len()).prop_map(|i| AlgorithmKind::Stat(StatFn::ALL[i])),
        Just(AlgorithmKind::DominantRatio),
        Just(AlgorithmKind::DominantFreq),
        Just(AlgorithmKind::Fft),
        (100.0f64..2000.0).prop_map(|cutoff_hz| AlgorithmKind::HighPass { cutoff_hz }),
        (100.0f64..2000.0, 0.0f64..1500.0).prop_map(|(lo, span)| AlgorithmKind::Goertzel {
            lo_hz: lo,
            hi_hz: lo + span,
        }),
        (100.0f64..2000.0, 0.0f64..1500.0).prop_map(|(lo, span)| AlgorithmKind::GoertzelFreq {
            lo_hz: lo,
            hi_hz: lo + span,
        }),
        (100.0f64..2000.0, 0.0f64..1500.0).prop_map(|(lo, span)| AlgorithmKind::GoertzelRatio {
            lo_hz: lo,
            hi_hz: lo + span,
        }),
    ]
}

/// Power-of-two windows in every taper shape.
pub fn arb_window() -> impl Strategy<Value = AlgorithmKind> {
    (3u32..10, 0usize..3).prop_flat_map(|(bits, shape_idx)| {
        let size = 1u32 << bits;
        (1u32..=size).prop_map(move |hop| AlgorithmKind::Window {
            size,
            hop,
            shape: [
                WindowShapeParam::Rectangular,
                WindowShapeParam::Hamming,
                WindowShapeParam::Hann,
            ][shape_idx],
        })
    })
}

/// Valid programs shaped like the evaluation apps: accelerometer
/// branches joined by vectorMagnitude, or a mic window reduced to a
/// scalar, with arbitrary threshold chains.
pub fn arb_program() -> impl Strategy<Value = Program> {
    prop_oneof![accel_program(), audio_program()]
}

/// 1–3 accelerometer branches of scalar stages joined by
/// `vectorMagnitude`, then an arbitrary scalar tail.
pub fn accel_program() -> impl Strategy<Value = Program> {
    (
        1usize..=3,
        prop::collection::vec(arb_scalar_chain_kind(), 1..4),
        prop::collection::vec(arb_scalar_chain_kind(), 0..3),
    )
        .prop_map(|(branches, per_branch, tail)| {
            let mut p = Program::new();
            let mut next_id = 1u32;
            let mut joins = Vec::new();
            for b in 0..branches {
                let mut src = Source::Channel(SensorChannel::ACCEL[b]);
                for kind in &per_branch {
                    let id = NodeId(next_id);
                    next_id += 1;
                    p.push_node(vec![src], id, *kind);
                    src = Source::Node(id);
                }
                joins.push(src);
            }
            let join_id = NodeId(next_id);
            next_id += 1;
            p.push_node(joins, join_id, AlgorithmKind::VectorMagnitude);
            let mut src = Source::Node(join_id);
            for kind in &tail {
                let id = NodeId(next_id);
                next_id += 1;
                p.push_node(vec![src], id, *kind);
                src = Source::Node(id);
            }
            let Source::Node(last) = src else {
                unreachable!()
            };
            p.push_out(last);
            p
        })
}

/// A mic window, one vector reducer, then an arbitrary scalar tail.
pub fn audio_program() -> impl Strategy<Value = Program> {
    (
        arb_window(),
        arb_vector_reducer(),
        prop::collection::vec(arb_scalar_chain_kind(), 0..3),
    )
        .prop_map(|(window, reducer, tail)| {
            let mut p = Program::new();
            p.push_node(vec![Source::Channel(SensorChannel::Mic)], NodeId(1), window);
            p.push_node(vec![Source::Node(NodeId(1))], NodeId(2), reducer);
            let mut src = Source::Node(NodeId(2));
            for (offset, kind) in tail.iter().enumerate() {
                let id = NodeId(3 + offset as u32);
                p.push_node(vec![src], id, *kind);
                src = Source::Node(id);
            }
            let Source::Node(last) = src else {
                unreachable!()
            };
            p.push_out(last);
            p
        })
}
