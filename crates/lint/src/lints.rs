//! The lint passes: each walks the [`crate::absint::Analysis`] (and, for
//! the schedulability lints, the hub cost model) and emits
//! [`Diagnostic`]s through the registry.

use crate::absint::{analyze, Analysis, NodeFacts};
use crate::registry::{Diagnostic, LintCode, LintReport};
use sidewinder_hub::cost::PipelineCost;
use sidewinder_hub::mcu::Mcu;
use sidewinder_hub::runtime::ChannelRates;
use sidewinder_ir::{AlgorithmKind, Program};

/// Runs every registered lint over `program`.
///
/// Total like the analysis underneath: unvalidated or malformed programs
/// yield (possibly conservative) diagnostics, never a panic.
pub fn lint_program(program: &Program, rates: &ChannelRates) -> LintReport {
    let analysis = analyze(program, rates);
    let mut report = LintReport::default();

    dead_wake(&analysis, &mut report);
    wake_storm(&analysis, &mut report);
    redundant_nodes(&analysis, &mut report);
    numeric_hazards(&analysis, &mut report);
    rate_mismatches(&analysis, &mut report);
    schedulability(program, rates, &analysis, &mut report);

    // Stable presentation order: by source line (unlocated findings
    // last), then by code.
    report
        .diagnostics
        .sort_by_key(|d| (d.line.unwrap_or(u32::MAX), d.code));
    report
}

/// SW001: the wake condition can never fire.
fn dead_wake(analysis: &Analysis, report: &mut LintReport) {
    let Some(out) = analysis.out_fact() else {
        return;
    };
    if out.feasible {
        return;
    }
    // The forward pass visits definitions before uses, so the first
    // `passes_none` gate in order is where feasibility was lost.
    let origin = analysis.facts().find(|f| f.passes_none);
    let (node, line, detail) = match origin {
        Some(f) => (Some(f.id), f.line, dead_gate_detail(f)),
        None => (
            analysis.out_source(),
            analysis.out_line(),
            "an upstream branch provably never emits".to_string(),
        ),
    };
    report.diagnostics.push(Diagnostic::new(
        LintCode::DeadWake,
        node,
        line,
        format!("wake condition can never fire: {detail}"),
    ));
}

/// Explains *why* a gate rejects everything, with the concrete interval.
fn dead_gate_detail(f: &NodeFacts) -> String {
    let input = f.input_value;
    match f.kind {
        AlgorithmKind::MinThreshold { threshold } => {
            format!("no value in {input} can reach the >= {threshold} threshold")
        }
        AlgorithmKind::MaxThreshold { threshold } => {
            format!("no value in {input} falls below the <= {threshold} threshold")
        }
        AlgorithmKind::BandThreshold { lo, hi } => {
            format!("no value in {input} lies inside the [{lo}, {hi}] band")
        }
        AlgorithmKind::OutsideThreshold { lo, hi } => {
            format!("every value in {input} lies inside the [{lo}, {hi}] band")
        }
        AlgorithmKind::Sustained { count, max_gap } => format!(
            "`sustained` needs {count} arrivals at most {max_gap} ticks apart, \
             but inputs arrive every {:.0} ticks",
            f.period_ticks
        ),
        _ => format!("`{}` provably never emits", f.kind.ir_name()),
    }
}

/// SW002: the wake condition fires for every upstream arrival.
fn wake_storm(analysis: &Analysis, report: &mut LintReport) {
    let Some(out) = analysis.out_fact() else {
        return;
    };
    if out.feasible && out.always_emits && out.rate_hz > 0.0 {
        report.diagnostics.push(Diagnostic::new(
            LintCode::WakeStorm,
            analysis.out_source(),
            analysis.out_line(),
            format!(
                "wake condition fires for every upstream arrival \
                 (~{:.1} wakes/s); no gate on the path to OUT filters anything",
                out.rate_hz
            ),
        ));
    }
}

/// SW003: nodes that provably do nothing. The predicate lives in
/// [`crate::facts`] so the optimizer's dead-node elimination and this
/// lint can never drift apart.
fn redundant_nodes(analysis: &Analysis, report: &mut LintReport) {
    for f in analysis.facts() {
        let Some(r) = crate::facts::redundancy(f) else {
            continue;
        };
        report.diagnostics.push(Diagnostic::new(
            LintCode::RedundantNode,
            Some(f.id),
            f.line,
            format!("redundant node: {}", r.detail(f)),
        ));
    }
}

/// SW004: FFT-family stages fed by values that are not provably finite.
///
/// The premise is the DSP kernel contract's NaN policy (see
/// `sidewinder_dsp::stats::Summary::of` and `sidewinder_dsp::zcr`):
/// reductions pass NaN *through* rather than panic or filter, so a
/// non-finite value entering a transform silently poisons every bin and
/// everything downstream — which is exactly why it deserves a lint
/// rather than a runtime check.
fn numeric_hazards(analysis: &Analysis, report: &mut LintReport) {
    for f in analysis.facts() {
        let fft_family = matches!(
            f.kind,
            AlgorithmKind::Fft
                | AlgorithmKind::Ifft
                | AlgorithmKind::LowPass { .. }
                | AlgorithmKind::HighPass { .. }
        );
        if fft_family && (f.input_may_non_finite || !f.input_value.is_bounded()) {
            report.diagnostics.push(Diagnostic::new(
                LintCode::NumericHazard,
                Some(f.id),
                f.line,
                format!(
                    "`{}` consumes values that are not provably finite \
                     (input interval {}); NaN/Inf would propagate through \
                     every bin of the transform",
                    f.kind.ir_name(),
                    f.input_value
                ),
            ));
        }
    }
}

/// SW005: joins whose input rates are not integer multiples.
fn rate_mismatches(analysis: &Analysis, report: &mut LintReport) {
    for f in analysis.facts() {
        if !matches!(
            f.kind,
            AlgorithmKind::VectorMagnitude | AlgorithmKind::AllOf
        ) {
            continue;
        }
        let rates: Vec<f64> = f.input_rates.iter().copied().filter(|r| *r > 0.0).collect();
        if rates.len() < 2 {
            continue;
        }
        let fastest = rates.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let slowest = rates.iter().copied().fold(f64::INFINITY, f64::min);
        let ratio = fastest / slowest;
        // Integer rate ratios keep sequence tags phase-aligned (a 4:1
        // window pair joins on every 4th fast emission); anything else
        // drifts and the join fires rarely or never.
        if (ratio - ratio.round()).abs() > 1e-9 {
            let listed: Vec<String> = f.input_rates.iter().map(|r| format!("{r:.3}")).collect();
            report.diagnostics.push(Diagnostic::new(
                LintCode::RateMismatch,
                Some(f.id),
                f.line,
                format!(
                    "`{}` joins inputs emitting at [{}] Hz; the {ratio:.3}:1 \
                     ratio is not an integer, so sequence tags rarely align",
                    f.kind.ir_name(),
                    listed.join(", ")
                ),
            ));
        }
    }
}

/// SW006/SW007: schedulability against the hub MCU catalog.
fn schedulability(
    program: &Program,
    rates: &ChannelRates,
    analysis: &Analysis,
    report: &mut LintReport,
) {
    let cost = PipelineCost::analyze(program, rates);
    if cost.nodes().is_empty() {
        return;
    }
    let attribution = attribution(&cost, analysis);
    match Mcu::cheapest_for(program, rates) {
        Ok(mcu) if mcu == Mcu::CATALOG[0] => {}
        Ok(mcu) => {
            // Fitting only the bigger part is legitimate (the paper's
            // siren condition does exactly this) — advisory.
            let why = Mcu::CATALOG[0]
                .supports_cost(&cost)
                .expect_err("cheapest_for skipped the first catalog entry")
                .to_string();
            report.diagnostics.push(Diagnostic::new(
                LintCode::NeedsBiggerMcu,
                analysis.out_source(),
                analysis.out_line(),
                format!(
                    "pipeline does not fit {} (needs {}): {why}; {attribution}",
                    Mcu::CATALOG[0].name,
                    mcu.name
                ),
            ));
        }
        Err(err) => {
            report.diagnostics.push(Diagnostic::new(
                LintCode::FitsNoMcu,
                analysis.out_source(),
                analysis.out_line(),
                format!("pipeline fits no supported MCU: {err}; {attribution}"),
            ));
        }
    }
}

/// Names the heaviest compute and memory contributors for SW006/SW007.
fn attribution(cost: &PipelineCost, analysis: &Analysis) -> String {
    let name = |id| {
        analysis
            .fact(id)
            .map_or("?", |f: &NodeFacts| f.kind.ir_name())
    };
    let hottest = cost
        .nodes()
        .iter()
        .max_by(|a, b| a.flops_per_second().total_cmp(&b.flops_per_second()));
    let fattest = cost.nodes().iter().max_by_key(|n| n.memory_bytes);
    match (hottest, fattest) {
        (Some(h), Some(m)) => format!(
            "heaviest compute: `{}` (id {}) at {:.0} flop/s; \
             largest buffer: `{}` (id {}) at {} B",
            name(h.id),
            h.id.0,
            h.flops_per_second(),
            name(m.id),
            m.id.0,
            m.memory_bytes
        ),
        _ => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Severity;
    use sidewinder_ir::{NodeId, Source, Stmt};

    fn lint(text: &str) -> LintReport {
        let p: Program = text.parse().unwrap();
        lint_program(&p, &ChannelRates::default())
    }

    #[test]
    fn clean_pipeline_yields_no_diagnostics() {
        let r = lint(
            "ACC_X -> movingAvg(id=1, params={10});
             1 -> minThreshold(id=2, params={15});
             2 -> OUT;",
        );
        assert!(r.is_clean(), "{:?}", r.diagnostics);
    }

    #[test]
    fn dead_threshold_reports_sw001_at_the_gate() {
        let r = lint(
            "ACC_Y -> movingAvg(id=1, params={10});
             1 -> minThreshold(id=2, params={25});
             2 -> OUT;",
        );
        assert!(r.has(LintCode::DeadWake));
        let d = r.at(Severity::Error).next().unwrap();
        assert_eq!(d.node, Some(NodeId(2)));
        assert_eq!(d.line, Some(2));
        assert!(d.message.contains(">= 25"), "{}", d.message);
    }

    #[test]
    fn dead_sustained_cites_the_cadence() {
        let r = lint(
            "MIC -> window(id=1, params={1024, 1024, 0});
             1 -> rms(id=2);
             2 -> minThreshold(id=3, params={0.5});
             3 -> sustained(id=4, params={3, 64});
             4 -> OUT;",
        );
        assert!(r.has(LintCode::DeadWake));
        let d = r.diagnostics.iter().find(|d| d.code == LintCode::DeadWake);
        let d = d.unwrap();
        assert_eq!(d.node, Some(NodeId(4)));
        assert!(d.message.contains("1024 ticks"), "{}", d.message);
    }

    #[test]
    fn always_firing_condition_reports_storm_and_redundancy() {
        let r = lint(
            "ACC_X -> movingAvg(id=1, params={10});
             1 -> minThreshold(id=2, params={-100});
             2 -> OUT;",
        );
        assert!(r.has(LintCode::WakeStorm));
        assert!(r.has(LintCode::RedundantNode));
        let storm = r
            .diagnostics
            .iter()
            .find(|d| d.code == LintCode::WakeStorm)
            .unwrap();
        assert_eq!(storm.line, Some(3), "storm anchors at OUT");
        assert!(storm.message.contains("50.0 wakes/s"), "{}", storm.message);
    }

    #[test]
    fn identity_nodes_report_sw003() {
        let r = lint(
            "ACC_X -> movingAvg(id=1, params={1});
             1 -> minThreshold(id=2, params={15});
             2 -> OUT;",
        );
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.code == LintCode::RedundantNode)
            .unwrap();
        assert_eq!(d.node, Some(NodeId(1)));
        assert!(d.message.contains("identity"), "{}", d.message);

        let r = lint(
            "MIC -> window(id=1, params={256, 256, 0});
             1 -> rms(id=2);
             2 -> minThreshold(id=3, params={0.5});
             3 -> sustained(id=4, params={1, 256});
             4 -> OUT;",
        );
        assert!(r.has(LintCode::RedundantNode));
    }

    #[test]
    fn fft_on_unbounded_intermediate_reports_sw004() {
        // Unvalidated program: the FFT's source is never defined, so its
        // input degrades to the unbounded, possibly-non-finite top.
        let p = Program::from_stmts(vec![
            Stmt::Node {
                sources: vec![Source::Node(NodeId(9))],
                id: NodeId(1),
                kind: AlgorithmKind::Fft,
                line: 0,
            },
            Stmt::Out {
                source: NodeId(1),
                line: 0,
            },
        ]);
        let r = lint_program(&p, &ChannelRates::default());
        assert!(r.has(LintCode::NumericHazard));
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.code == LintCode::NumericHazard)
            .unwrap();
        assert!(d.message.contains("not provably finite"), "{}", d.message);
    }

    #[test]
    fn incommensurate_join_rates_report_sw005() {
        // 512- and 768-sample windows: 15.625 Hz vs ~10.417 Hz, a 1.5:1
        // ratio — tags align only every third slow window.
        let r = lint(
            "MIC -> window(id=1, params={512, 512, 0});
             1 -> rms(id=2);
             2 -> minThreshold(id=3, params={0.5});
             MIC -> window(id=4, params={768, 768, 0});
             4 -> rms(id=5);
             5 -> minThreshold(id=6, params={0.5});
             3,6 -> allOf(id=7);
             7 -> OUT;",
        );
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.code == LintCode::RateMismatch)
            .unwrap();
        assert_eq!(d.node, Some(NodeId(7)));
        assert!(d.message.contains("1.500:1"), "{}", d.message);
    }

    #[test]
    fn integer_rate_ratios_are_allowed() {
        // 512 vs 2048 samples is an exact 4:1 ratio (the music fixture).
        let r = lint(
            "MIC -> window(id=1, params={512, 512, 0});
             1 -> variance(id=2);
             2 -> minThreshold(id=3, params={0.002});
             MIC -> window(id=4, params={2048, 2048, 0});
             4 -> zcrVariance(id=5, params={8});
             5 -> maxThreshold(id=6, params={0.005});
             3,6 -> allOf(id=7);
             7 -> OUT;",
        );
        assert!(!r.has(LintCode::RateMismatch), "{:?}", r.diagnostics);
    }

    #[test]
    fn siren_pipeline_needs_the_bigger_mcu() {
        // The paper's Table 2 footnote: the FFT-based siren condition
        // "includes the more powerful TI LM4F120".
        let r = lint(
            "MIC -> window(id=1, params={1024, 1024, 0});
             1 -> highPass(id=2, params={750});
             2 -> fft(id=3);
             3 -> spectralMagnitude(id=4);
             4 -> max(id=5);
             5 -> minThreshold(id=6, params={25});
             6 -> sustained(id=7, params={6, 1024});
             7 -> OUT;",
        );
        assert!(!r.fails(true), "SW006 is advisory: {:?}", r.diagnostics);
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.code == LintCode::NeedsBiggerMcu)
            .unwrap();
        assert_eq!(d.severity, Severity::Info);
        assert_eq!(d.line, Some(8), "anchored at OUT");
        assert!(
            d.message
                .contains("does not fit TI MSP430 (needs TI LM4F120)"),
            "{}",
            d.message
        );
        assert!(d.message.contains("heaviest compute"), "{}", d.message);
    }

    #[test]
    fn overdriven_pipeline_fits_no_mcu() {
        // A 2048-point FFT filter sliding every 2 samples demands
        // hundreds of megaflops per second — beyond every catalog part.
        let r = lint(
            "MIC -> window(id=1, params={2048, 2, 0});
             1 -> highPass(id=2, params={750});
             2 -> fft(id=3);
             3 -> spectralMagnitude(id=4);
             4 -> max(id=5);
             5 -> minThreshold(id=6, params={25});
             6 -> OUT;",
        );
        assert!(r.fails(false));
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.code == LintCode::FitsNoMcu)
            .unwrap();
        assert_eq!(d.severity, Severity::Error);
        assert!(d.message.contains("fits no supported MCU"), "{}", d.message);
        assert!(d.message.contains("largest buffer"), "{}", d.message);
    }

    #[test]
    fn diagnostics_sort_by_line_then_code() {
        let r = lint(
            "ACC_X -> movingAvg(id=1, params={1});
             1 -> minThreshold(id=2, params={-100});
             2 -> OUT;",
        );
        let lines: Vec<Option<u32>> = r.diagnostics.iter().map(|d| d.line).collect();
        let mut sorted = lines.clone();
        sorted.sort_by_key(|l| l.unwrap_or(u32::MAX));
        assert_eq!(lines, sorted);
    }
}
