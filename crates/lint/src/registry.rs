//! The lint registry: stable codes, severities, diagnostics, and the
//! machine-readable / human renderings of a lint report.
//!
//! Codes are append-only: once shipped, `SW001` always means "dead wake
//! condition" so that CI suppressions and editor integrations stay
//! stable across releases.

use sidewinder_ir::NodeId;

/// How severe a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory; never fails a build.
    Info,
    /// Suspicious; fails builds run with `--deny warnings`.
    Warn,
    /// Definitely broken; always fails the build.
    Error,
}

impl Severity {
    /// Lowercase label used in renderings (`info`, `warning`, `error`).
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warning",
            Severity::Error => "error",
        }
    }
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The stable identity of a lint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintCode {
    /// `SW001` — the wake condition can never fire: some gate on the
    /// path to `OUT` provably rejects every possible value.
    DeadWake,
    /// `SW002` — the wake condition fires for every upstream arrival: a
    /// wake storm that defeats the energy model.
    WakeStorm,
    /// `SW003` — a node provably does nothing (moving average of 1,
    /// always-passing threshold, `sustained` of 1, …).
    RedundantNode,
    /// `SW004` — an FFT-family stage consumes values that are not
    /// provably finite; NaN/Inf can propagate through the transform.
    NumericHazard,
    /// `SW005` — a join aggregator's inputs emit at incommensurate
    /// rates, so sequence tags rarely (or never) align.
    RateMismatch,
    /// `SW006` — the pipeline does not fit the cheapest catalog MCU and
    /// must be scheduled on a more powerful (more power-hungry) part.
    NeedsBiggerMcu,
    /// `SW007` — the pipeline fits no supported MCU at all.
    FitsNoMcu,
    /// `SW008` — the certified arena footprint of the compiled image
    /// exceeds the target core's capacity; `McuCore::load` would reject
    /// it before carving.
    ArenaOverflow,
    /// `SW009` — the certified worst-case cycles per second exceed the
    /// target MCU's real-time budget; samples would arrive faster than
    /// the core can retire them.
    MissedDeadline,
}

impl LintCode {
    /// Every registered lint, in code order.
    pub const ALL: [LintCode; 9] = [
        LintCode::DeadWake,
        LintCode::WakeStorm,
        LintCode::RedundantNode,
        LintCode::NumericHazard,
        LintCode::RateMismatch,
        LintCode::NeedsBiggerMcu,
        LintCode::FitsNoMcu,
        LintCode::ArenaOverflow,
        LintCode::MissedDeadline,
    ];

    /// The stable `SWnnn` code.
    pub fn code(self) -> &'static str {
        match self {
            LintCode::DeadWake => "SW001",
            LintCode::WakeStorm => "SW002",
            LintCode::RedundantNode => "SW003",
            LintCode::NumericHazard => "SW004",
            LintCode::RateMismatch => "SW005",
            LintCode::NeedsBiggerMcu => "SW006",
            LintCode::FitsNoMcu => "SW007",
            LintCode::ArenaOverflow => "SW008",
            LintCode::MissedDeadline => "SW009",
        }
    }

    /// Short kebab-case name.
    pub fn name(self) -> &'static str {
        match self {
            LintCode::DeadWake => "dead-wake-condition",
            LintCode::WakeStorm => "wake-storm",
            LintCode::RedundantNode => "redundant-node",
            LintCode::NumericHazard => "numeric-hazard",
            LintCode::RateMismatch => "rate-mismatched-join",
            LintCode::NeedsBiggerMcu => "needs-bigger-mcu",
            LintCode::FitsNoMcu => "fits-no-mcu",
            LintCode::ArenaOverflow => "arena-overflow",
            LintCode::MissedDeadline => "missed-deadline",
        }
    }

    /// The severity this lint fires at.
    pub fn severity(self) -> Severity {
        match self {
            LintCode::DeadWake
            | LintCode::FitsNoMcu
            | LintCode::ArenaOverflow
            | LintCode::MissedDeadline => Severity::Error,
            LintCode::WakeStorm
            | LintCode::RedundantNode
            | LintCode::NumericHazard
            | LintCode::RateMismatch => Severity::Warn,
            // Needing the LM4F120 is a legitimate, paper-sanctioned
            // configuration (Table 2's siren footnote) — advisory only.
            LintCode::NeedsBiggerMcu => Severity::Info,
        }
    }

    /// One-line description for `swlint --explain`-style listings.
    pub fn description(self) -> &'static str {
        match self {
            LintCode::DeadWake => {
                "a gate on the path to OUT rejects every possible value; the wake condition can never fire"
            }
            LintCode::WakeStorm => {
                "no gate ever filters; the hub wakes the main CPU for every arrival, defeating the energy model"
            }
            LintCode::RedundantNode => {
                "the node provably does nothing and wastes hub cycles and memory"
            }
            LintCode::NumericHazard => {
                "an FFT-family stage consumes values that are not provably finite; NaN/Inf can propagate"
            }
            LintCode::RateMismatch => {
                "join inputs emit at incommensurate rates, so their sequence tags rarely or never align"
            }
            LintCode::NeedsBiggerMcu => {
                "the pipeline exceeds the cheapest MCU's real-time or memory budget and needs a more powerful part"
            }
            LintCode::FitsNoMcu => "the pipeline fits no supported hub microcontroller",
            LintCode::ArenaOverflow => {
                "the certified arena footprint exceeds the target core's capacity; load would reject the image"
            }
            LintCode::MissedDeadline => {
                "the certified worst-case cycle demand exceeds the target MCU's real-time budget"
            }
        }
    }

    /// Looks a lint up by its `SWnnn` code.
    pub fn from_code(code: &str) -> Option<LintCode> {
        LintCode::ALL.into_iter().find(|l| l.code() == code)
    }
}

impl std::fmt::Display for LintCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Which lint fired.
    pub code: LintCode,
    /// Its severity (the lint's registered severity).
    pub severity: Severity,
    /// The node the finding anchors to, when node-specific.
    pub node: Option<NodeId>,
    /// 1-based source line, when the program was parsed from text.
    pub line: Option<u32>,
    /// Human-readable explanation with the concrete intervals/budgets.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic for `code` at the lint's registered severity.
    pub fn new(
        code: LintCode,
        node: Option<NodeId>,
        line: Option<u32>,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.severity(),
            node,
            line,
            message: message.into(),
        }
    }
}

/// All findings for one program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LintReport {
    /// Findings, sorted by line then code.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Whether no lints fired at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Findings at exactly `severity`.
    pub fn at(&self, severity: Severity) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(move |d| d.severity == severity)
    }

    /// Number of findings at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.at(severity).count()
    }

    /// The most severe finding, if any.
    pub fn worst(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// Whether the report contains `code`.
    pub fn has(&self, code: LintCode) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Whether the report should fail the build: any error, or any
    /// warning when `deny_warnings` is set.
    pub fn fails(&self, deny_warnings: bool) -> bool {
        let floor = if deny_warnings {
            Severity::Warn
        } else {
            Severity::Error
        };
        self.worst().is_some_and(|w| w >= floor)
    }

    /// Renders `rustc`-style human diagnostics:
    ///
    /// ```text
    /// warning[SW002]: fixtures/storm.swir:3: wake condition always fires …
    /// ```
    pub fn render_human(&self, source: &str) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(d.severity.label());
            out.push('[');
            out.push_str(d.code.code());
            out.push_str("]: ");
            out.push_str(source);
            if let Some(line) = d.line {
                out.push_str(&format!(":{line}"));
            }
            out.push_str(": ");
            out.push_str(&d.message);
            out.push('\n');
        }
        out
    }

    /// Renders each diagnostic as a standalone JSON object; `swlint`
    /// merges entries from several files into one array.
    pub fn json_entries(&self, source: &str) -> Vec<String> {
        self.diagnostics
            .iter()
            .map(|d| {
                let mut out = String::from("{");
                out.push_str(&format!("\"file\": {}, ", json_string(source)));
                out.push_str(&format!("\"code\": \"{}\", ", d.code.code()));
                out.push_str(&format!("\"name\": \"{}\", ", d.code.name()));
                out.push_str(&format!("\"severity\": \"{}\", ", d.severity.label()));
                match d.line {
                    Some(line) => out.push_str(&format!("\"line\": {line}, ")),
                    None => out.push_str("\"line\": null, "),
                }
                match d.node {
                    Some(node) => out.push_str(&format!("\"node\": {}, ", node.0)),
                    None => out.push_str("\"node\": null, "),
                }
                out.push_str(&format!("\"message\": {}", json_string(&d.message)));
                out.push('}');
                out
            })
            .collect()
    }

    /// Renders the report as a JSON array of diagnostic objects.
    pub fn to_json(&self, source: &str) -> String {
        render_json_array(&self.json_entries(source))
    }
}

/// Joins pre-rendered diagnostic objects into a JSON array.
pub fn render_json_array(entries: &[String]) -> String {
    let mut out = String::from("[");
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  ");
        out.push_str(e);
    }
    out.push_str("\n]");
    out
}

/// Escapes a string for JSON output.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let codes: Vec<&str> = LintCode::ALL.iter().map(|l| l.code()).collect();
        assert_eq!(
            codes,
            vec!["SW001", "SW002", "SW003", "SW004", "SW005", "SW006", "SW007", "SW008", "SW009"]
        );
        for l in LintCode::ALL {
            assert_eq!(LintCode::from_code(l.code()), Some(l));
            assert!(!l.name().is_empty());
            assert!(!l.description().is_empty());
        }
        assert_eq!(LintCode::from_code("SW999"), None);
    }

    #[test]
    fn severity_ordering_drives_fails() {
        assert!(Severity::Error > Severity::Warn);
        assert!(Severity::Warn > Severity::Info);

        let mut report = LintReport::default();
        assert!(!report.fails(true));
        report
            .diagnostics
            .push(Diagnostic::new(LintCode::NeedsBiggerMcu, None, None, "x"));
        assert!(!report.fails(true), "info never fails");
        report
            .diagnostics
            .push(Diagnostic::new(LintCode::WakeStorm, None, Some(3), "y"));
        assert!(!report.fails(false));
        assert!(report.fails(true), "--deny warnings promotes warnings");
        report
            .diagnostics
            .push(Diagnostic::new(LintCode::DeadWake, None, Some(2), "z"));
        assert!(report.fails(false));
        assert_eq!(report.worst(), Some(Severity::Error));
        assert_eq!(report.count(Severity::Warn), 1);
        assert!(report.has(LintCode::DeadWake));
        assert!(!report.has(LintCode::RateMismatch));
    }

    #[test]
    fn human_rendering_cites_file_and_line() {
        let mut report = LintReport::default();
        report.diagnostics.push(Diagnostic::new(
            LintCode::DeadWake,
            Some(NodeId(2)),
            Some(2),
            "threshold can never pass",
        ));
        let text = report.render_human("dead.swir");
        assert_eq!(
            text,
            "error[SW001]: dead.swir:2: threshold can never pass\n"
        );
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let mut report = LintReport::default();
        report.diagnostics.push(Diagnostic::new(
            LintCode::WakeStorm,
            Some(NodeId(1)),
            None,
            "fires \"always\"\n(every sample)",
        ));
        let json = report.to_json("a\\b.swir");
        assert!(json.contains(r#""code": "SW002""#));
        assert!(json.contains(r#""line": null"#));
        assert!(json.contains(r#""node": 1"#));
        assert!(json.contains(r#"\"always\""#));
        assert!(json.contains(r"a\\b.swir"));
        assert!(json.contains(r"\n"));
    }

    #[test]
    fn json_string_escapes_control_characters() {
        assert_eq!(json_string("a\u{1}b"), "\"a\\u0001b\"");
        assert_eq!(json_string("tab\there"), "\"tab\\there\"");
    }
}
