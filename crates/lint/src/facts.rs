//! Shared redundancy facts.
//!
//! SW003 ("redundant node") and the optimizer's dead-node elimination
//! must agree on what counts as a node that provably does nothing: a
//! node the optimizer deletes has to be exactly one the lint would
//! flag, or the two drift and `swopt` output stops being lint-clean.
//! This module is the single predicate both consume.

use crate::absint::NodeFacts;
use sidewinder_ir::AlgorithmKind;

/// Why a node provably does nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Redundancy {
    /// `movingAvg` over ≤ 1 sample re-emits its input.
    IdentityMovingAvg {
        /// The configured window length.
        window: u32,
    },
    /// `expMovingAvg` with alpha ≥ 1 re-emits its input.
    IdentityEma {
        /// The configured smoothing factor.
        alpha: f64,
    },
    /// A 1-sample window re-emits each sample (as a 1-vector).
    OneSampleWindow,
    /// `sustained` of ≤ 1 arrival passes every arrival.
    PassthroughSustained {
        /// The configured arrival count.
        count: u32,
    },
    /// A threshold gate whose pass set covers its whole input interval.
    FilterlessGate,
}

impl Redundancy {
    /// Whether the optimizer may delete the node and forward its input
    /// directly to consumers.
    ///
    /// True only for *value-preserving scalar identities*: on every
    /// arrival the node emits its input value, bit-for-bit, with no
    /// type change. A 1-sample window is redundant but wraps the scalar
    /// in a vector, so deleting it would retype the edge; and the
    /// degenerate `window = 0` / `count = 0` parameterizations are
    /// rejected by validation, so the optimizer (which only runs on
    /// valid programs) never sees them.
    ///
    /// One caveat worth recording: `expMovingAvg` at alpha = 1 computes
    /// `1·x + 0·prev`, which maps a `-0.0` sample to `+0.0` once state
    /// is warm. The bypass forwards `-0.0` unchanged — the *bypass* is
    /// the mathematically faithful identity; the filter's rounding is
    /// the artifact.
    pub fn bypassable(&self) -> bool {
        match *self {
            Redundancy::IdentityMovingAvg { window } => window == 1,
            Redundancy::IdentityEma { .. } => true,
            Redundancy::OneSampleWindow => false,
            Redundancy::PassthroughSustained { count } => count == 1,
            Redundancy::FilterlessGate => true,
        }
    }

    /// The human-readable explanation SW003 prints. `facts` must be the
    /// same analysis record the redundancy was derived from.
    pub fn detail(&self, facts: &NodeFacts) -> String {
        match *self {
            Redundancy::IdentityMovingAvg { window } => {
                format!("`movingAvg` over {window} sample(s) is the identity")
            }
            Redundancy::IdentityEma { alpha } => {
                format!("`expMovingAvg` with alpha = {alpha} is the identity")
            }
            Redundancy::OneSampleWindow => {
                "a 1-sample window re-emits each sample unchanged".to_string()
            }
            Redundancy::PassthroughSustained { count } => {
                format!("`sustained` of {count} arrival(s) passes every arrival")
            }
            Redundancy::FilterlessGate => format!(
                "`{}` passes every value in {}; it filters nothing",
                facts.kind.ir_name(),
                facts.input_value
            ),
        }
    }
}

/// The SW003 predicate: whether `facts` describes a node that provably
/// does nothing, and why.
pub fn redundancy(facts: &NodeFacts) -> Option<Redundancy> {
    match facts.kind {
        AlgorithmKind::MovingAvg { window } if window <= 1 => {
            Some(Redundancy::IdentityMovingAvg { window })
        }
        AlgorithmKind::ExpMovingAvg { alpha } if alpha >= 1.0 => {
            Some(Redundancy::IdentityEma { alpha })
        }
        AlgorithmKind::Window { size: 1, .. } => Some(Redundancy::OneSampleWindow),
        AlgorithmKind::Sustained { count, .. } if count <= 1 => {
            Some(Redundancy::PassthroughSustained { count })
        }
        AlgorithmKind::MinThreshold { .. }
        | AlgorithmKind::MaxThreshold { .. }
        | AlgorithmKind::BandThreshold { .. }
        | AlgorithmKind::OutsideThreshold { .. }
            if facts.passes_all =>
        {
            Some(Redundancy::FilterlessGate)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::absint::analyze;
    use sidewinder_hub::runtime::ChannelRates;
    use sidewinder_ir::{NodeId, Program};

    fn facts_of(text: &str, id: u32) -> NodeFacts {
        let p: Program = text.parse().unwrap();
        analyze(&p, &ChannelRates::default())
            .fact(NodeId(id))
            .unwrap()
            .clone()
    }

    #[test]
    fn identities_are_bypassable_with_pinned_details() {
        let f = facts_of(
            "ACC_X -> movingAvg(id=1, params={1});
             1 -> minThreshold(id=2, params={15});
             2 -> OUT;",
            1,
        );
        let r = redundancy(&f).unwrap();
        assert!(r.bypassable());
        assert_eq!(r.detail(&f), "`movingAvg` over 1 sample(s) is the identity");

        let f = facts_of(
            "ACC_X -> expMovingAvg(id=1, params={1});
             1 -> minThreshold(id=2, params={15});
             2 -> OUT;",
            1,
        );
        let r = redundancy(&f).unwrap();
        assert!(r.bypassable());
        assert_eq!(
            r.detail(&f),
            "`expMovingAvg` with alpha = 1 is the identity"
        );
    }

    #[test]
    fn one_sample_window_is_redundant_but_not_bypassable() {
        let f = facts_of(
            "MIC -> window(id=1, params={1, 1, 0});
             1 -> rms(id=2);
             2 -> minThreshold(id=3, params={0.5});
             3 -> OUT;",
            1,
        );
        let r = redundancy(&f).unwrap();
        assert_eq!(r, Redundancy::OneSampleWindow);
        assert!(!r.bypassable(), "deleting it would retype the edge");
        assert_eq!(
            r.detail(&f),
            "a 1-sample window re-emits each sample unchanged"
        );
    }

    #[test]
    fn filterless_gate_is_flagged_from_interval_facts() {
        let f = facts_of(
            "ACC_X -> movingAvg(id=1, params={10});
             1 -> minThreshold(id=2, params={-100});
             2 -> OUT;",
            2,
        );
        let r = redundancy(&f).unwrap();
        assert_eq!(r, Redundancy::FilterlessGate);
        assert!(r.bypassable());
        assert!(r.detail(&f).contains("filters nothing"));
    }

    #[test]
    fn passthrough_sustained_is_bypassable() {
        let f = facts_of(
            "MIC -> window(id=1, params={256, 256, 0});
             1 -> rms(id=2);
             2 -> minThreshold(id=3, params={0.5});
             3 -> sustained(id=4, params={1, 256});
             4 -> OUT;",
            4,
        );
        let r = redundancy(&f).unwrap();
        assert_eq!(r, Redundancy::PassthroughSustained { count: 1 });
        assert!(r.bypassable());
    }

    #[test]
    fn effective_nodes_are_not_flagged() {
        for (text, id) in [
            (
                "ACC_X -> movingAvg(id=1, params={10});
                 1 -> minThreshold(id=2, params={15});
                 2 -> OUT;",
                1,
            ),
            (
                "ACC_X -> movingAvg(id=1, params={10});
                 1 -> minThreshold(id=2, params={15});
                 2 -> OUT;",
                2,
            ),
        ] {
            assert!(redundancy(&facts_of(text, id)).is_none());
        }
    }
}
