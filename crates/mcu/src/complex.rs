//! A minimal complex-number type for the FFT kernels.
//!
//! The crate deliberately avoids external numeric dependencies (see the
//! crate-level docs), so it carries its own small [`Complex`] type with just
//! the arithmetic the transforms need.

use crate::math;
use core::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// # Example
///
/// ```
/// use sidewinder_mcu::Complex;
///
/// let i = Complex::new(0.0, 1.0);
/// assert_eq!(i * i, Complex::new(-1.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real component.
    pub re: f64,
    /// Imaginary component.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Creates a complex number from real and imaginary parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    pub const fn from_real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Returns `e^(i·theta)`: the unit phasor at angle `theta` radians.
    pub fn from_angle(theta: f64) -> Self {
        Complex {
            re: math::cos(theta),
            im: math::sin(theta),
        }
    }

    /// Returns the complex conjugate.
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Returns the magnitude (absolute value).
    pub fn magnitude(self) -> f64 {
        math::hypot(self.re, self.im)
    }

    /// Returns the squared magnitude, avoiding the square root.
    pub fn magnitude_squared(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Returns the phase angle in radians in `(-π, π]`.
    pub fn phase(self) -> f64 {
        math::atan2(self.im, self.re)
    }

    /// Scales both components by a real factor.
    pub fn scale(self, k: f64) -> Self {
        Complex {
            re: self.re * k,
            im: self.im * k,
        }
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::from_real(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_identities() {
        assert_eq!(Complex::ZERO + Complex::ONE, Complex::ONE);
        assert_eq!(Complex::ONE * Complex::ONE, Complex::ONE);
        assert_eq!(Complex::from(2.5), Complex::new(2.5, 0.0));
    }

    #[test]
    fn multiplication_follows_i_squared_rule() {
        let i = Complex::new(0.0, 1.0);
        assert_eq!(i * i, Complex::new(-1.0, 0.0));
    }

    #[test]
    fn conjugate_negates_imaginary() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.conj(), Complex::new(3.0, -4.0));
    }

    #[test]
    fn magnitude_of_3_4_is_5() {
        assert!((Complex::new(3.0, 4.0).magnitude() - 5.0).abs() < 1e-12);
        assert!((Complex::new(3.0, 4.0).magnitude_squared() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn phasor_lies_on_unit_circle() {
        for k in 0..16 {
            let theta = k as f64 * core::f64::consts::PI / 8.0;
            let z = Complex::from_angle(theta);
            assert!((z.magnitude() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn phase_recovers_angle() {
        let theta = 0.73;
        assert!((Complex::from_angle(theta).phase() - theta).abs() < 1e-12);
    }

    #[test]
    fn subtraction_and_negation_agree() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(0.5, -1.5);
        assert_eq!(a - b, a + (-b));
    }

    #[test]
    fn assign_operators_match_binary_operators() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-0.25, 4.0);
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
        c = a;
        c -= b;
        assert_eq!(c, a - b);
        c = a;
        c *= b;
        assert_eq!(c, a * b);
    }

    #[test]
    fn scale_multiplies_both_components() {
        assert_eq!(Complex::new(1.0, -2.0).scale(3.0), Complex::new(3.0, -6.0));
    }
}
