//! Zero-crossing rate computation.
//!
//! ZCR is the rate at which a signal changes sign. The paper's music-journal
//! and phrase-detection wake-up conditions partition each window into
//! sub-windows, compute the ZCR of each, and threshold the variance of those
//! rates (§3.7.2): speech alternates voiced (low ZCR) and unvoiced
//! (high ZCR) segments and therefore has high ZCR variance, while music and
//! steady noise are more uniform.
//!
//! The `Vec`-returning `sub_window_zcr` lives in the host `sidewinder-dsp`
//! crate; the `no_std` interpreter uses [`sub_window_zcr_into`] with a
//! caller-provided scratch slice — both walk the identical per-sub-window
//! order, so the variance they feed is bit-identical.

use crate::sample::Sample;

/// Chunk width of the vectorized crossing counter. Chunks whose samples
/// are all strictly signed take the branch-free path; chunks containing
/// zeros or NaNs fall back to the per-sample state machine. The count is
/// an integer either way, so the chunking never changes the result.
#[cfg(feature = "simd")]
const ZCR_CHUNK: usize = 64;

/// Counts sign changes in `window`.
///
/// A crossing is counted when consecutive samples have strictly opposite
/// signs; zeros adopt the sign of the previous non-zero sample so that a
/// touch of zero is not double counted.
///
/// # NaN policy
///
/// A NaN sample compares neither above nor below zero, so it behaves
/// exactly like a zero: it keeps the previous sign and can never flip it
/// or count as a crossing (consistent with `lint` SW004 — NaN flows
/// through reductions without panicking and cannot inflate the count).
pub fn zero_crossings<P: Sample>(window: &[P]) -> usize {
    #[cfg(feature = "simd")]
    {
        let mut count = 0;
        let mut prev_sign = 0i8;
        for chunk in window.chunks(ZCR_CHUNK) {
            // "Clean" = every sample strictly signed: no zeros, no NaNs.
            // An AND-reduction of two compares, which vectorizes.
            let mut clean = true;
            for &x in chunk {
                clean &= (x > P::ZERO) | (x < P::ZERO);
            }
            if clean {
                let first_neg = chunk[0] < P::ZERO;
                if prev_sign != 0 && first_neg != (prev_sign < 0) {
                    count += 1;
                }
                // Interior crossings: adjacent pairs with unequal signs.
                // Pure integer work once the compares become masks.
                let mut interior = 0usize;
                for i in 1..chunk.len() {
                    interior += usize::from((chunk[i] < P::ZERO) != (chunk[i - 1] < P::ZERO));
                }
                count += interior;
                prev_sign = if chunk[chunk.len() - 1] < P::ZERO {
                    -1
                } else {
                    1
                };
            } else {
                for &x in chunk {
                    step(x, &mut prev_sign, &mut count);
                }
            }
        }
        count
    }
    #[cfg(not(feature = "simd"))]
    {
        let mut count = 0;
        let mut prev_sign = 0i8;
        for &x in window {
            step(x, &mut prev_sign, &mut count);
        }
        count
    }
}

/// The original per-sample sign state machine; the chunked path defers
/// to it whenever a chunk contains zeros or NaNs. Public so differential
/// tests and fuzz targets can replay it against the chunked counter.
#[inline]
pub fn step<P: Sample>(x: P, prev_sign: &mut i8, count: &mut usize) {
    let sign = if x > P::ZERO {
        1
    } else if x < P::ZERO {
        -1
    } else {
        *prev_sign
    };
    if *prev_sign != 0 && sign != 0 && sign != *prev_sign {
        *count += 1;
    }
    if sign != 0 {
        *prev_sign = sign;
    }
}

/// Zero-crossing rate: crossings per sample, in `[0, 1]`.
///
/// Returns `None` for windows with fewer than two samples.
pub fn zero_crossing_rate<P: Sample>(window: &[P]) -> Option<P> {
    if window.len() < 2 {
        return None;
    }
    Some(P::from_usize(zero_crossings(window)) / P::from_usize(window.len() - 1))
}

/// Splits `window` into `sub_windows` equal parts and writes each part's
/// zero-crossing rate into `scratch[..sub_windows]`, returning that
/// prefix. The allocation-free twin of the host crate's
/// `sub_window_zcr`: identical split, identical per-part rate.
///
/// Returns `None` if `sub_windows` is zero, the window is too short to
/// give every sub-window two samples, or `scratch` is too small.
pub fn sub_window_zcr_into<'a, P: Sample>(
    window: &[P],
    sub_windows: usize,
    scratch: &'a mut [P],
) -> Option<&'a [P]> {
    if sub_windows == 0 || scratch.len() < sub_windows {
        return None;
    }
    let sub_len = window.len() / sub_windows;
    if sub_len < 2 {
        return None;
    }
    for (k, slot) in scratch[..sub_windows].iter_mut().enumerate() {
        *slot = zero_crossing_rate(&window[k * sub_len..(k + 1) * sub_len])
            .expect("sub-window length checked >= 2");
    }
    Some(&scratch[..sub_windows])
}

/// Variance of sub-window zero-crossing rates through a caller-provided
/// scratch slice — the feature the music and phrase wake-up conditions
/// threshold (§3.7.2), as computed on the MCU core.
pub fn zcr_variance_into<P: Sample>(
    window: &[P],
    sub_windows: usize,
    scratch: &mut [P],
) -> Option<P> {
    let rates = sub_window_zcr_into(window, sub_windows, scratch)?;
    crate::stats::variance(rates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::vec::Vec;

    #[test]
    fn constant_signal_never_crosses() {
        assert_eq!(zero_crossings(&[1.0; 10]), 0);
        assert_eq!(zero_crossings(&[-1.0; 10]), 0);
        assert_eq!(zero_crossings(&[0.0; 10]), 0);
    }

    #[test]
    fn alternating_signal_crosses_every_sample() {
        let signal = [1.0, -1.0, 1.0, -1.0, 1.0];
        assert_eq!(zero_crossings(&signal), 4);
        assert_eq!(zero_crossing_rate(&signal), Some(1.0));
    }

    #[test]
    fn zeros_do_not_double_count() {
        // +1 → 0 → −1 is one crossing, not two.
        assert_eq!(zero_crossings(&[1.0, 0.0, -1.0]), 1);
        // +1 → 0 → +1 is no crossing.
        assert_eq!(zero_crossings(&[1.0, 0.0, 1.0]), 0);
    }

    #[test]
    fn leading_zeros_are_ignored() {
        assert_eq!(zero_crossings(&[0.0, 0.0, 1.0, -1.0]), 1);
    }

    #[test]
    fn nan_behaves_like_zero() {
        // NaN keeps the previous sign: one crossing, same as a zero.
        assert_eq!(zero_crossings(&[1.0, f64::NAN, -1.0]), 1);
        assert_eq!(zero_crossings(&[1.0, f64::NAN, 1.0]), 0);
        // Leading NaNs, like leading zeros, never count.
        assert_eq!(zero_crossings(&[f64::NAN, -1.0, 1.0]), 1);
        assert_eq!(zero_crossings(&[f64::NAN; 16]), 0);
    }

    #[test]
    fn chunked_count_matches_serial_state_machine() {
        // Straddle several chunk boundaries with a messy signal that
        // mixes clean runs, zeros, and NaN so both paths execute.
        let signal: Vec<f64> = (0..1000)
            .map(|i| match i % 97 {
                0 => 0.0,
                1 => f64::NAN,
                _ => ((i as f64) * 0.73).sin() - 0.1,
            })
            .collect();
        let mut count = 0;
        let mut prev_sign = 0i8;
        for &x in &signal {
            step(x, &mut prev_sign, &mut count);
        }
        assert_eq!(zero_crossings(&signal), count);
    }

    #[test]
    fn f32_counts_match_f64_on_clean_signals() {
        let wide: Vec<f64> = (0..2048).map(|i| ((i as f64) * 0.37).sin() + 0.2).collect();
        let narrow: Vec<f32> = wide.iter().map(|&x| x as f32).collect();
        assert_eq!(zero_crossings(&wide), zero_crossings(&narrow));
    }

    #[test]
    fn rate_needs_two_samples() {
        assert_eq!(zero_crossing_rate::<f64>(&[]), None);
        assert_eq!(zero_crossing_rate(&[1.0]), None);
    }

    #[test]
    fn sub_window_zcr_into_partitions() {
        // First half alternates (rate 1), second half constant (rate 0).
        let mut signal = [1.0f64; 16];
        for (i, s) in signal.iter_mut().take(8).enumerate() {
            *s = if i % 2 == 0 { 1.0 } else { -1.0 };
        }
        let mut scratch = [0.0f64; 4];
        let rates = sub_window_zcr_into(&signal, 2, &mut scratch).unwrap();
        assert_eq!(rates.len(), 2);
        assert!((rates[0] - 1.0).abs() < 1e-12);
        assert_eq!(rates[1], 0.0);
    }

    #[test]
    fn sub_window_zcr_into_rejects_degenerate_splits() {
        let mut scratch = [0.0f64; 4];
        assert!(sub_window_zcr_into(&[1.0, -1.0], 0, &mut scratch).is_none());
        assert!(sub_window_zcr_into(&[1.0, -1.0, 1.0], 2, &mut scratch).is_none());
        // Scratch shorter than the requested sub-window count.
        assert!(sub_window_zcr_into(&[1.0f64; 64], 8, &mut scratch).is_none());
    }

    #[test]
    fn zcr_variance_into_matches_manual_variance() {
        let signal: Vec<f64> = (0..1600)
            .map(|i| {
                let f = if (i / 200) % 2 == 0 { 150.0 } else { 2500.0 };
                (2.0 * core::f64::consts::PI * f * i as f64 / 8000.0).sin()
            })
            .collect();
        let mut scratch = [0.0f64; 8];
        let v = zcr_variance_into(&signal, 8, &mut scratch).unwrap();
        let rates: Vec<f64> = (0..8)
            .map(|k| zero_crossing_rate(&signal[k * 200..(k + 1) * 200]).unwrap())
            .collect();
        assert_eq!(
            v.to_bits(),
            crate::stats::variance(&rates).unwrap().to_bits()
        );
    }
}
