//! The loadable program image for the MCU core.
//!
//! [`McuImage`] is a plain-old-data description of a validated wake-up
//! condition: one [`NodeSpec`] per IR statement in dense (topological)
//! order, plus the precomputed readiness masks the interpreter pass uses.
//! The host side (`sidewinder-hub`) compiles a validated `ir::Program`
//! into an image; the `no_std` [`McuCore`](crate::exec::McuCore) loads it
//! into fixed-capacity arenas. The image itself allocates nothing and can
//! be built on either side of the boundary.

use crate::window::WindowShape;

/// Maximum number of nodes an image can hold. Kept at or below the hub's
/// 128-bit readiness-mask width so the mask-based interpreter pass always
/// applies; 32 covers every fixture and fleet program with slack on an
/// MCU-sized budget.
pub const MAX_NODES: usize = 32;

/// Maximum input ports per node (aggregators like `vectorMagnitude` and
/// `allOf` use one port per joined branch).
pub const MAX_PORTS: usize = 8;

/// Maximum sensor channels an image addresses. The host's dense channel
/// index must stay below this.
pub const MAX_CHANNELS: usize = 8;

/// A fixed-capacity storage overflow: the program needs more of `what`
/// than the target provides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacityError {
    /// Which fixed resource overflowed.
    pub what: &'static str,
    /// How much the program needs.
    pub needed: usize,
    /// How much the target provides.
    pub capacity: usize,
}

impl core::fmt::Display for CapacityError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "capacity exceeded: {} needs {} but only {} available",
            self.what, self.needed, self.capacity
        )
    }
}

impl core::error::Error for CapacityError {}

/// Errors raised while assembling an [`McuImage`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImageError {
    /// A fixed image table overflowed.
    Capacity(CapacityError),
    /// A node references a producer at or after its own index — the image
    /// must be in define-before-use order.
    ForwardReference {
        /// The referencing node's dense index.
        node: u16,
        /// The referenced producer index.
        src: u16,
    },
    /// A node has no input ports.
    NoSources {
        /// The node's dense index.
        node: u16,
    },
    /// The `OUT` index does not name a node.
    BadOut {
        /// The offending index.
        out: u16,
    },
    /// A channel index at or above [`MAX_CHANNELS`].
    BadChannel {
        /// The referencing node's dense index.
        node: u16,
        /// The offending channel index.
        channel: u8,
    },
}

impl core::fmt::Display for ImageError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ImageError::Capacity(e) => write!(f, "{e}"),
            ImageError::ForwardReference { node, src } => {
                write!(f, "node {node} references source {src} at or after itself")
            }
            ImageError::NoSources { node } => write!(f, "node {node} has no sources"),
            ImageError::BadOut { out } => write!(f, "OUT index {out} names no node"),
            ImageError::BadChannel { node, channel } => {
                write!(
                    f,
                    "node {node} references channel {channel} beyond the image limit"
                )
            }
        }
    }
}

impl core::error::Error for ImageError {}

impl From<CapacityError> for ImageError {
    fn from(e: CapacityError) -> Self {
        ImageError::Capacity(e)
    }
}

/// An input edge in the dense image space: a sensor channel (by the
/// host's dense channel index) or a producing node's image index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortSource {
    /// A sensor channel, by dense index (`< MAX_CHANNELS`).
    Channel(u8),
    /// A node earlier in the image.
    Node(u16),
}

/// The statistics reduced by a `Stat` node — the IR's `StatFn` menu.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatKind {
    /// Arithmetic mean.
    Mean,
    /// Population variance.
    Variance,
    /// Standard deviation.
    StdDev,
    /// Mean absolute value.
    MeanAbs,
    /// Root mean square.
    Rms,
    /// Sum of squares.
    Energy,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Max minus min.
    PeakToPeak,
}

/// One node's algorithm and parameters — the image-side mirror of the
/// IR's `AlgorithmKind`, with window shapes already converted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NodeKind {
    /// Streaming windower: `size`-sample windows every `hop` samples.
    Window {
        /// Window length in samples.
        size: u32,
        /// Stride between emissions.
        hop: u32,
        /// Taper applied to emitted windows.
        shape: WindowShape,
    },
    /// Forward FFT of an incoming window.
    Fft,
    /// Inverse FFT of an incoming spectrum.
    Ifft,
    /// One-sided magnitude reduction of a spectrum.
    SpectralMagnitude,
    /// Simple moving average over `window` scalars.
    MovingAvg {
        /// Window length.
        window: u32,
    },
    /// Exponential moving average with smoothing factor `alpha`.
    ExpMovingAvg {
        /// Smoothing factor in `(0, 1]`.
        alpha: f64,
    },
    /// FFT low-pass filter on incoming windows.
    LowPass {
        /// Cutoff frequency in Hz (inclusive).
        cutoff_hz: f64,
    },
    /// FFT high-pass filter on incoming windows.
    HighPass {
        /// Cutoff frequency in Hz (inclusive).
        cutoff_hz: f64,
    },
    /// Euclidean norm across all ports at equal sequence tags.
    VectorMagnitude,
    /// Zero-crossing rate of a window.
    Zcr,
    /// Variance of per-sub-window zero-crossing rates.
    ZcrVariance {
        /// Number of equal sub-windows.
        sub_windows: u32,
    },
    /// A window statistic.
    Stat(StatKind),
    /// Dominant-to-mean magnitude ratio of a magnitude spectrum (DC
    /// skipped).
    DominantRatio,
    /// Frequency of the dominant non-DC magnitude bin.
    DominantFreq,
    /// Max Goertzel magnitude over in-band probe frequencies.
    Goertzel {
        /// Band lower edge in Hz (inclusive).
        lo_hz: f64,
        /// Band upper edge in Hz (inclusive).
        hi_hz: f64,
    },
    /// Frequency of the strongest in-band Goertzel probe.
    GoertzelFreq {
        /// Band lower edge in Hz (inclusive).
        lo_hz: f64,
        /// Band upper edge in Hz (inclusive).
        hi_hz: f64,
    },
    /// Peak-to-mean ratio over in-band Goertzel probes.
    GoertzelRatio {
        /// Band lower edge in Hz (inclusive).
        lo_hz: f64,
        /// Band upper edge in Hz (inclusive).
        hi_hz: f64,
    },
    /// Pass values `>= threshold`.
    MinThreshold {
        /// Inclusive lower bound.
        threshold: f64,
    },
    /// Pass values `<= threshold`.
    MaxThreshold {
        /// Inclusive upper bound.
        threshold: f64,
    },
    /// Pass values in `[lo, hi]`.
    BandThreshold {
        /// Inclusive lower bound.
        lo: f64,
        /// Inclusive upper bound.
        hi: f64,
    },
    /// Pass values outside `[lo, hi]`.
    OutsideThreshold {
        /// Inclusive lower bound of the rejected band.
        lo: f64,
        /// Inclusive upper bound of the rejected band.
        hi: f64,
    },
    /// Pass after `count` arrivals no more than `max_gap` sequence units
    /// apart.
    Sustained {
        /// Required streak length.
        count: u32,
        /// Maximum sequence gap between consecutive arrivals.
        max_gap: u64,
    },
    /// AND-join: emit when every port has a value at the same sequence.
    AllOf,
    /// OR-join: emit on any arrival.
    AnyOf,
}

/// One node of the image: algorithm, resolved input edges, input rate, and
/// the consumer mask the interpreter pass propagates readiness with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeSpec {
    /// The algorithm and its parameters.
    pub kind: NodeKind,
    /// Input edges, dense; only `sources[..port_count]` is meaningful.
    pub sources: [PortSource; MAX_PORTS],
    /// Number of live entries in `sources`.
    pub port_count: u8,
    /// Sample rate of the data arriving on the node's input path.
    pub rate_hz: f64,
    /// Bitmask over image indices of the nodes consuming this output.
    pub consumer_mask: u128,
}

const EMPTY_SPEC: NodeSpec = NodeSpec {
    kind: NodeKind::AnyOf,
    sources: [PortSource::Channel(0); MAX_PORTS],
    port_count: 0,
    rate_hz: 0.0,
    consumer_mask: 0,
};

/// A complete, loadable program image. Build one with [`ImageBuilder`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McuImage {
    nodes: [NodeSpec; MAX_NODES],
    node_count: u16,
    out_index: u16,
    /// Per channel: nodes whose only input is the channel itself, fed
    /// directly by the pass (bits drain in increasing index order,
    /// matching the host's insertion order).
    direct_feed_masks: [u128; MAX_CHANNELS],
    /// Per channel: remaining channel-fed nodes, seeding the ready set.
    entry_masks: [u128; MAX_CHANNELS],
}

impl McuImage {
    /// The zero-node image a fresh [`McuCore`](crate::exec::McuCore)
    /// holds before its first `load`.
    pub const EMPTY: McuImage = McuImage {
        nodes: [EMPTY_SPEC; MAX_NODES],
        node_count: 0,
        out_index: 0,
        direct_feed_masks: [0; MAX_CHANNELS],
        entry_masks: [0; MAX_CHANNELS],
    };

    /// The nodes in dense order.
    pub fn nodes(&self) -> &[NodeSpec] {
        &self.nodes[..self.node_count as usize]
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_count as usize
    }

    /// Dense index of the node feeding `OUT`.
    pub fn out_index(&self) -> usize {
        self.out_index as usize
    }

    /// The direct-feed mask for a channel index.
    pub fn direct_feed_mask(&self, channel: usize) -> u128 {
        self.direct_feed_masks[channel]
    }

    /// The ready-set seed mask for a channel index.
    pub fn entry_mask(&self, channel: usize) -> u128 {
        self.entry_masks[channel]
    }
}

/// Incremental [`McuImage`] assembly in define-before-use order.
#[derive(Debug, Clone)]
pub struct ImageBuilder {
    nodes: [NodeSpec; MAX_NODES],
    count: u16,
}

impl Default for ImageBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ImageBuilder {
    /// Creates an empty builder.
    pub const fn new() -> Self {
        ImageBuilder {
            nodes: [EMPTY_SPEC; MAX_NODES],
            count: 0,
        }
    }

    /// Appends a node, returning its dense index.
    ///
    /// # Errors
    ///
    /// Returns an [`ImageError`] when the node table or port table
    /// overflows, when `sources` is empty or references a node at or
    /// after this one, or when a channel index is out of range.
    pub fn push_node(
        &mut self,
        kind: NodeKind,
        sources: &[PortSource],
        rate_hz: f64,
    ) -> Result<u16, ImageError> {
        let index = self.count;
        if index as usize >= MAX_NODES {
            return Err(CapacityError {
                what: "image nodes",
                needed: index as usize + 1,
                capacity: MAX_NODES,
            }
            .into());
        }
        if sources.is_empty() {
            return Err(ImageError::NoSources { node: index });
        }
        if sources.len() > MAX_PORTS {
            return Err(CapacityError {
                what: "node ports",
                needed: sources.len(),
                capacity: MAX_PORTS,
            }
            .into());
        }
        let mut spec = EMPTY_SPEC;
        spec.kind = kind;
        spec.rate_hz = rate_hz;
        spec.port_count = sources.len() as u8;
        for (slot, &source) in spec.sources.iter_mut().zip(sources) {
            match source {
                PortSource::Channel(c) if (c as usize) < MAX_CHANNELS => {}
                PortSource::Channel(c) => {
                    return Err(ImageError::BadChannel {
                        node: index,
                        channel: c,
                    });
                }
                PortSource::Node(src) if src < index => {}
                PortSource::Node(src) => {
                    return Err(ImageError::ForwardReference { node: index, src });
                }
            }
            *slot = source;
        }
        self.nodes[index as usize] = spec;
        self.count += 1;
        Ok(index)
    }

    /// Finalizes the image: computes consumer masks and the per-channel
    /// direct-feed / entry masks, exactly as the host runtime's loader
    /// does.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::BadOut`] if `out_index` names no node.
    pub fn finish(mut self, out_index: u16) -> Result<McuImage, ImageError> {
        let count = self.count as usize;
        if out_index as usize >= count {
            return Err(ImageError::BadOut { out: out_index });
        }
        // Consumer masks: every node source edge marks the consumer bit
        // on its producer.
        for i in 0..count {
            let node = self.nodes[i];
            for &source in &node.sources[..node.port_count as usize] {
                if let PortSource::Node(src) = source {
                    self.nodes[src as usize].consumer_mask |= 1u128 << i;
                }
            }
        }
        let mut direct_feed_masks = [0u128; MAX_CHANNELS];
        let mut entry_masks = [0u128; MAX_CHANNELS];
        for (i, node) in self.nodes[..count].iter().enumerate() {
            let ports = &node.sources[..node.port_count as usize];
            if let [PortSource::Channel(c)] = *ports {
                direct_feed_masks[c as usize] |= 1u128 << i;
            } else {
                for &source in ports {
                    if let PortSource::Channel(c) = source {
                        entry_masks[c as usize] |= 1u128 << i;
                    }
                }
            }
        }
        Ok(McuImage {
            nodes: self.nodes,
            node_count: self.count,
            out_index,
            direct_feed_masks,
            entry_masks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::string::ToString;

    #[test]
    fn builds_a_simple_chain() {
        let mut b = ImageBuilder::new();
        let avg = b
            .push_node(
                NodeKind::MovingAvg { window: 4 },
                &[PortSource::Channel(0)],
                50.0,
            )
            .unwrap();
        let thr = b
            .push_node(
                NodeKind::MinThreshold { threshold: 5.0 },
                &[PortSource::Node(avg)],
                50.0,
            )
            .unwrap();
        let image = b.finish(thr).unwrap();
        assert_eq!(image.node_count(), 2);
        assert_eq!(image.out_index(), 1);
        assert_eq!(image.nodes()[0].consumer_mask, 0b10);
        assert_eq!(image.direct_feed_mask(0), 0b01);
        assert_eq!(image.entry_mask(0), 0);
    }

    #[test]
    fn join_nodes_land_in_entry_masks() {
        // Two channel ports on one node: not a direct feed.
        let mut b = ImageBuilder::new();
        let join = b
            .push_node(
                NodeKind::VectorMagnitude,
                &[PortSource::Channel(0), PortSource::Channel(1)],
                50.0,
            )
            .unwrap();
        let image = b.finish(join).unwrap();
        assert_eq!(image.direct_feed_mask(0), 0);
        assert_eq!(image.entry_mask(0), 0b1);
        assert_eq!(image.entry_mask(1), 0b1);
    }

    #[test]
    fn rejects_forward_references_and_bad_out() {
        let mut b = ImageBuilder::new();
        let err = b
            .push_node(NodeKind::AnyOf, &[PortSource::Node(3)], 50.0)
            .unwrap_err();
        assert!(matches!(
            err,
            ImageError::ForwardReference { node: 0, src: 3 }
        ));
        assert!(err.to_string().contains("source 3"));
        let b = ImageBuilder::new();
        assert!(matches!(b.finish(0), Err(ImageError::BadOut { out: 0 })));
    }

    #[test]
    fn rejects_empty_sources_and_bad_channels() {
        let mut b = ImageBuilder::new();
        assert!(matches!(
            b.push_node(NodeKind::AnyOf, &[], 50.0),
            Err(ImageError::NoSources { node: 0 })
        ));
        assert!(matches!(
            b.push_node(NodeKind::AnyOf, &[PortSource::Channel(200)], 50.0),
            Err(ImageError::BadChannel {
                node: 0,
                channel: 200
            })
        ));
    }

    #[test]
    fn node_table_overflow_is_a_capacity_error() {
        let mut b = ImageBuilder::new();
        for _ in 0..MAX_NODES {
            b.push_node(NodeKind::AnyOf, &[PortSource::Channel(0)], 50.0)
                .unwrap();
        }
        let err = b
            .push_node(NodeKind::AnyOf, &[PortSource::Channel(0)], 50.0)
            .unwrap_err();
        match err {
            ImageError::Capacity(c) => {
                assert_eq!(c.what, "image nodes");
                assert_eq!(c.capacity, MAX_NODES);
                assert!(c.to_string().contains("image nodes"));
            }
            other => panic!("expected capacity error, got {other:?}"),
        }
    }
}
