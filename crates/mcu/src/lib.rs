//! The `no_std` sensor-hub core.
//!
//! This crate is the part of the Sidewinder reproduction that actually
//! runs on the hub MCU (the paper's TI MSP430 / LM4F120 class parts):
//! the flat `Sample`-generic DSP kernels and the steady-state
//! wake-condition interpreter, behind fixed-capacity storage. Nothing
//! in here allocates after `McuCore::load`; with the `std` feature off
//! the crate does not even link `std` or `alloc`, which is what the CI
//! `embedded-build` job proves by cross-compiling it for
//! `thumbv7em-none-eabi`.
//!
//! The host crates (`sidewinder-dsp`, `sidewinder-hub`) depend on this
//! crate **with the `std` feature on** and re-export everything, so the
//! host API is unchanged and — because the `std` build routes all float
//! math through the platform libm exactly like the pre-split kernels —
//! the frozen wake digests stay bit-identical.
//!
//! What stays host-side (see DESIGN.md §6j): IR parsing, validation,
//! lints, the optimizer, observability sinks, plan caches, and the
//! `Vec`-returning conveniences. The boundary artifact is
//! [`image::McuImage`]: the host compiles a validated program into that
//! plain-data image and the MCU core executes it.
#![no_std]
#![deny(unsafe_code)]

#[cfg(any(test, feature = "std"))]
extern crate std;

pub mod complex;
pub mod exec;
pub mod fft;
pub mod filter;
pub mod footprint;
pub mod goertzel;
pub mod image;
pub mod math;
pub mod sample;
pub mod spectral;
pub mod stats;
pub mod window;
pub mod zcr;

pub use complex::Complex;
pub use exec::{
    ExecProbe, HighWaterProbe, McuCore, McuExecError, NoProbe, WakeEvent, DEFAULT_ARENA,
};
pub use footprint::{check_fit, image_footprint, ArenaKind, ArenaUse, ImageFootprint};
pub use image::{
    CapacityError, ImageBuilder, ImageError, McuImage, NodeKind, NodeSpec, PortSource, StatKind,
};
pub use sample::Sample;
pub use window::WindowShape;
