//! The precision-generic sample type behind the flat DSP kernels.
//!
//! The paper's hub MCUs (TI MSP430, TI LM4F120 — §3, Table 2) have no
//! f64 FPU: the LM4F120's Cortex-M4F does single-precision in hardware
//! and the MSP430 does everything in software. An `f32` pipeline is
//! therefore *more* faithful to the hardware than the host-side `f64`
//! default — and it doubles the effective lane width of the unrolled
//! kernels. [`Sample`] abstracts the two precisions so every flat kernel
//! (`stats`, `zcr`, `window`, `goertzel`, the `filter` moving average)
//! and the hub's vector-valued dataflow can be instantiated at either.
//!
//! The trait is sealed: exactly `f32` and `f64` implement it. Scalar
//! edges (thresholds, wake values, sensor ingestion) stay `f64`
//! everywhere; the precision parameter governs *vector* payloads, which
//! is where the paper's memory table says the hub stores f32 anyway
//! ("one f32 ring buffer" per window — see `hub::cost`).
//!
//! The `Vec`-backed conveniences (`widen_into`, `extend_from_f64`,
//! `with_wide_out`) and the taper-coefficient cache are host-side and
//! gated on the `std` feature; the `no_std` interpreter uses the
//! slice-based `widen_slice_into` / `narrow_from_f64` instead.

use crate::math;
use core::fmt::Debug;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

#[cfg(any(test, feature = "std"))]
use core::cell::RefCell;
#[cfg(any(test, feature = "std"))]
use std::rc::Rc;
#[cfg(any(test, feature = "std"))]
use std::thread::LocalKey;
#[cfg(any(test, feature = "std"))]
use std::vec::Vec;

mod sealed {
    pub trait Sealed {}
    impl Sealed for f32 {}
    impl Sealed for f64 {}
}

/// Thread-local single-entry cache of window-taper coefficients:
/// `(shape tag, window length, coefficients)`. See
/// `WindowShape::apply` in the host `sidewinder-dsp` crate.
#[cfg(any(test, feature = "std"))]
#[doc(hidden)]
pub type TaperCacheEntry<P> = (u8, usize, Rc<[P]>);

/// A sample precision the DSP kernels can run at: `f64` (the host
/// default, bit-compatible with the original kernels) or `f32` (the
/// hardware-faithful hub mode).
///
/// Conversions to and from `f64` are explicit so generic code cannot
/// widen or narrow by accident; for `P = f64` every conversion is the
/// identity and compiles away.
pub trait Sample:
    sealed::Sealed
    + Copy
    + PartialOrd
    + PartialEq
    + Debug
    + Default
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Positive infinity (lane seed for running minima).
    const INFINITY: Self;
    /// Negative infinity (lane seed for running maxima).
    const NEG_INFINITY: Self;
    /// Independent accumulator lanes the unrolled kernels run: 4 for
    /// `f64`, 8 for `f32` (twice as many f32 values fit one vector
    /// register, so halving the precision doubles the lane width).
    const LANES: usize;
    /// Short name used to label benchmark rows (`"f32"`, `"f64"`).
    const NAME: &'static str;

    /// Converts from `f64`, rounding to nearest for `f32`.
    fn from_f64(x: f64) -> Self;
    /// Widens to `f64` (exact for both precisions).
    fn to_f64(self) -> f64;
    /// Converts a count; identical to `n as f64` / `n as f32`.
    fn from_usize(n: usize) -> Self {
        Self::from_f64(n as f64)
    }
    /// IEEE-754 minimum ignoring NaN, as [`f64::min`].
    fn min(self, other: Self) -> Self;
    /// IEEE-754 maximum ignoring NaN, as [`f64::max`].
    fn max(self, other: Self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Whether the value is NaN.
    fn is_nan(self) -> bool;

    /// Presents `src` as an `f64` slice without allocating: a no-op
    /// borrow for `f64`, a widening copy into `scratch[..src.len()]`
    /// for `f32` (panics if `scratch` is shorter than `src` — the
    /// fixed-capacity interpreter sizes it at load time).
    fn widen_slice_into<'a>(src: &'a [Self], scratch: &'a mut [f64]) -> &'a [f64];

    /// Presents `src` as an `f64` slice: a no-op borrow for `f64`, a
    /// widening copy through `scratch` for `f32`. The hub uses this to
    /// feed precision-generic windows into the f64-only FFT kernels.
    #[cfg(any(test, feature = "std"))]
    fn widen_into<'a>(src: &'a [Self], scratch: &'a mut Vec<f64>) -> &'a [f64];

    /// Appends narrowed values to `dst` (a plain `extend` for `f64`).
    #[cfg(any(test, feature = "std"))]
    fn extend_from_f64(dst: &mut Vec<Self>, src: impl Iterator<Item = f64>);

    /// Runs `f` with an `f64` output buffer and leaves the result in
    /// `dst`: for `f64` the closure writes `dst` directly; for `f32` it
    /// writes `scratch`, which is then narrowed into `dst`. Steady-state
    /// calls reuse both buffers' capacity and perform no allocation.
    #[cfg(any(test, feature = "std"))]
    fn with_wide_out(dst: &mut Vec<Self>, scratch: &mut Vec<f64>, f: impl FnOnce(&mut Vec<f64>));

    /// The per-precision window-taper coefficient cache; implementation
    /// detail of `WindowShape::apply` in the host crate.
    #[cfg(any(test, feature = "std"))]
    #[doc(hidden)]
    fn taper_cache() -> &'static LocalKey<RefCell<TaperCacheEntry<Self>>>;
}

#[cfg(any(test, feature = "std"))]
std::thread_local! {
    static TAPER_F64: RefCell<TaperCacheEntry<f64>> =
        RefCell::new((u8::MAX, 0, Rc::from(Vec::new())));
    static TAPER_F32: RefCell<TaperCacheEntry<f32>> =
        RefCell::new((u8::MAX, 0, Rc::from(Vec::new())));
}

impl Sample for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const INFINITY: Self = f64::INFINITY;
    const NEG_INFINITY: Self = f64::NEG_INFINITY;
    const LANES: usize = 4;
    const NAME: &'static str = "f64";

    #[inline(always)]
    fn from_f64(x: f64) -> Self {
        x
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline(always)]
    fn min(self, other: Self) -> Self {
        f64::min(self, other)
    }
    #[inline(always)]
    fn max(self, other: Self) -> Self {
        f64::max(self, other)
    }
    #[inline(always)]
    fn abs(self) -> Self {
        math::abs(self)
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        math::sqrt(self)
    }
    #[inline(always)]
    fn is_nan(self) -> bool {
        f64::is_nan(self)
    }

    #[inline(always)]
    fn widen_slice_into<'a>(src: &'a [Self], _scratch: &'a mut [f64]) -> &'a [f64] {
        src
    }

    #[cfg(any(test, feature = "std"))]
    #[inline(always)]
    fn widen_into<'a>(src: &'a [Self], _scratch: &'a mut Vec<f64>) -> &'a [f64] {
        src
    }

    #[cfg(any(test, feature = "std"))]
    #[inline]
    fn extend_from_f64(dst: &mut Vec<Self>, src: impl Iterator<Item = f64>) {
        dst.extend(src);
    }

    #[cfg(any(test, feature = "std"))]
    #[inline]
    fn with_wide_out(dst: &mut Vec<Self>, _scratch: &mut Vec<f64>, f: impl FnOnce(&mut Vec<f64>)) {
        f(dst);
    }

    #[cfg(any(test, feature = "std"))]
    fn taper_cache() -> &'static LocalKey<RefCell<TaperCacheEntry<Self>>> {
        &TAPER_F64
    }
}

impl Sample for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const INFINITY: Self = f32::INFINITY;
    const NEG_INFINITY: Self = f32::NEG_INFINITY;
    const LANES: usize = 8;
    const NAME: &'static str = "f32";

    #[inline(always)]
    fn from_f64(x: f64) -> Self {
        x as f32
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        f64::from(self)
    }
    #[inline(always)]
    fn min(self, other: Self) -> Self {
        f32::min(self, other)
    }
    #[inline(always)]
    fn max(self, other: Self) -> Self {
        f32::max(self, other)
    }
    #[inline(always)]
    fn abs(self) -> Self {
        math::abs_f32(self)
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        math::sqrt_f32(self)
    }
    #[inline(always)]
    fn is_nan(self) -> bool {
        f32::is_nan(self)
    }

    #[inline]
    fn widen_slice_into<'a>(src: &'a [Self], scratch: &'a mut [f64]) -> &'a [f64] {
        let out = &mut scratch[..src.len()];
        for (w, &x) in out.iter_mut().zip(src) {
            *w = f64::from(x);
        }
        out
    }

    #[cfg(any(test, feature = "std"))]
    #[inline]
    fn widen_into<'a>(src: &'a [Self], scratch: &'a mut Vec<f64>) -> &'a [f64] {
        scratch.clear();
        scratch.extend(src.iter().map(|&x| f64::from(x)));
        scratch
    }

    #[cfg(any(test, feature = "std"))]
    #[inline]
    fn extend_from_f64(dst: &mut Vec<Self>, src: impl Iterator<Item = f64>) {
        dst.extend(src.map(|x| x as f32));
    }

    #[cfg(any(test, feature = "std"))]
    #[inline]
    fn with_wide_out(dst: &mut Vec<Self>, scratch: &mut Vec<f64>, f: impl FnOnce(&mut Vec<f64>)) {
        f(scratch);
        dst.clear();
        dst.extend(scratch.iter().map(|&x| x as f32));
    }

    #[cfg(any(test, feature = "std"))]
    fn taper_cache() -> &'static LocalKey<RefCell<TaperCacheEntry<Self>>> {
        &TAPER_F32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::vec;
    use std::vec::Vec;

    #[test]
    fn f64_round_trips_exactly() {
        for x in [0.0, -1.5, f64::MAX, f64::MIN_POSITIVE] {
            assert_eq!(<f64 as Sample>::from_f64(x).to_f64(), x);
        }
    }

    #[test]
    fn f32_narrowing_rounds_to_nearest() {
        let x = 0.1f64;
        assert_eq!(<f32 as Sample>::from_f64(x), 0.1f32);
        assert_ne!(<f32 as Sample>::from_f64(x).to_f64(), x);
    }

    #[cfg(any(test, feature = "std"))]
    #[test]
    fn widen_into_is_a_borrow_for_f64() {
        let src = [1.0f64, 2.0];
        let mut scratch = Vec::new();
        let wide = <f64 as Sample>::widen_into(&src, &mut scratch);
        assert_eq!(wide.as_ptr(), src.as_ptr(), "f64 widening must not copy");
        assert!(scratch.is_empty());
    }

    #[cfg(any(test, feature = "std"))]
    #[test]
    fn widen_into_copies_for_f32() {
        let src = [1.5f32, -2.0];
        let mut scratch = Vec::new();
        let wide = <f32 as Sample>::widen_into(&src, &mut scratch);
        assert_eq!(wide, &[1.5f64, -2.0]);
    }

    #[test]
    fn widen_slice_into_borrows_for_f64_and_copies_for_f32() {
        let src = [1.0f64, 2.0];
        let mut scratch = [0.0f64; 4];
        let wide = <f64 as Sample>::widen_slice_into(&src, &mut scratch);
        assert_eq!(wide.as_ptr(), src.as_ptr());

        let src32 = [1.5f32, -2.0];
        let mut scratch = [0.0f64; 4];
        let wide = <f32 as Sample>::widen_slice_into(&src32, &mut scratch);
        assert_eq!(wide, &[1.5f64, -2.0]);
    }

    #[cfg(any(test, feature = "std"))]
    #[test]
    fn with_wide_out_narrows_for_f32() {
        let mut dst: Vec<f32> = vec![9.0; 4];
        let mut scratch = Vec::new();
        <f32 as Sample>::with_wide_out(&mut dst, &mut scratch, |w| {
            w.clear();
            w.extend([0.5, 1.5]);
        });
        assert_eq!(dst, vec![0.5f32, 1.5]);
    }

    #[test]
    fn lane_widths_double_when_precision_halves() {
        assert_eq!(<f64 as Sample>::LANES * 2, <f32 as Sample>::LANES);
    }
}
