//! Radix-2 FFT kernels shared by the host plans and the MCU core.
//!
//! The host crate (`sidewinder-dsp`) owns the `Vec`-backed [`FftPlan`]
//! and its per-thread cache; this module owns the allocation-free pieces
//! they are built from: the bit-reversal swap enumeration, the twiddle
//! recurrence, and the butterfly driver that consumes precomputed tables.
//! Both the host plan and the MCU interpreter call the same
//! [`run_butterflies`] body, so planned transforms are bit-identical no
//! matter which side runs them.
//!
//! [`FftPlan`]: https://docs.rs/sidewinder-dsp

use crate::complex::Complex;
use crate::math;

/// Error returned when a transform is given a length that is not a power of
/// two (or is zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NonPowerOfTwoError {
    /// The offending length.
    pub len: usize,
}

impl core::fmt::Display for NonPowerOfTwoError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "transform length {} is not a non-zero power of two",
            self.len
        )
    }
}

impl core::error::Error for NonPowerOfTwoError {}

/// Returns `true` if `n` is a non-zero power of two.
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// Validates a transform length.
///
/// # Errors
///
/// Returns [`NonPowerOfTwoError`] if `n` is zero or not a power of two.
pub fn check_len(n: usize) -> Result<(), NonPowerOfTwoError> {
    if is_power_of_two(n) {
        Ok(())
    } else {
        Err(NonPowerOfTwoError { len: n })
    }
}

/// Converts an FFT bin index to the center frequency in Hz.
///
/// `n` is the transform length and `sample_rate_hz` the sampling rate of the
/// windowed signal.
pub fn bin_to_frequency(bin: usize, n: usize, sample_rate_hz: f64) -> f64 {
    bin as f64 * sample_rate_hz / n as f64
}

/// Converts a frequency in Hz to the nearest FFT bin index.
pub fn frequency_to_bin(freq_hz: f64, n: usize, sample_rate_hz: f64) -> usize {
    (math::round(freq_hz * n as f64 / sample_rate_hz).max(0.0)) as usize
}

/// Number of bit-reversal swaps a `len`-point plan performs — the exact
/// count [`for_each_swap`] will emit, for sizing caller-owned storage.
pub fn swap_count(len: usize) -> usize {
    let mut count = 0;
    for_each_swap(len, |_, _| count += 1);
    count
}

/// Number of twiddle factors a `len`-point plan tabulates (`len - 1`,
/// stages concatenated), for sizing caller-owned storage.
pub fn twiddle_count(len: usize) -> usize {
    len.saturating_sub(1)
}

/// Enumerates the bit-reversal swaps `(i, j)` with `j > i` for a
/// `len`-point transform, in the exact order the host plan stores them.
///
/// `len` must be a power of two (degenerate lengths `0` and `1` emit
/// nothing); validate with [`check_len`] first.
pub fn for_each_swap(len: usize, mut f: impl FnMut(u32, u32)) {
    if len > 1 {
        let bits = len.trailing_zeros();
        for i in 0..len {
            let j = i.reverse_bits() >> (usize::BITS - bits);
            if j > i {
                f(i as u32, j as u32);
            }
        }
    }
}

/// Emits the per-stage twiddle factors for an `n`-point transform with the
/// exact recurrence the direct kernel uses (`w` starts at 1 and is
/// repeatedly multiplied by `wlen`), preserving bit-for-bit output
/// equality. `sign` is `-1.0` for the forward transform, `1.0` for the
/// inverse. Emits [`twiddle_count`]`(n)` values: `n/2` entries for stage 2,
/// then stage 4, and so on.
pub fn for_each_twiddle(n: usize, sign: f64, mut f: impl FnMut(Complex)) {
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * core::f64::consts::PI / len as f64;
        let wlen = Complex::from_angle(ang);
        let mut w = Complex::ONE;
        for _ in 0..len / 2 {
            f(w);
            w *= wlen;
        }
        len <<= 1;
    }
}

/// In-place butterfly passes over precomputed tables: the shared body of
/// the host plan's `process_forward` / `process_inverse`.
///
/// `swaps` must be the [`for_each_swap`] list for `data.len()` and
/// `twiddles` the matching [`for_each_twiddle`] table (forward or
/// inverse). The transform is unscaled either way; inverse callers apply
/// `1/N` via [`scale_inverse`].
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two or `twiddles` is not the
/// matching table length.
pub fn run_butterflies(data: &mut [Complex], swaps: &[(u32, u32)], twiddles: &[Complex]) {
    let n = data.len();
    assert!(is_power_of_two(n), "data length must be a power of two");
    if n <= 1 {
        return;
    }
    assert_eq!(twiddles.len(), twiddle_count(n), "twiddle table length");
    for &(i, j) in swaps {
        data.swap(i as usize, j as usize);
    }
    let mut offset = 0;
    let mut len = 2;
    while len <= n {
        let half = len / 2;
        let stage = &twiddles[offset..offset + half];
        for chunk in data.chunks_exact_mut(len) {
            // Splitting the chunk lets the butterflies run without
            // per-element bounds checks; the arithmetic (and therefore
            // the output bits) is unchanged.
            let (lo, hi) = chunk.split_at_mut(half);
            for ((a, b), &w) in lo.iter_mut().zip(hi.iter_mut()).zip(stage) {
                let u = *a;
                let v = *b * w;
                *a = u + v;
                *b = u - v;
            }
        }
        offset += half;
        len <<= 1;
    }
}

/// Applies the inverse transform's `1/N` normalization, exactly as the
/// host plan's `process_inverse` does after its butterfly pass.
pub fn scale_inverse(data: &mut [Complex]) {
    let scale = 1.0 / data.len() as f64;
    for z in data.iter_mut() {
        *z = z.scale(scale);
    }
}

/// The iterative radix-2 Cooley–Tukey reference kernel.
///
/// This is the portable reference implementation the paper-faithful hub
/// originally interpreted against; the hot paths use the host `FftPlan`
/// (or the MCU core's tables), which are bit-identical. It stays public so
/// the equivalence suites and the differential fuzz targets can compare
/// against it. `data.len()` must be a power of two (check with
/// [`is_power_of_two`]); other lengths produce unspecified results.
pub fn transform(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            data.swap(i, j);
        }
    }

    // Butterfly passes.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * core::f64::consts::PI / len as f64;
        let wlen = Complex::from_angle(ang);
        for chunk in data.chunks_mut(len) {
            let mut w = Complex::ONE;
            let half = len / 2;
            for k in 0..half {
                let u = chunk[k];
                let v = chunk[k + half] * w;
                chunk[k] = u + v;
                chunk[k + half] = u - v;
                w *= wlen;
            }
        }
        len <<= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::vec;
    use std::vec::Vec;

    fn assert_close(a: f64, b: f64, eps: f64) {
        assert!((a - b).abs() < eps, "{a} !~ {b}");
    }

    fn table(n: usize, sign: f64) -> Vec<Complex> {
        let mut t = Vec::new();
        for_each_twiddle(n, sign, |w| t.push(w));
        t
    }

    fn swap_list(n: usize) -> Vec<(u32, u32)> {
        let mut s = Vec::new();
        for_each_swap(n, |i, j| s.push((i, j)));
        s
    }

    #[test]
    fn check_len_rejects_non_power_of_two() {
        assert_eq!(check_len(12), Err(NonPowerOfTwoError { len: 12 }));
        assert!(check_len(0).is_err());
        assert!(check_len(1).is_ok());
        assert!(check_len(1024).is_ok());
        let msg = std::format!("{}", NonPowerOfTwoError { len: 12 });
        assert!(msg.contains("12"));
    }

    #[test]
    fn counts_match_enumerations() {
        for n in [1usize, 2, 4, 8, 64, 256] {
            assert_eq!(swap_list(n).len(), swap_count(n));
            assert_eq!(table(n, -1.0).len(), twiddle_count(n));
        }
        assert_eq!(twiddle_count(0), 0);
    }

    #[test]
    fn butterflies_match_reference_transform() {
        for n in [1usize, 2, 8, 64, 256] {
            let original: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
                .collect();
            let mut direct = original.clone();
            transform(&mut direct, false);
            let mut planned = original.clone();
            run_butterflies(&mut planned, &swap_list(n), &table(n, -1.0));
            for (a, b) in direct.iter().zip(&planned) {
                assert_eq!(a.re.to_bits(), b.re.to_bits());
                assert_eq!(a.im.to_bits(), b.im.to_bits());
            }
        }
    }

    #[test]
    fn inverse_butterflies_round_trip() {
        let n = 64;
        let original: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.7).cos(), (i as f64 * 0.3).sin()))
            .collect();
        let swaps = swap_list(n);
        let mut data = original.clone();
        run_butterflies(&mut data, &swaps, &table(n, -1.0));
        run_butterflies(&mut data, &swaps, &table(n, 1.0));
        scale_inverse(&mut data);
        for (a, b) in data.iter().zip(&original) {
            assert_close(a.re, b.re, 1e-10);
            assert_close(a.im, b.im, 1e-10);
        }
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let mut data = vec![Complex::ZERO; 16];
        data[0] = Complex::ONE;
        transform(&mut data, false);
        for z in &data {
            assert_close(z.re, 1.0, 1e-12);
            assert_close(z.im, 0.0, 1e-12);
        }
    }

    #[test]
    fn bin_frequency_conversions_are_inverse() {
        let n = 256;
        let rate = 8000.0;
        for bin in [0, 1, 17, 100, 128] {
            let f = bin_to_frequency(bin, n, rate);
            assert_eq!(frequency_to_bin(f, n, rate), bin);
        }
    }
}
