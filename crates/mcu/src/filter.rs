//! Streaming filters and band-shape selection for the MCU core.
//!
//! The paper's hub offers "noise-reduction algorithms such as a moving
//! average and exponential moving average" and "FFT-based low-pass /
//! high-pass filtering" (§3.6 "Data Filtering"). This module holds the
//! pieces the on-device interpreter needs: the bounded-state
//! [`ExponentialMovingAverage`], the [`BandShape`] frequency response, and
//! the per-bin keep-mask fill used to build FFT band filters into
//! fixed-capacity storage. The `VecDeque`-backed `MovingAverage` and the
//! `Vec`-returning FFT filter entry points stay in the host
//! `sidewinder-dsp` crate, which re-exports these types.

use crate::fft;

/// A streaming exponential moving average `y[n] = α·x[n] + (1-α)·y[n-1]`.
///
/// Unlike a simple moving average, it produces output from the first
/// sample.
#[derive(Debug, Clone)]
pub struct ExponentialMovingAverage {
    alpha: f64,
    state: Option<f64>,
}

/// Error returned when the EMA smoothing factor is outside `(0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvalidAlphaError {
    /// The rejected smoothing factor.
    pub alpha: f64,
}

impl core::fmt::Display for InvalidAlphaError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "EMA smoothing factor {} outside (0, 1]", self.alpha)
    }
}

impl core::error::Error for InvalidAlphaError {}

impl ExponentialMovingAverage {
    /// Creates an EMA with smoothing factor `alpha` in `(0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidAlphaError`] if `alpha` is not in `(0, 1]` or is NaN.
    pub fn new(alpha: f64) -> Result<Self, InvalidAlphaError> {
        if !(alpha > 0.0 && alpha <= 1.0) {
            return Err(InvalidAlphaError { alpha });
        }
        Ok(ExponentialMovingAverage { alpha, state: None })
    }

    /// The configured smoothing factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Pushes a sample and returns the smoothed value.
    pub fn push(&mut self, sample: f64) -> f64 {
        let next = match self.state {
            None => sample,
            Some(prev) => self.alpha * sample + (1.0 - self.alpha) * prev,
        };
        self.state = Some(next);
        next
    }

    /// Clears the filter state.
    pub fn reset(&mut self) {
        self.state = None;
    }

    /// Filters a whole slice.
    #[cfg(any(test, feature = "std"))]
    pub fn filter(&mut self, signal: &[f64]) -> std::vec::Vec<f64> {
        signal.iter().map(|&x| self.push(x)).collect()
    }
}

/// The frequency response selecting which bins an FFT band filter keeps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BandShape {
    /// Keep `freq <= cutoff_hz`.
    LowPass {
        /// Cutoff frequency in Hz (inclusive).
        cutoff_hz: f64,
    },
    /// Keep `freq >= cutoff_hz`.
    HighPass {
        /// Cutoff frequency in Hz (inclusive).
        cutoff_hz: f64,
    },
    /// Keep `low_hz <= freq <= high_hz`.
    BandPass {
        /// Lower edge in Hz (inclusive).
        low_hz: f64,
        /// Upper edge in Hz (inclusive).
        high_hz: f64,
    },
}

impl BandShape {
    /// Whether a bin centered at `freq` Hz is kept by this response.
    pub fn keeps(self, freq: f64) -> bool {
        match self {
            BandShape::LowPass { cutoff_hz } => freq <= cutoff_hz,
            BandShape::HighPass { cutoff_hz } => freq >= cutoff_hz,
            BandShape::BandPass { low_hz, high_hz } => freq >= low_hz && freq <= high_hz,
        }
    }
}

/// Writes the per-bin keep mask for an `out.len()`-point transform into
/// `out` — the allocation-free twin of the host crate's mask builder, with
/// the identical negative-frequency mirroring.
pub fn fill_keep_mask(out: &mut [bool], sample_rate_hz: f64, shape: BandShape) {
    let n = out.len();
    for (bin, slot) in out.iter_mut().enumerate() {
        // Bins above N/2 represent negative frequencies; map to their
        // positive-frequency magnitude for the keep decision.
        let logical_bin = if bin <= n / 2 { bin } else { n - bin };
        *slot = shape.keeps(fft::bin_to_frequency(logical_bin, n, sample_rate_hz));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::string::ToString;
    use std::vec;

    #[test]
    fn ema_validates_alpha() {
        assert!(ExponentialMovingAverage::new(0.0).is_err());
        assert!(ExponentialMovingAverage::new(1.5).is_err());
        assert!(ExponentialMovingAverage::new(f64::NAN).is_err());
        assert!(ExponentialMovingAverage::new(1.0).is_ok());
        let err = ExponentialMovingAverage::new(-0.1).unwrap_err();
        assert!(err.to_string().contains("-0.1"));
    }

    #[test]
    fn ema_first_output_is_first_sample() {
        let mut ema = ExponentialMovingAverage::new(0.3).unwrap();
        assert_eq!(ema.push(5.0), 5.0);
        assert_eq!(ema.alpha(), 0.3);
    }

    #[test]
    fn ema_alpha_one_tracks_input_exactly() {
        let mut ema = ExponentialMovingAverage::new(1.0).unwrap();
        for x in [1.0, -2.0, 3.0] {
            assert_eq!(ema.push(x), x);
        }
    }

    #[test]
    fn ema_converges_to_constant_input() {
        let mut ema = ExponentialMovingAverage::new(0.2).unwrap();
        ema.push(0.0);
        let mut last = 0.0;
        for _ in 0..200 {
            last = ema.push(10.0);
        }
        assert!((last - 10.0).abs() < 1e-6);
    }

    #[test]
    fn ema_reset_clears_state() {
        let mut ema = ExponentialMovingAverage::new(0.5).unwrap();
        ema.push(100.0);
        ema.reset();
        assert_eq!(ema.push(2.0), 2.0);
    }

    #[test]
    fn band_shapes_keep_inclusive_edges() {
        let lp = BandShape::LowPass { cutoff_hz: 100.0 };
        assert!(lp.keeps(100.0) && lp.keeps(0.0) && !lp.keeps(100.1));
        let hp = BandShape::HighPass { cutoff_hz: 100.0 };
        assert!(hp.keeps(100.0) && hp.keeps(5000.0) && !hp.keeps(99.9));
        let bp = BandShape::BandPass {
            low_hz: 50.0,
            high_hz: 100.0,
        };
        assert!(bp.keeps(50.0) && bp.keeps(100.0) && bp.keeps(75.0));
        assert!(!bp.keeps(49.9) && !bp.keeps(100.1));
    }

    #[test]
    fn keep_mask_mirrors_negative_frequencies() {
        let mut mask = vec![false; 16];
        fill_keep_mask(&mut mask, 1600.0, BandShape::LowPass { cutoff_hz: 200.0 });
        // 100 Hz per bin: bins 0..=2 kept, plus mirrors 14 and 15.
        for (bin, &kept) in mask.iter().enumerate() {
            let logical = if bin <= 8 { bin } else { 16 - bin };
            assert_eq!(kept, logical <= 2, "bin {bin}");
        }
    }
}
