//! Window taper shapes.
//!
//! The paper's hub provides "Partitioning sensor data into rectangular or
//! Hamming windows" (§3.6). [`WindowShape`] carries the taper and lives in
//! the MCU crate because the interpreter applies it on-device; the
//! streaming `Windower` partitioner (ring buffer, `Vec` emission) stays in
//! the host `sidewinder-dsp` crate, which re-exports this type.

use crate::math;
use crate::sample::Sample;

/// The taper applied to each window of samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WindowShape {
    /// No taper; every coefficient is 1. The paper's "rectangular" window.
    #[default]
    Rectangular,
    /// The Hamming taper `0.54 - 0.46·cos(2πi/(N-1))`.
    Hamming,
    /// The Hann taper `0.5·(1 - cos(2πi/(N-1)))`. Not named by the paper but
    /// a conventional member of the same family; included for completeness.
    Hann,
}

impl WindowShape {
    /// Returns the window coefficient at index `i` of an `n`-point window.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    pub fn coefficient(self, i: usize, n: usize) -> f64 {
        assert!(i < n, "window index {i} out of range for length {n}");
        if n == 1 {
            return 1.0;
        }
        let x = 2.0 * core::f64::consts::PI * i as f64 / (n - 1) as f64;
        match self {
            WindowShape::Rectangular => 1.0,
            WindowShape::Hamming => 0.54 - 0.46 * math::cos(x),
            WindowShape::Hann => 0.5 * (1.0 - math::cos(x)),
        }
    }

    /// Writes the coefficients of an `out.len()`-point window into `out` —
    /// the allocation-free form of [`WindowShape::coefficients`], computed
    /// in `f64` and narrowed per element exactly as the `Vec` builders do.
    pub fn fill_coefficients<P: Sample>(self, out: &mut [P]) {
        let n = out.len();
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = P::from_f64(self.coefficient(i, n));
        }
    }

    /// Generates the full coefficient vector for an `n`-point window.
    #[cfg(any(test, feature = "std"))]
    pub fn coefficients(self, n: usize) -> std::vec::Vec<f64> {
        (0..n).map(|i| self.coefficient(i, n)).collect()
    }

    /// [`WindowShape::coefficients`] at any sample precision: coefficients
    /// are computed in `f64` and narrowed per element, so the `f64`
    /// instantiation is bit-identical to `coefficients`.
    #[cfg(any(test, feature = "std"))]
    pub fn coefficients_in<P: Sample>(self, n: usize) -> std::vec::Vec<P> {
        (0..n)
            .map(|i| P::from_f64(self.coefficient(i, n)))
            .collect()
    }

    /// Applies the taper to a signal, returning the windowed copy.
    ///
    /// Each output element is exactly `x * coefficient(i, len)`. The
    /// unrolled (`simd`) build tabulates the coefficients once per
    /// `(shape, length)` in a thread-local cache and applies them with an
    /// element-wise multiply — the same products in the same order, so
    /// results are bit-identical to the per-element recomputation the
    /// scalar fallback performs (cosine tabulation is where the previous
    /// kernel spent ~95% of its time).
    #[cfg(any(test, feature = "std"))]
    pub fn apply<P: Sample>(self, signal: &[P]) -> std::vec::Vec<P> {
        #[cfg(feature = "simd")]
        {
            let coeffs = self.cached_coefficients::<P>(signal.len());
            signal
                .iter()
                .zip(coeffs.iter())
                .map(|(&x, &c)| x * c)
                .collect()
        }
        #[cfg(not(feature = "simd"))]
        {
            signal
                .iter()
                .enumerate()
                .map(|(i, &x)| x * P::from_f64(self.coefficient(i, signal.len())))
                .collect()
        }
    }

    /// The thread-local single-entry coefficient cache behind
    /// [`WindowShape::apply`]. Steady-state pipelines re-window the same
    /// geometry forever, so one entry per precision is enough; switching
    /// shape or length just retabulates.
    #[cfg(all(any(test, feature = "std"), feature = "simd"))]
    fn cached_coefficients<P: Sample>(self, n: usize) -> std::rc::Rc<[P]> {
        P::taper_cache().with(|cell| {
            let mut entry = cell.borrow_mut();
            if entry.0 != self as u8 || entry.1 != n {
                *entry = (
                    self as u8,
                    n,
                    std::rc::Rc::from(self.coefficients_in::<P>(n)),
                );
            }
            std::rc::Rc::clone(&entry.2)
        })
    }
}

impl core::fmt::Display for WindowShape {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let name = match self {
            WindowShape::Rectangular => "rectangular",
            WindowShape::Hamming => "hamming",
            WindowShape::Hann => "hann",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::vec;
    use std::vec::Vec;

    #[test]
    fn rectangular_coefficients_are_unity() {
        assert_eq!(WindowShape::Rectangular.coefficients(8), vec![1.0; 8]);
    }

    #[test]
    fn hamming_endpoints_and_peak() {
        let c = WindowShape::Hamming.coefficients(11);
        assert!((c[0] - 0.08).abs() < 1e-12);
        assert!((c[10] - 0.08).abs() < 1e-12);
        assert!((c[5] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hann_endpoints_are_zero() {
        let c = WindowShape::Hann.coefficients(9);
        assert!(c[0].abs() < 1e-12);
        assert!(c[8].abs() < 1e-12);
        assert!((c[4] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn windows_are_symmetric() {
        for shape in [WindowShape::Hamming, WindowShape::Hann] {
            let c = shape.coefficients(16);
            for i in 0..8 {
                assert!(
                    (c[i] - c[15 - i]).abs() < 1e-12,
                    "{shape} asymmetric at {i}"
                );
            }
        }
    }

    #[test]
    fn length_one_window_is_identity() {
        for shape in [
            WindowShape::Rectangular,
            WindowShape::Hamming,
            WindowShape::Hann,
        ] {
            assert_eq!(shape.coefficients(1), vec![1.0]);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn coefficient_out_of_range_panics() {
        WindowShape::Hamming.coefficient(5, 5);
    }

    #[test]
    fn fill_coefficients_matches_vec_builders() {
        for shape in [
            WindowShape::Rectangular,
            WindowShape::Hamming,
            WindowShape::Hann,
        ] {
            let mut filled = [0.0f64; 13];
            shape.fill_coefficients(&mut filled);
            let built = shape.coefficients(13);
            for (a, b) in filled.iter().zip(&built) {
                assert_eq!(a.to_bits(), b.to_bits(), "{shape}");
            }
            let mut narrow = [0.0f32; 13];
            shape.fill_coefficients(&mut narrow);
            let built32: Vec<f32> = shape.coefficients_in(13);
            assert_eq!(&narrow[..], &built32[..], "{shape}");
        }
    }

    #[test]
    fn apply_scales_signal() {
        let signal = vec![2.0; 4];
        let windowed = WindowShape::Hamming.apply(&signal);
        let coeffs = WindowShape::Hamming.coefficients(4);
        for i in 0..4 {
            assert!((windowed[i] - 2.0 * coeffs[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn apply_is_bit_identical_to_per_element_products() {
        // The cache must never change the products — pin bit equality
        // across shape and length switches (which thrash the one-entry
        // cache on purpose).
        let signal: Vec<f64> = (0..37).map(|i| ((i as f64) * 1.3).sin() * 2.0).collect();
        for shape in [
            WindowShape::Hamming,
            WindowShape::Hann,
            WindowShape::Hamming,
        ] {
            for n in [37, 16, 37] {
                let windowed = shape.apply(&signal[..n]);
                for (i, (&got, &x)) in windowed.iter().zip(&signal).enumerate() {
                    assert_eq!(got.to_bits(), (x * shape.coefficient(i, n)).to_bits());
                }
            }
        }
    }

    #[test]
    fn f32_apply_narrows_coefficients_per_element() {
        let signal = vec![1.0f32; 8];
        let windowed = WindowShape::Hann.apply(&signal);
        for (i, &got) in windowed.iter().enumerate() {
            assert_eq!(got, WindowShape::Hann.coefficient(i, 8) as f32);
        }
    }
}
