//! Goertzel single-bin DFT evaluation.
//!
//! The paper's §3.8 discusses the trade-off between algorithm complexity and
//! MCU power: the MSP430 could not run a full FFT in real time. The Goertzel
//! algorithm evaluates a *single* DFT bin in O(N) multiplies with O(1)
//! state, making narrow-band detection feasible on the smaller MCU. It is
//! included as one of this reproduction's ablation subjects ("what if the
//! siren detector probed a few bins with Goertzel instead of a full FFT?").
//!
//! Probing K frequencies over one window is K *independent* second-order
//! recurrences reading the same samples, so the batch entry points
//! ([`strongest_of`], [`strongest_magnitude`]) interleave up to four
//! probes per pass in the unrolled (`simd`, default) build: each probe's
//! operation order is exactly the single-probe loop's, which keeps every
//! power bit-identical to one-at-a-time evaluation while the independent
//! recurrences hide each other's FMA latency. The scalar fallback runs
//! probes one at a time; results match bit-for-bit by construction.

use crate::math;
use crate::sample::Sample;

/// Probes interleaved per pass over the window in the unrolled build.
#[cfg(feature = "simd")]
const PROBE_LANES: usize = 4;

/// Computes the squared magnitude of the DFT of `window` at `freq_hz`.
///
/// Uses the standard Goertzel recurrence with coefficient
/// `2·cos(2πf/fs)`. The result matches `|FFT(window)[k]|²` when `freq_hz`
/// falls exactly on bin `k`. The recurrence runs at the window's
/// precision `P` (the coefficient is computed in `f64` and narrowed
/// once); the closing power is widened to `f64`, which is exact.
///
/// Returns `None` if the window is empty, the sample rate is not positive,
/// or `freq_hz` is negative or above Nyquist.
pub fn goertzel_power<P: Sample>(window: &[P], freq_hz: f64, sample_rate_hz: f64) -> Option<f64> {
    if window.is_empty() || sample_rate_hz <= 0.0 {
        return None;
    }
    if !(0.0..=sample_rate_hz / 2.0).contains(&freq_hz) {
        return None;
    }
    let coeff = probe_coeff::<P>(freq_hz, sample_rate_hz);
    let mut s_prev = P::ZERO;
    let mut s_prev2 = P::ZERO;
    for &x in window {
        let s = x + coeff * s_prev - s_prev2;
        s_prev2 = s_prev;
        s_prev = s;
    }
    Some(close_power(s_prev, s_prev2, coeff))
}

/// `2·cos(2πf/fs)`, computed in `f64` and narrowed once so the grouped
/// and single-probe paths see identical coefficient bits.
fn probe_coeff<P: Sample>(freq_hz: f64, sample_rate_hz: f64) -> P {
    let omega = 2.0 * core::f64::consts::PI * freq_hz / sample_rate_hz;
    P::from_f64(2.0 * math::cos(omega))
}

/// The closing step shared by every path: `s1² + s2² − c·s1·s2`, widened.
fn close_power<P: Sample>(s_prev: P, s_prev2: P, coeff: P) -> f64 {
    (s_prev * s_prev + s_prev2 * s_prev2 - coeff * s_prev * s_prev2).to_f64()
}

/// Magnitude (not squared) of the DFT at `freq_hz`; see [`goertzel_power`].
pub fn goertzel_magnitude<P: Sample>(
    window: &[P],
    freq_hz: f64,
    sample_rate_hz: f64,
) -> Option<f64> {
    goertzel_power(window, freq_hz, sample_rate_hz).map(|p| math::sqrt(p.max(0.0)))
}

/// Runs every valid probe frequency over `window` and hands each
/// `(probe index, power)` to `each`, in probe order.
///
/// Invalid probes (outside `[0, rate/2]`) are skipped, exactly as
/// [`goertzel_power`] rejects them; per-probe arithmetic is unchanged by
/// the grouping.
pub fn for_each_power<P: Sample>(
    window: &[P],
    freqs: &[f64],
    sample_rate_hz: f64,
    mut each: impl FnMut(usize, f64),
) {
    if window.is_empty() || sample_rate_hz <= 0.0 {
        return;
    }
    #[cfg(feature = "simd")]
    {
        // (probe index, coefficient) staging area; `usize::MAX` marks a
        // padding lane whose (finite) result is discarded.
        let mut group = [(usize::MAX, P::ZERO); PROBE_LANES];
        let mut filled = 0;
        for (i, &f) in freqs.iter().enumerate() {
            if !(0.0..=sample_rate_hz / 2.0).contains(&f) {
                continue;
            }
            group[filled] = (i, probe_coeff::<P>(f, sample_rate_hz));
            filled += 1;
            if filled == PROBE_LANES {
                run_group(window, &group, &mut each);
                group = [(usize::MAX, P::ZERO); PROBE_LANES];
                filled = 0;
            }
        }
        if filled > 0 {
            run_group(window, &group, &mut each);
        }
    }
    #[cfg(not(feature = "simd"))]
    {
        for (i, &f) in freqs.iter().enumerate() {
            if let Some(p) = goertzel_power(window, f, sample_rate_hz) {
                each(i, p);
            }
        }
    }
}

/// One interleaved pass: four independent recurrences share each window
/// read. Padding lanes (index `usize::MAX`, coefficient 0) do harmless
/// finite work and are dropped before the callback.
#[cfg(feature = "simd")]
fn run_group<P: Sample>(
    window: &[P],
    group: &[(usize, P); PROBE_LANES],
    each: &mut impl FnMut(usize, f64),
) {
    let coeff = [group[0].1, group[1].1, group[2].1, group[3].1];
    let mut s_prev = [P::ZERO; PROBE_LANES];
    let mut s_prev2 = [P::ZERO; PROBE_LANES];
    for &x in window {
        for j in 0..PROBE_LANES {
            let s = x + coeff[j] * s_prev[j] - s_prev2[j];
            s_prev2[j] = s_prev[j];
            s_prev[j] = s;
        }
    }
    for j in 0..PROBE_LANES {
        if group[j].0 != usize::MAX {
            each(group[j].0, close_power(s_prev[j], s_prev2[j], coeff[j]));
        }
    }
}

/// Probes a set of frequencies and returns the one with the highest power
/// together with that power. `None` if `freqs` is empty or all probes fail.
///
/// Ties keep the *last* maximal probe and NaN powers compare equal —
/// the `Iterator::max_by` semantics of the original reduction.
pub fn strongest_of<P: Sample>(
    window: &[P],
    freqs: &[f64],
    sample_rate_hz: f64,
) -> Option<(f64, f64)> {
    let mut best: Option<(f64, f64)> = None;
    for_each_power(window, freqs, sample_rate_hz, |i, p| {
        best = match best {
            Some((bf, bp))
                if bp.partial_cmp(&p).unwrap_or(core::cmp::Ordering::Equal)
                    == core::cmp::Ordering::Greater =>
            {
                Some((bf, bp))
            }
            _ => Some((freqs[i], p)),
        };
    });
    best
}

/// Probes a set of frequencies and returns the largest *magnitude*
/// (`power.max(0).sqrt()`), or `None` when no probe is valid.
///
/// Ties keep the *first* maximal probe (strictly-greater update) — the
/// reduction the hub's `goertzel` node performs. `sqrt` is monotonic, so
/// this selects the same probe as a first-max over powers.
pub fn strongest_magnitude<P: Sample>(
    window: &[P],
    freqs: &[f64],
    sample_rate_hz: f64,
) -> Option<f64> {
    let mut best: Option<f64> = None;
    for_each_power(window, freqs, sample_rate_hz, |_, p| {
        let m = math::sqrt(p.max(0.0));
        best = Some(match best {
            Some(b) if m > b => m,
            Some(b) => b,
            None => m,
        });
    });
    best
}

/// Probes a set of frequencies and returns `(max, sum)` over their
/// magnitudes (`power.max(0).sqrt()` each) — the reduction behind the
/// strength-reduced dominant-ratio node, which needs both the peak and
/// the in-band total. The max uses a strictly-greater (first-max)
/// update and the sum accumulates in probe order, so the grouped
/// (`simd`) build is bit-identical to one-at-a-time probing. `None`
/// when no probe is valid.
pub fn magnitude_max_and_sum<P: Sample>(
    window: &[P],
    freqs: &[f64],
    sample_rate_hz: f64,
) -> Option<(f64, f64)> {
    let mut best: Option<(f64, f64)> = None;
    for_each_power(window, freqs, sample_rate_hz, |_, p| {
        let m = math::sqrt(p.max(0.0));
        best = Some(match best {
            Some((mx, sum)) => (if m > mx { m } else { mx }, sum + m),
            None => (m, m),
        });
    });
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::vec;
    use std::vec::Vec;

    fn tone(freq: f64, rate: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * core::f64::consts::PI * freq * i as f64 / rate).sin())
            .collect()
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(goertzel_power::<f64>(&[], 100.0, 8000.0).is_none());
        assert!(goertzel_power(&[1.0], 100.0, 0.0).is_none());
        assert!(goertzel_power(&[1.0], -5.0, 8000.0).is_none());
        assert!(goertzel_power(&[1.0], 4001.0, 8000.0).is_none());
    }

    #[test]
    fn detects_present_tone_rejects_absent() {
        let n = 512;
        let rate = 8000.0;
        let signal = tone(1000.0, rate, n);
        let present = goertzel_power(&signal, 1000.0, rate).unwrap();
        let absent = goertzel_power(&signal, 2500.0, rate).unwrap();
        assert!(present > 100.0 * absent.max(1e-12));
    }

    #[test]
    fn magnitude_is_sqrt_of_power() {
        let signal = tone(500.0, 8000.0, 256);
        let p = goertzel_power(&signal, 500.0, 8000.0).unwrap();
        let m = goertzel_magnitude(&signal, 500.0, 8000.0).unwrap();
        assert!((m * m - p).abs() < 1e-6);
    }

    #[test]
    fn strongest_of_picks_the_tone() {
        let signal = tone(1200.0, 8000.0, 512);
        let (f, _) = strongest_of(&signal, &[800.0, 1200.0, 1600.0], 8000.0).unwrap();
        assert_eq!(f, 1200.0);
        assert!(strongest_of(&signal, &[], 8000.0).is_none());
    }

    #[test]
    fn grouped_powers_are_bit_identical_to_single_probes() {
        // 5 valid probes + 1 invalid: exercises a full group of 4, a
        // padded remainder group, and the skip path.
        let rate = 8000.0;
        let w = tone(1200.0, rate, 333);
        let freqs = [850.0, 985.0, 9000.0, 1120.0, 1255.0, 1390.0];
        let mut grouped = Vec::new();
        for_each_power(&w, &freqs, rate, |i, p| grouped.push((i, p)));
        let singles: Vec<(usize, f64)> = freqs
            .iter()
            .enumerate()
            .filter_map(|(i, &f)| goertzel_power(&w, f, rate).map(|p| (i, p)))
            .collect();
        assert_eq!(grouped.len(), singles.len());
        for (g, s) in grouped.iter().zip(&singles) {
            assert_eq!(g.0, s.0);
            assert_eq!(g.1.to_bits(), s.1.to_bits(), "probe {}", g.0);
        }
    }

    #[test]
    fn strongest_magnitude_takes_the_first_of_tied_probes() {
        // A constant-zero window powers every probe at exactly 0; the
        // strictly-greater fold keeps the first.
        let w = vec![0.0f64; 64];
        let m = strongest_magnitude(&w, &[100.0, 200.0, 300.0], 8000.0).unwrap();
        assert_eq!(m, 0.0);
        // And on a tone it agrees with strongest_of's argmax.
        let rate = 8000.0;
        let w = tone(1200.0, rate, 1024);
        let freqs: Vec<f64> = (0..8).map(|i| 850.0 + 135.0 * i as f64).collect();
        let (_, p) = strongest_of(&w, &freqs, rate).unwrap();
        let m = strongest_magnitude(&w, &freqs, rate).unwrap();
        assert_eq!(m.to_bits(), p.max(0.0).sqrt().to_bits());
    }

    #[test]
    fn max_and_sum_agree_with_single_probe_reductions() {
        let rate = 8000.0;
        let w = tone(1200.0, rate, 512);
        let freqs: Vec<f64> = (0..6).map(|i| 850.0 + 135.0 * i as f64).collect();
        let (mx, sum) = magnitude_max_and_sum(&w, &freqs, rate).unwrap();
        let singles: Vec<f64> = freqs
            .iter()
            .filter_map(|&f| goertzel_magnitude(&w, f, rate))
            .collect();
        let naive_max = singles.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let naive_sum: f64 = singles.iter().sum();
        assert_eq!(mx.to_bits(), naive_max.to_bits());
        assert_eq!(sum.to_bits(), naive_sum.to_bits());
        assert!(magnitude_max_and_sum(&w, &[], rate).is_none());
    }

    #[test]
    fn f32_probe_tracks_f64_within_single_precision() {
        let rate = 8000.0;
        let wide = tone(1200.0, rate, 512);
        let narrow: Vec<f32> = wide.iter().map(|&x| x as f32).collect();
        let p64 = goertzel_power(&wide, 1200.0, rate).unwrap();
        let p32 = goertzel_power(&narrow, 1200.0, rate).unwrap();
        // The marginally-stable recurrence amplifies rounding by ~n^1.5,
        // so budget ~512^1.5·ε_f32 ≈ 1.4e-3 relative, with headroom.
        assert!(
            (p32 - p64).abs() < 1e-2 * p64.abs().max(1.0),
            "f32 {p32} vs f64 {p64}"
        );
    }
}
