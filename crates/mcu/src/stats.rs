//! Statistical feature extraction.
//!
//! The paper's hub ships "a set of statistical functions" for feature
//! extraction (§3.6). The music-journal and phrase-detection wake-up
//! conditions use the variance of window amplitude and the variance of
//! per-sub-window zero-crossing rates (§3.7.2); those reductions are built
//! from these kernels.
//!
//! # Reduction order
//!
//! [`Summary::of`] computes its sums in a *defined, length-dependent
//! order* that is part of the kernel contract (see DESIGN.md §6h):
//!
//! * windows shorter than [`LANE_CUTOVER`] samples are reduced by one
//!   sequential left-to-right accumulator — bit-identical to the
//!   original scalar kernel, so short reductions (e.g. the eight
//!   sub-window ZCR rates behind `zcrVariance`) are unaffected by the
//!   lane rewrite;
//! * longer windows are reduced by [`Sample::LANES`] independent
//!   accumulators, lane `j` summing elements `j, j+LANES, j+2·LANES, …`
//!   (trailing elements continue into lanes `0..r`), combined by a
//!   halving tree: with lanes `l0..l3`, the total is
//!   `(l0+l2) + (l1+l3)`, and one more halving round for 8 lanes.
//!
//! Both the unrolled (`simd` feature, default) and scalar-fallback
//! builds walk exactly this order, so results are bit-identical across
//! the feature boundary; the `dsp/tests/simd_equivalence.rs` proptests
//! pin that.

use crate::sample::Sample;

/// Window lengths below this are reduced by the original sequential
/// loop; at or above it the multi-accumulator lane order kicks in. Part
/// of the documented kernel contract — both feature builds honor it.
pub const LANE_CUTOVER: usize = 32;

/// Summary statistics of a window of samples, computed in a single pass.
///
/// # Example
///
/// ```
/// use sidewinder_mcu::stats::Summary;
///
/// let s = Summary::<f64>::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
/// assert_eq!(s.mean, 2.5);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 4.0);
/// assert!((s.variance - 1.25).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary<P: Sample = f64> {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: P,
    /// Population variance (divides by `count`).
    pub variance: P,
    /// Smallest sample.
    pub min: P,
    /// Largest sample.
    pub max: P,
    /// Root mean square.
    pub rms: P,
}

impl<P: Sample> Summary<P> {
    /// Computes summary statistics. Returns `None` for an empty window.
    ///
    /// # NaN policy
    ///
    /// NaN samples are *propagated, not rejected* (`lint` SW004 assumes
    /// reductions pass NaN through rather than panic or filter):
    ///
    /// * `mean` and `rms` become NaN as soon as any sample is NaN;
    /// * `variance` is computed as `(E[x²] − mean²).max(0)`, and the
    ///   IEEE-754 `max` that clamps catastrophic cancellation also
    ///   absorbs NaN — a window containing NaN reports variance `0.0`;
    /// * `min`/`max` use IEEE-754 min/max, which ignore NaN; an
    ///   all-NaN window reports `min = +∞`, `max = −∞`.
    pub fn of(window: &[P]) -> Option<Summary<P>> {
        if window.is_empty() {
            return None;
        }
        let n = P::from_usize(window.len());
        let (sum, sum_sq, min, max) = moments(window);
        let mean = sum / n;
        // Clamp: catastrophic cancellation can produce a tiny negative value.
        let variance = (sum_sq / n - mean * mean).max(P::ZERO);
        Some(Summary {
            count: window.len(),
            mean,
            variance,
            min,
            max,
            rms: (sum_sq / n).sqrt(),
        })
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> P {
        self.variance.sqrt()
    }

    /// Peak-to-peak amplitude (`max - min`).
    pub fn peak_to_peak(&self) -> P {
        self.max - self.min
    }
}

/// `(Σx, Σx², min, max)` in the documented length-dependent order.
fn moments<P: Sample>(window: &[P]) -> (P, P, P, P) {
    if window.len() < LANE_CUTOVER {
        moments_serial(window)
    } else {
        match P::LANES {
            8 => moments_lanes::<P, 8>(window),
            _ => moments_lanes::<P, 4>(window),
        }
    }
}

fn moments_serial<P: Sample>(window: &[P]) -> (P, P, P, P) {
    let mut sum = P::ZERO;
    let mut sum_sq = P::ZERO;
    let mut min = P::INFINITY;
    let mut max = P::NEG_INFINITY;
    for &x in window {
        sum += x;
        sum_sq += x * x;
        min = min.min(x);
        max = max.max(x);
    }
    (sum, sum_sq, min, max)
}

/// Unrolled lane reduction: `L` independent accumulators walk the window
/// in `L`-wide chunks, which LLVM turns into vector adds; `Σx`, `Σx²`,
/// min, and max all ride the same pass.
#[cfg(feature = "simd")]
fn moments_lanes<P: Sample, const L: usize>(window: &[P]) -> (P, P, P, P) {
    let mut sum = [P::ZERO; L];
    let mut sum_sq = [P::ZERO; L];
    let mut min = [P::INFINITY; L];
    let mut max = [P::NEG_INFINITY; L];
    let mut chunks = window.chunks_exact(L);
    for chunk in &mut chunks {
        for j in 0..L {
            let x = chunk[j];
            sum[j] += x;
            sum_sq[j] += x * x;
            min[j] = min[j].min(x);
            max[j] = max[j].max(x);
        }
    }
    for (j, &x) in chunks.remainder().iter().enumerate() {
        sum[j] += x;
        sum_sq[j] += x * x;
        min[j] = min[j].min(x);
        max[j] = max[j].max(x);
    }
    (
        tree_fold(sum, |a, b| a + b),
        tree_fold(sum_sq, |a, b| a + b),
        tree_fold(min, P::min),
        tree_fold(max, P::max),
    )
}

/// Scalar emulation of the lane order: lane `j` reduces elements
/// `j, j+L, j+2L, …` one stream at a time — element-for-element the same
/// per-lane sequences as the unrolled build, so results are bit-identical
/// across the feature boundary (just without the chunked shape LLVM
/// vectorizes).
#[cfg(not(feature = "simd"))]
fn moments_lanes<P: Sample, const L: usize>(window: &[P]) -> (P, P, P, P) {
    let mut sum = [P::ZERO; L];
    let mut sum_sq = [P::ZERO; L];
    let mut min = [P::INFINITY; L];
    let mut max = [P::NEG_INFINITY; L];
    let main = window.len() - window.len() % L;
    for j in 0..L {
        let mut i = j;
        while i < main {
            let x = window[i];
            sum[j] += x;
            sum_sq[j] += x * x;
            min[j] = min[j].min(x);
            max[j] = max[j].max(x);
            i += L;
        }
    }
    for (j, &x) in window[main..].iter().enumerate() {
        sum[j] += x;
        sum_sq[j] += x * x;
        min[j] = min[j].min(x);
        max[j] = max[j].max(x);
    }
    (
        tree_fold(sum, |a, b| a + b),
        tree_fold(sum_sq, |a, b| a + b),
        tree_fold(min, P::min),
        tree_fold(max, P::max),
    )
}

/// Combines lane partials by repeated halving: `L=4` lanes reduce as
/// `(l0⊕l2) ⊕ (l1⊕l3)`; `L=8` adds one more halving round. The order is
/// part of the kernel contract.
fn tree_fold<P: Sample, const L: usize>(mut lanes: [P; L], f: impl Fn(P, P) -> P) -> P {
    let mut n = L;
    while n > 1 {
        n /= 2;
        for i in 0..n {
            lanes[i] = f(lanes[i], lanes[i + n]);
        }
    }
    lanes[0]
}

/// Arithmetic mean; `None` when empty.
pub fn mean<P: Sample>(window: &[P]) -> Option<P> {
    Summary::of(window).map(|s| s.mean)
}

/// Population variance; `None` when empty.
pub fn variance<P: Sample>(window: &[P]) -> Option<P> {
    Summary::of(window).map(|s| s.variance)
}

/// Root mean square; `None` when empty.
pub fn rms<P: Sample>(window: &[P]) -> Option<P> {
    Summary::of(window).map(|s| s.rms)
}

/// Mean absolute amplitude; `None` when empty. Used by the significant-sound
/// predefined-activity detector.
pub fn mean_abs<P: Sample>(window: &[P]) -> Option<P> {
    if window.is_empty() {
        return None;
    }
    let mut sum = P::ZERO;
    for &x in window {
        sum += x.abs();
    }
    Some(sum / P::from_usize(window.len()))
}

/// Signal energy `Σ x²`.
pub fn energy<P: Sample>(window: &[P]) -> P {
    let mut sum = P::ZERO;
    for &x in window {
        sum += x * x;
    }
    sum
}

/// Euclidean magnitude of an acceleration vector `√(Σ xᵢ²)`.
///
/// This is the hub's "magnitude of acceleration vector computation" (§3.6):
/// an aggregation algorithm that fuses the per-axis branches of a pipeline
/// into one (Fig. 2).
pub fn vector_magnitude<P: Sample>(components: &[P]) -> P {
    energy(components).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::vec::Vec;

    #[test]
    fn empty_window_yields_none() {
        assert!(Summary::<f64>::of(&[]).is_none());
        assert!(mean::<f64>(&[]).is_none());
        assert!(variance::<f64>(&[]).is_none());
        assert!(rms::<f64>(&[]).is_none());
        assert!(mean_abs::<f64>(&[]).is_none());
    }

    #[test]
    fn single_sample_summary() {
        let s = Summary::of(&[7.0]).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.min, 7.0);
        assert_eq!(s.max, 7.0);
        assert_eq!(s.rms, 7.0);
    }

    #[test]
    fn known_variance() {
        // Population variance of [2,4,4,4,5,5,7,9] is 4.
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s.variance - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn variance_never_negative_under_cancellation() {
        let big = 1e9;
        let s = Summary::of(&[big, big, big]).unwrap();
        assert!(s.variance >= 0.0);
    }

    #[test]
    fn peak_to_peak() {
        let s = Summary::of(&[-1.0, 0.0, 3.0]).unwrap();
        assert_eq!(s.peak_to_peak(), 4.0);
    }

    #[test]
    fn rms_of_alternating_unit_signal_is_one() {
        let signal = [1.0, -1.0, 1.0, -1.0];
        assert!((rms(&signal).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_abs_ignores_sign() {
        assert_eq!(mean_abs(&[1.0, -1.0, 2.0, -2.0]).unwrap(), 1.5);
    }

    #[test]
    fn energy_sums_squares() {
        assert_eq!(energy(&[3.0, 4.0]), 25.0);
        assert_eq!(energy::<f64>(&[]), 0.0);
    }

    #[test]
    fn vector_magnitude_is_euclidean_norm() {
        assert!((vector_magnitude(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert!((vector_magnitude(&[1.0, 2.0, 2.0]) - 3.0).abs() < 1e-12);
        assert_eq!(vector_magnitude::<f64>(&[]), 0.0);
    }

    #[test]
    fn f32_summary_matches_f64_within_single_precision() {
        let wide: Vec<f64> = (0..2048).map(|i| (i as f64 * 0.37).sin() * 3.0).collect();
        let narrow: Vec<f32> = wide.iter().map(|&x| x as f32).collect();
        let sw = Summary::of(&wide).unwrap();
        let sn = Summary::of(&narrow).unwrap();
        assert!((f64::from(sn.mean) - sw.mean).abs() < 1e-4);
        assert!((f64::from(sn.variance) - sw.variance).abs() < 1e-3);
        assert_eq!(f64::from(sn.max), sw.max as f32 as f64);
    }

    #[test]
    fn lane_order_is_the_documented_tree() {
        // A 33-sample window (cutover + 1, non-multiple of 4): recompute
        // the documented lane order by hand and require bit equality.
        let w: Vec<f64> = (0..33).map(|i| (i as f64 * 0.9).sin() / 3.0).collect();
        let mut lanes = [0.0f64; 4];
        let main = w.len() - w.len() % 4;
        for (i, &x) in w.iter().enumerate() {
            let lane = if i < main { i % 4 } else { i - main };
            lanes[lane] += x;
        }
        let expected = (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
        let got = Summary::of(&w).unwrap();
        assert_eq!(got.mean.to_bits(), (expected / 33.0).to_bits());
    }

    #[test]
    fn below_cutover_matches_the_sequential_kernel_exactly() {
        // Lengths under LANE_CUTOVER must reproduce the original
        // left-to-right reduction bit-for-bit (the zcrVariance path
        // reduces 8 inexact rates and its digests are frozen).
        let w: Vec<f64> = (0..(LANE_CUTOVER - 1))
            .map(|i| 0.1 + (i as f64 / 7.0).sin())
            .collect();
        let (mut sum, mut sum_sq) = (0.0f64, 0.0f64);
        for &x in &w {
            sum += x;
            sum_sq += x * x;
        }
        let n = w.len() as f64;
        let s = Summary::of(&w).unwrap();
        assert_eq!(s.mean.to_bits(), (sum / n).to_bits());
        assert_eq!(
            s.variance.to_bits(),
            (sum_sq / n - (sum / n) * (sum / n)).max(0.0).to_bits()
        );
    }

    #[test]
    fn nan_policy_propagates_through_sums_and_skips_extrema() {
        let s = Summary::of(&[1.0, f64::NAN, 3.0]).unwrap();
        assert!(s.mean.is_nan());
        assert!(s.rms.is_nan());
        // The cancellation clamp absorbs NaN: documented, load-bearing
        // for SW004's "threshold comparisons see a number" assumption.
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);

        let all_nan = Summary::of(&[f64::NAN; 40]).unwrap();
        assert!(all_nan.mean.is_nan());
        assert_eq!(all_nan.min, f64::INFINITY);
        assert_eq!(all_nan.max, f64::NEG_INFINITY);
    }
}
