//! Scalar float math for the `no_std` core.
//!
//! On Rust 1.82 the transcendental `f64` methods (`sqrt`, `sin`, `cos`,
//! `hypot`, `atan2`, `ln`, `exp`, `round`) live in `std`, not `core`,
//! so every kernel in this crate routes through this shim instead of
//! calling them directly.
//!
//! With the `std` feature on (every host build) the shim is a
//! zero-cost forward to the platform libm — the kernels stay
//! bit-identical to the pre-split `sidewinder-dsp` code, which is what
//! keeps the frozen wake digests valid. With `std` off (the thumb
//! cross-build) the pure-Rust fallbacks below are used; they are
//! accurate to roughly 1e-12 relative over the ranges the kernels use,
//! and nothing ever compares their bits against a host run.

/// `|x|` by clearing the sign bit — exactly what `f64::abs` does, so
/// this one needs no feature gate.
#[inline(always)]
pub fn abs(x: f64) -> f64 {
    f64::from_bits(x.to_bits() & !(1u64 << 63))
}

/// `|x|` for `f32`, same bit trick.
#[inline(always)]
pub fn abs_f32(x: f32) -> f32 {
    f32::from_bits(x.to_bits() & !(1u32 << 31))
}

#[cfg(any(test, feature = "std"))]
mod imp {
    #[inline(always)]
    pub fn sqrt(x: f64) -> f64 {
        x.sqrt()
    }
    #[inline(always)]
    pub fn sqrt_f32(x: f32) -> f32 {
        x.sqrt()
    }
    #[inline(always)]
    pub fn sin(x: f64) -> f64 {
        x.sin()
    }
    #[inline(always)]
    pub fn cos(x: f64) -> f64 {
        x.cos()
    }
    #[inline(always)]
    pub fn hypot(x: f64, y: f64) -> f64 {
        x.hypot(y)
    }
    #[inline(always)]
    pub fn atan2(y: f64, x: f64) -> f64 {
        y.atan2(x)
    }
    #[inline(always)]
    pub fn ln(x: f64) -> f64 {
        x.ln()
    }
    #[inline(always)]
    pub fn exp(x: f64) -> f64 {
        x.exp()
    }
    #[inline(always)]
    pub fn round(x: f64) -> f64 {
        x.round()
    }
    #[inline(always)]
    pub fn floor(x: f64) -> f64 {
        x.floor()
    }
}

#[cfg(not(any(test, feature = "std")))]
mod imp {
    use core::f64::consts::{FRAC_PI_2, PI};

    /// Newton–Raphson square root from a bit-level initial guess.
    pub fn sqrt(x: f64) -> f64 {
        if x < 0.0 || x != x {
            return f64::NAN;
        }
        if x == 0.0 || x == f64::INFINITY {
            return x;
        }
        // Halve the exponent for a guess good to a couple of bits,
        // then five Newton steps converge well past 1e-15 relative.
        let mut y = f64::from_bits((x.to_bits() >> 1) + 0x1FF8_0000_0000_0000);
        for _ in 0..5 {
            y = 0.5 * (y + x / y);
        }
        y
    }

    pub fn sqrt_f32(x: f32) -> f32 {
        sqrt(x as f64) as f32
    }

    pub fn floor(x: f64) -> f64 {
        // |x| >= 2^52 is already integral (or non-finite).
        if !(super::abs(x) < 4_503_599_627_370_496.0) {
            return x;
        }
        let t = x as i64 as f64; // truncation toward zero
        if t > x {
            t - 1.0
        } else {
            t
        }
    }

    pub fn round(x: f64) -> f64 {
        if !(super::abs(x) < 4_503_599_627_370_496.0) {
            return x;
        }
        // Round half away from zero, like `f64::round`.
        if x >= 0.0 {
            floor(x + 0.5)
        } else {
            -floor(-x + 0.5)
        }
    }

    /// Sine via range reduction to [-pi, pi] and a 15th-order Taylor
    /// polynomial (worst case ~1e-12 absolute on the reduced range).
    pub fn sin(x: f64) -> f64 {
        if x != x || super::abs(x) == f64::INFINITY {
            return f64::NAN;
        }
        let mut r = x - floor(x / (2.0 * PI)) * 2.0 * PI; // [0, 2pi)
        if r > PI {
            r -= 2.0 * PI; // (-pi, pi]
        }
        // Fold into [-pi/2, pi/2] where the polynomial is tightest.
        if r > FRAC_PI_2 {
            r = PI - r;
        } else if r < -FRAC_PI_2 {
            r = -PI - r;
        }
        let r2 = r * r;
        // sin r = r (1 - r^2/6 (1 - r^2/20 (1 - ...))) up to r^15.
        let mut p = 1.0 - r2 / (14.0 * 15.0);
        p = 1.0 - r2 / (12.0 * 13.0) * p;
        p = 1.0 - r2 / (10.0 * 11.0) * p;
        p = 1.0 - r2 / (8.0 * 9.0) * p;
        p = 1.0 - r2 / (6.0 * 7.0) * p;
        p = 1.0 - r2 / (4.0 * 5.0) * p;
        p = 1.0 - r2 / (2.0 * 3.0) * p;
        r * p
    }

    pub fn cos(x: f64) -> f64 {
        sin(FRAC_PI_2 - x)
    }

    pub fn hypot(x: f64, y: f64) -> f64 {
        let (x, y) = (super::abs(x), super::abs(y));
        if x == f64::INFINITY || y == f64::INFINITY {
            return f64::INFINITY;
        }
        let (hi, lo) = if x > y { (x, y) } else { (y, x) };
        if hi == 0.0 {
            return 0.0;
        }
        // Scale to dodge overflow/underflow in the squares.
        let r = lo / hi;
        hi * sqrt(1.0 + r * r)
    }

    /// atan on [0, 1] via the Euler series, extended by identities.
    fn atan_unit(x: f64) -> f64 {
        // atan x = x / (1 + x^2) * sum_k prod_{j<=k} (2j x^2 / ((2j+1)(1+x^2)))
        let x2 = x * x;
        let base = x2 / (1.0 + x2);
        let mut term = x / (1.0 + x2);
        let mut sum = term;
        let mut j = 1.0;
        while super::abs(term) > 1e-17 && j < 200.0 {
            term *= 2.0 * j * base / (2.0 * j + 1.0);
            sum += term;
            j += 1.0;
        }
        sum
    }

    fn atan(x: f64) -> f64 {
        let a = super::abs(x);
        let r = if a <= 1.0 {
            atan_unit(a)
        } else {
            FRAC_PI_2 - atan_unit(1.0 / a)
        };
        if x < 0.0 {
            -r
        } else {
            r
        }
    }

    pub fn atan2(y: f64, x: f64) -> f64 {
        if x != x || y != y {
            return f64::NAN;
        }
        if x > 0.0 {
            atan(y / x)
        } else if x < 0.0 {
            if y >= 0.0 {
                atan(y / x) + PI
            } else {
                atan(y / x) - PI
            }
        } else if y > 0.0 {
            FRAC_PI_2
        } else if y < 0.0 {
            -FRAC_PI_2
        } else {
            // atan2(0, 0) = 0 with the sign conventions we need here.
            0.0
        }
    }

    /// Natural log from the exponent bits plus an atanh series on the
    /// mantissa: ln(m 2^e) = e ln 2 + 2 atanh((m-1)/(m+1)).
    pub fn ln(x: f64) -> f64 {
        if x != x || x < 0.0 {
            return f64::NAN;
        }
        if x == 0.0 {
            return f64::NEG_INFINITY;
        }
        if x == f64::INFINITY {
            return f64::INFINITY;
        }
        const LN_2: f64 = core::f64::consts::LN_2;
        let bits = x.to_bits();
        let mut e = ((bits >> 52) & 0x7FF) as i64 - 1023;
        let mut m = f64::from_bits((bits & 0x000F_FFFF_FFFF_FFFF) | (1023u64 << 52));
        if e == -1023 {
            // Subnormal: renormalize.
            let n = x * 4_503_599_627_370_496.0; // 2^52
            let nbits = n.to_bits();
            e = ((nbits >> 52) & 0x7FF) as i64 - 1023 - 52;
            m = f64::from_bits((nbits & 0x000F_FFFF_FFFF_FFFF) | (1023u64 << 52));
        }
        if m > core::f64::consts::SQRT_2 {
            m *= 0.5;
            e += 1;
        }
        let t = (m - 1.0) / (m + 1.0);
        let t2 = t * t;
        let mut term = t;
        let mut sum = t;
        let mut k = 1.0;
        while super::abs(term) > 1e-18 && k < 100.0 {
            term *= t2;
            sum += term / (2.0 * k + 1.0);
            k += 1.0;
        }
        e as f64 * LN_2 + 2.0 * sum
    }

    /// exp via 2^k * e^r with |r| <= ln2/2 and a Taylor tail.
    pub fn exp(x: f64) -> f64 {
        if x != x {
            return f64::NAN;
        }
        if x > 709.78 {
            return f64::INFINITY;
        }
        if x < -745.0 {
            return 0.0;
        }
        const LN_2: f64 = core::f64::consts::LN_2;
        let k = round(x / LN_2);
        let r = x - k * LN_2;
        let mut term = 1.0;
        let mut sum = 1.0;
        let mut n = 1.0;
        while super::abs(term) > 1e-19 && n < 40.0 {
            term *= r / n;
            sum += term;
            n += 1.0;
        }
        // Scale by 2^k through the exponent bits; split the scale in
        // two when 2^k alone would leave the normal range.
        let mut k = k as i64;
        let mut out = sum;
        while k > 512 {
            out *= f64::from_bits((1023u64 + 512) << 52);
            k -= 512;
        }
        while k < -512 {
            out *= f64::from_bits((1023u64 - 512) << 52);
            k += 512;
        }
        out * f64::from_bits(((1023 + k) as u64) << 52)
    }
}

pub use imp::{atan2, cos, exp, floor, hypot, ln, round, sin, sqrt, sqrt_f32};

#[cfg(test)]
mod tests {
    // The workspace builds this crate with `std` on, so these tests
    // pin the shim against the libm it forwards to. The no-std
    // fallback bodies are compile-checked by the host
    // `--no-default-features` build and the thumb CI job.
    use super::*;

    #[test]
    fn abs_matches_std() {
        for x in [0.0f64, -0.0, 1.5, -1.5, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(abs(x).to_bits(), x.abs().to_bits());
        }
        assert!(abs(f64::NAN).is_nan());
        assert_eq!(abs_f32(-3.25f32).to_bits(), 3.25f32.to_bits());
    }

    #[cfg(any(test, feature = "std"))]
    #[test]
    fn std_shim_is_bit_identical_to_libm() {
        for i in 0..1000 {
            let x = (i as f64) * 0.137 - 68.5;
            assert_eq!(sin(x).to_bits(), x.sin().to_bits());
            assert_eq!(cos(x).to_bits(), x.cos().to_bits());
            assert_eq!(exp(x * 0.1).to_bits(), (x * 0.1).exp().to_bits());
            assert_eq!(round(x).to_bits(), x.round().to_bits());
            assert_eq!(floor(x).to_bits(), x.floor().to_bits());
            let p = abs(x) + 0.001;
            assert_eq!(sqrt(p).to_bits(), p.sqrt().to_bits());
            assert_eq!(ln(p).to_bits(), p.ln().to_bits());
            assert_eq!(hypot(x, p).to_bits(), x.hypot(p).to_bits());
            assert_eq!(atan2(x, p).to_bits(), x.atan2(p).to_bits());
        }
    }
}
