//! Static arena accounting for [`McuImage`]s — the `no_std` half of the
//! `swcert` resource certifier.
//!
//! [`image_footprint`] replays the exact bump-allocation walk
//! [`McuCore::load`](crate::McuCore::load) performs — same node order,
//! same per-kind element counts, same parameter validation — without
//! touching any arena, so a program's capacity requirement is a
//! computed fact rather than a load-time surprise. [`check_fit`] turns
//! that walk into a pre-flight admission check: the first node that
//! would push any arena past `cap` is reported by name, before a single
//! element is carved. `McuCore::load` runs this check first, which is
//! what makes a failed load side-effect free.
//!
//! The accounting is *exact*, not an estimate: `exec.rs` keeps the
//! per-arena totals it actually carves, and the equivalence tests
//! assert `arena_used() == footprint` on every fixture and on the fuzz
//! corpus. Anything this module over- or under-counts is a test
//! failure, not drift.

use crate::exec::{plan_swap_cap, plan_twiddle_cap, McuExecError};
use crate::image::{McuImage, NodeKind, NodeSpec, PortSource, MAX_NODES};

/// The seven fixed arenas a [`McuCore`](crate::McuCore) carves at load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArenaKind {
    /// `arena_p`: window rings, taper tables, vector payloads.
    Sample,
    /// `arena_f`: moving-average rings, probe tables, widening scratch.
    Scalar,
    /// `arena_c`: twiddle tables and spectrum payloads.
    Complex,
    /// `arena_s`: bit-reversal swap tables.
    Swap,
    /// `arena_b`: band-filter keep masks.
    Mask,
    /// `stage_p`: staging copy of the largest fed vector payload.
    StageSample,
    /// `stage_c`: staging copy of the largest fed spectrum payload.
    StageSpectrum,
}

impl ArenaKind {
    /// Every arena, in declaration order.
    pub const ALL: [ArenaKind; 7] = [
        ArenaKind::Sample,
        ArenaKind::Scalar,
        ArenaKind::Complex,
        ArenaKind::Swap,
        ArenaKind::Mask,
        ArenaKind::StageSample,
        ArenaKind::StageSpectrum,
    ];

    /// Position in [`ImageFootprint::arenas`].
    pub fn index(self) -> usize {
        match self {
            ArenaKind::Sample => 0,
            ArenaKind::Scalar => 1,
            ArenaKind::Complex => 2,
            ArenaKind::Swap => 3,
            ArenaKind::Mask => 4,
            ArenaKind::StageSample => 5,
            ArenaKind::StageSpectrum => 6,
        }
    }

    /// The name `load`'s capacity errors use for this arena.
    pub fn name(self) -> &'static str {
        match self {
            ArenaKind::Sample => "sample arena",
            ArenaKind::Scalar => "scalar arena",
            ArenaKind::Complex => "complex arena",
            ArenaKind::Swap => "swap arena",
            ArenaKind::Mask => "mask arena",
            ArenaKind::StageSample => "sample staging arena",
            ArenaKind::StageSpectrum => "spectrum staging arena",
        }
    }

    /// Bytes one element occupies, given the sample-payload width
    /// (`8` for `f64` cores, `4` for `f32`).
    pub fn element_bytes(self, sample_bytes: usize) -> usize {
        match self {
            ArenaKind::Sample | ArenaKind::StageSample => sample_bytes,
            ArenaKind::Scalar => 8,
            ArenaKind::Complex | ArenaKind::StageSpectrum => 16,
            ArenaKind::Swap => 8,
            ArenaKind::Mask => 1,
        }
    }
}

/// One arena's certified occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArenaUse {
    /// Total elements the program carves from (or stages through) the
    /// arena.
    pub elements: usize,
    /// Dense index of the node contributing the most elements.
    pub peak_node: u16,
    /// That node's contribution.
    pub peak_elements: usize,
}

impl ArenaUse {
    fn add(&mut self, node: u16, elements: usize) {
        self.elements += elements;
        if elements > self.peak_elements {
            self.peak_elements = elements;
            self.peak_node = node;
        }
    }

    /// Staging arenas hold one payload at a time, so their occupancy is
    /// the maximum, not the sum.
    fn stage(&mut self, node: u16, elements: usize) {
        if elements > self.elements {
            self.elements = elements;
        }
        if elements > self.peak_elements {
            self.peak_elements = elements;
            self.peak_node = node;
        }
    }
}

/// Exact per-arena element occupancy of one image, in load order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ImageFootprint {
    /// Occupancy per arena, indexed by [`ArenaKind::index`].
    pub arenas: [ArenaUse; 7],
}

impl ImageFootprint {
    /// Occupancy of one arena.
    pub fn arena(&self, kind: ArenaKind) -> ArenaUse {
        self.arenas[kind.index()]
    }

    /// The largest single-arena occupancy — the smallest `CAP` a
    /// `McuCore<_, CAP>` needs to load the image.
    pub fn required_capacity(&self) -> usize {
        let mut max = 0;
        let mut i = 0;
        while i < self.arenas.len() {
            if self.arenas[i].elements > max {
                max = self.arenas[i].elements;
            }
            i += 1;
        }
        max
    }

    /// Whether every arena fits a core of capacity `cap`.
    pub fn fits(&self, cap: usize) -> bool {
        self.required_capacity() <= cap
    }

    /// Total bytes across all arenas for the given sample-payload
    /// width — the RAM the carved program actually occupies.
    pub fn total_bytes(&self, sample_bytes: usize) -> usize {
        ArenaKind::ALL
            .iter()
            .map(|&k| self.arena(k).elements * k.element_bytes(sample_bytes))
            .sum()
    }
}

/// Per-node element needs — the footprint of one node's carve.
struct NodeNeeds {
    p: usize,
    f: usize,
    c: usize,
    s: usize,
    b: usize,
    /// Payload length the node emits (0 for scalar producers).
    out_len: usize,
    /// Whether the emitted payload is a spectrum (complex) rather than
    /// a sample vector.
    spectral_out: bool,
}

/// Elements node `node` carves from each arena, given its incoming
/// payload length. Mirrors `McuCore::load`'s per-kind match
/// element-for-element, including the parameter validation it performs
/// before carving.
fn node_needs(node: u16, spec: &NodeSpec, in_len: usize) -> Result<NodeNeeds, McuExecError> {
    let mut needs = NodeNeeds {
        p: 0,
        f: 0,
        c: 0,
        s: 0,
        b: 0,
        out_len: 0,
        spectral_out: false,
    };
    match spec.kind {
        NodeKind::Window { size, hop, .. } => {
            let (size, hop) = (size as usize, hop as usize);
            if size == 0 || hop == 0 || hop > size {
                return Err(McuExecError::BadParameter {
                    node,
                    what: "window size and hop must be positive",
                });
            }
            // Ring + taper table + output payload.
            needs.p = 3 * size;
            needs.out_len = size;
        }
        NodeKind::Fft => {
            needs.s = plan_swap_cap(in_len);
            needs.c = plan_twiddle_cap(in_len) + in_len;
            needs.f = in_len;
            needs.out_len = in_len;
            needs.spectral_out = true;
        }
        NodeKind::Ifft => {
            needs.s = plan_swap_cap(in_len);
            needs.c = plan_twiddle_cap(in_len) + in_len;
            needs.p = in_len;
            needs.out_len = in_len;
        }
        NodeKind::SpectralMagnitude => {
            let m = if in_len > 0 { in_len / 2 + 1 } else { 0 };
            needs.p = m;
            needs.out_len = m;
        }
        NodeKind::MovingAvg { window } => {
            if window == 0 {
                return Err(McuExecError::BadParameter {
                    node,
                    what: "moving-average window must be positive",
                });
            }
            needs.f = window as usize;
        }
        NodeKind::ExpMovingAvg { alpha } => {
            if !(alpha > 0.0 && alpha <= 1.0) {
                return Err(McuExecError::BadParameter {
                    node,
                    what: "smoothing factor must be in (0, 1]",
                });
            }
        }
        NodeKind::LowPass { .. } | NodeKind::HighPass { .. } => {
            needs.s = plan_swap_cap(in_len);
            needs.c = 2 * plan_twiddle_cap(in_len) + in_len;
            needs.b = in_len;
            needs.f = in_len;
            needs.p = in_len;
            needs.out_len = in_len;
        }
        NodeKind::ZcrVariance { sub_windows } => {
            needs.p = sub_windows as usize;
        }
        NodeKind::Goertzel { lo_hz, hi_hz }
        | NodeKind::GoertzelFreq { lo_hz, hi_hz }
        | NodeKind::GoertzelRatio { lo_hz, hi_hz } => {
            if !(lo_hz.is_finite() && hi_hz.is_finite() && 0.0 <= lo_hz && lo_hz <= hi_hz) {
                return Err(McuExecError::BadParameter {
                    node,
                    what: "goertzel band must be finite with 0 <= lo <= hi",
                });
            }
            needs.f = if in_len > 0 { in_len / 2 + 1 } else { 0 };
        }
        NodeKind::VectorMagnitude
        | NodeKind::Zcr
        | NodeKind::Stat(_)
        | NodeKind::DominantRatio
        | NodeKind::DominantFreq
        | NodeKind::MinThreshold { .. }
        | NodeKind::MaxThreshold { .. }
        | NodeKind::BandThreshold { .. }
        | NodeKind::OutsideThreshold { .. }
        | NodeKind::Sustained { .. }
        | NodeKind::AllOf
        | NodeKind::AnyOf => {}
    }
    Ok(needs)
}

/// Computes the exact per-arena occupancy of `image`, walking nodes in
/// load order.
///
/// # Errors
///
/// [`McuExecError::BadParameter`] on exactly the parameters
/// [`McuCore::load`](crate::McuCore::load) rejects, at the same node.
pub fn image_footprint(image: &McuImage) -> Result<ImageFootprint, McuExecError> {
    walk(image, usize::MAX).map(|(fp, _)| fp)
}

/// [`image_footprint`] plus an admission check against a core of
/// capacity `cap`: the first node whose carve would overflow any arena
/// is reported with the arena's name — before `McuCore::load` touches
/// anything.
///
/// # Errors
///
/// [`McuExecError::BadParameter`] as [`image_footprint`];
/// [`McuExecError::ArenaOverflow`] naming the arena and the offending
/// node when the image does not fit.
pub fn check_fit(image: &McuImage, cap: usize) -> Result<ImageFootprint, McuExecError> {
    match walk(image, cap)? {
        (fp, None) => Ok(fp),
        (_, Some(err)) => Err(err),
    }
}

/// Shared walk: accumulates the footprint and records the first
/// capacity crossing against `cap` (pass `usize::MAX` for none).
fn walk(
    image: &McuImage,
    cap: usize,
) -> Result<(ImageFootprint, Option<McuExecError>), McuExecError> {
    let mut fp = ImageFootprint::default();
    let mut overflow: Option<McuExecError> = None;
    let mut lens = [0usize; MAX_NODES];
    for (i, spec) in image.nodes().iter().enumerate() {
        let node = i as u16;
        let in_len = match spec.sources[0] {
            PortSource::Channel(_) => 0,
            PortSource::Node(src) => lens[src as usize],
        };
        let needs = node_needs(node, spec, in_len)?;
        lens[i] = needs.out_len;

        let carves = [
            (ArenaKind::Sample, needs.p),
            (ArenaKind::Scalar, needs.f),
            (ArenaKind::Complex, needs.c),
            (ArenaKind::Swap, needs.s),
            (ArenaKind::Mask, needs.b),
        ];
        for (kind, elements) in carves {
            let arena = &mut fp.arenas[kind.index()];
            arena.add(node, elements);
            if overflow.is_none() && arena.elements > cap {
                overflow = Some(McuExecError::ArenaOverflow {
                    arena: kind.name(),
                    node,
                    needed: arena.elements,
                    capacity: cap,
                });
            }
        }
        // A consumed payload is copied through the matching staging
        // arena on every feed; unconsumed payloads (the OUT node's) are
        // never staged.
        if spec.consumer_mask != 0 && needs.out_len > 0 {
            let kind = if needs.spectral_out {
                ArenaKind::StageSpectrum
            } else {
                ArenaKind::StageSample
            };
            let arena = &mut fp.arenas[kind.index()];
            arena.stage(node, needs.out_len);
            if overflow.is_none() && arena.elements > cap {
                overflow = Some(McuExecError::ArenaOverflow {
                    arena: kind.name(),
                    node,
                    needed: arena.elements,
                    capacity: cap,
                });
            }
        }
    }
    Ok((fp, overflow))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::ImageBuilder;
    use crate::window::WindowShape;

    fn window_image(size: u32) -> McuImage {
        let mut b = ImageBuilder::new();
        let win = b
            .push_node(
                NodeKind::Window {
                    size,
                    hop: size,
                    shape: WindowShape::Rectangular,
                },
                &[PortSource::Channel(0)],
                50.0,
            )
            .unwrap();
        let stat = b
            .push_node(
                NodeKind::Stat(crate::image::StatKind::Mean),
                &[PortSource::Node(win)],
                50.0,
            )
            .unwrap();
        b.finish(stat).unwrap()
    }

    #[test]
    fn window_chain_counts_ring_taper_payload_and_staging() {
        let fp = image_footprint(&window_image(64)).unwrap();
        assert_eq!(fp.arena(ArenaKind::Sample).elements, 3 * 64);
        assert_eq!(fp.arena(ArenaKind::StageSample).elements, 64);
        assert_eq!(fp.arena(ArenaKind::Scalar).elements, 0);
        assert_eq!(fp.required_capacity(), 192);
        assert!(fp.fits(192));
        assert!(!fp.fits(191));
    }

    #[test]
    fn unconsumed_payload_is_not_staged() {
        let mut b = ImageBuilder::new();
        let win = b
            .push_node(
                NodeKind::Window {
                    size: 16,
                    hop: 16,
                    shape: WindowShape::Rectangular,
                },
                &[PortSource::Channel(0)],
                50.0,
            )
            .unwrap();
        let image = b.finish(win).unwrap();
        let fp = image_footprint(&image).unwrap();
        assert_eq!(fp.arena(ArenaKind::StageSample).elements, 0);
    }

    #[test]
    fn check_fit_names_arena_and_node() {
        let err = check_fit(&window_image(64), 100).unwrap_err();
        assert_eq!(
            err,
            McuExecError::ArenaOverflow {
                arena: "sample arena",
                node: 0,
                needed: 192,
                capacity: 100,
            }
        );
        let text = std::format!("{err}");
        assert!(text.contains("sample arena"), "{text}");
        assert!(text.contains("node 0"), "{text}");
    }

    #[test]
    fn bad_parameters_surface_at_the_same_node_as_load() {
        let mut b = ImageBuilder::new();
        b.push_node(
            NodeKind::MovingAvg { window: 0 },
            &[PortSource::Channel(0)],
            50.0,
        )
        .unwrap();
        let image = b.finish(0).unwrap();
        assert_eq!(
            image_footprint(&image).unwrap_err(),
            McuExecError::BadParameter {
                node: 0,
                what: "moving-average window must be positive",
            }
        );
    }
}
