//! Spectral feature extraction over one-sided magnitude spectra.
//!
//! The siren wake-up condition (§3.7.2) transforms each window to the
//! frequency domain, extracts "the magnitude of the dominant frequency and
//! the mean magnitude of all frequency bins", and uses their ratio to decide
//! whether the window contains a pitched sound. These reductions live here.

use crate::math;
use crate::sample::Sample;

/// A dominant spectral peak: the bin index and its magnitude.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Peak<P: Sample = f64> {
    /// Index into the magnitude spectrum that was searched.
    pub bin: usize,
    /// Magnitude at that bin.
    pub magnitude: P,
}

/// Returns the bin with the largest magnitude, or `None` for an empty
/// spectrum.
///
/// Callers typically skip the DC bin by searching `&spectrum[1..]` and
/// adding 1 to the returned index.
pub fn dominant_bin<P: Sample>(magnitudes: &[P]) -> Option<Peak<P>> {
    magnitudes
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(core::cmp::Ordering::Equal))
        .map(|(bin, &magnitude)| Peak { bin, magnitude })
}

/// Ratio of the dominant magnitude to the mean magnitude — the paper's
/// "pitchedness" feature. `None` for an empty or all-zero spectrum.
///
/// Pitched sounds (sirens, musical notes) concentrate energy in one bin and
/// produce a high ratio; broadband noise stays near 1.
pub fn dominant_to_mean_ratio<P: Sample>(magnitudes: &[P]) -> Option<P> {
    let peak = dominant_bin(magnitudes)?;
    let mut sum = P::ZERO;
    for &m in magnitudes {
        sum += m;
    }
    let mean = sum / P::from_usize(magnitudes.len());
    if mean <= P::ZERO {
        return None;
    }
    Some(peak.magnitude / mean)
}

/// Sum of magnitudes whose bin index lies in `[lo_bin, hi_bin]` (clamped to
/// the spectrum length).
pub fn band_magnitude(magnitudes: &[f64], lo_bin: usize, hi_bin: usize) -> f64 {
    if lo_bin >= magnitudes.len() || lo_bin > hi_bin {
        return 0.0;
    }
    let hi = hi_bin.min(magnitudes.len() - 1);
    magnitudes[lo_bin..=hi].iter().sum()
}

/// Spectral centroid in bin units: the magnitude-weighted mean bin.
/// `None` when total magnitude is zero.
pub fn spectral_centroid(magnitudes: &[f64]) -> Option<f64> {
    let total: f64 = magnitudes.iter().sum();
    if total <= 0.0 {
        return None;
    }
    let weighted: f64 = magnitudes
        .iter()
        .enumerate()
        .map(|(i, &m)| i as f64 * m)
        .sum();
    Some(weighted / total)
}

/// Spectral flatness: geometric mean over arithmetic mean of magnitudes, in
/// `(0, 1]`. Near 1 for noise, near 0 for pitched sounds. `None` when the
/// spectrum is empty or any magnitude is zero or negative.
pub fn spectral_flatness(magnitudes: &[f64]) -> Option<f64> {
    if magnitudes.is_empty() || magnitudes.iter().any(|&m| m <= 0.0) {
        return None;
    }
    let log_mean = magnitudes.iter().map(|&m| math::ln(m)).sum::<f64>() / magnitudes.len() as f64;
    let mean = magnitudes.iter().sum::<f64>() / magnitudes.len() as f64;
    Some(math::exp(log_mean) / mean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::vec;

    #[test]
    fn dominant_bin_of_empty_is_none() {
        assert!(dominant_bin::<f64>(&[]).is_none());
    }

    #[test]
    fn dominant_bin_finds_peak() {
        let peak = dominant_bin(&[1.0, 5.0, 3.0]).unwrap();
        assert_eq!(peak.bin, 1);
        assert_eq!(peak.magnitude, 5.0);
    }

    #[test]
    fn dominant_bin_ties_pick_first() {
        // max_by returns the last maximal element; with a strict comparator
        // over equal values the first stays. Assert the observable contract:
        // magnitude equals the max.
        let peak = dominant_bin(&[2.0, 2.0]).unwrap();
        assert_eq!(peak.magnitude, 2.0);
    }

    #[test]
    fn ratio_is_high_for_peaked_spectrum() {
        let mut spectrum = vec![0.1; 100];
        spectrum[42] = 10.0;
        let r = dominant_to_mean_ratio(&spectrum).unwrap();
        assert!(r > 40.0, "ratio = {r}");
    }

    #[test]
    fn ratio_is_near_one_for_flat_spectrum() {
        let spectrum = vec![1.0; 64];
        let r = dominant_to_mean_ratio(&spectrum).unwrap();
        assert!((r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_of_zero_spectrum_is_none() {
        assert!(dominant_to_mean_ratio(&[0.0; 8]).is_none());
        assert!(dominant_to_mean_ratio::<f64>(&[]).is_none());
    }

    #[test]
    fn band_magnitude_sums_inclusive_range() {
        let m = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(band_magnitude(&m, 1, 2), 5.0);
        assert_eq!(band_magnitude(&m, 0, 3), 10.0);
    }

    #[test]
    fn band_magnitude_clamps_and_rejects_bad_ranges() {
        let m = [1.0, 2.0];
        assert_eq!(band_magnitude(&m, 0, 99), 3.0);
        assert_eq!(band_magnitude(&m, 5, 9), 0.0);
        assert_eq!(band_magnitude(&m, 1, 0), 0.0);
    }

    #[test]
    fn centroid_of_symmetric_spectrum_is_middle() {
        let c = spectral_centroid(&[1.0, 1.0, 1.0]).unwrap();
        assert!((c - 1.0).abs() < 1e-12);
    }

    #[test]
    fn centroid_shifts_toward_mass() {
        let c = spectral_centroid(&[0.0, 0.0, 0.0, 10.0]).unwrap();
        assert!((c - 3.0).abs() < 1e-12);
        assert!(spectral_centroid(&[0.0; 4]).is_none());
    }

    #[test]
    fn flatness_distinguishes_noise_from_tone() {
        let flat = spectral_flatness(&[1.0; 32]).unwrap();
        assert!((flat - 1.0).abs() < 1e-12);
        let mut peaked = vec![0.01; 32];
        peaked[5] = 100.0;
        let f = spectral_flatness(&peaked).unwrap();
        assert!(f < 0.1, "flatness = {f}");
        assert!(spectral_flatness(&[]).is_none());
        assert!(spectral_flatness(&[1.0, 0.0]).is_none());
    }
}
