//! The fixed-capacity wake-condition interpreter — the MCU core proper.
//!
//! [`McuCore`] executes an [`McuImage`] with zero allocation: every
//! buffer the host runtime's `Vec`-backed node instances would grow on
//! demand is carved at `load` time out of a handful of const-generic
//! arenas (samples, scalars, complex values, swap tables, keep masks).
//! The steady-state pass is the exact mirror of the host runtime's
//! masked interpreter pass — same feed order, same per-node arithmetic,
//! same emission guards — so on valid programs the `f64` instantiation
//! produces bit-identical wake sequences to `sidewinder-hub`, which
//! `hub/tests/mcu_equivalence.rs` pins fixture by fixture.
//!
//! Capacity model: one `CAP`-element arena per element type, shared by
//! all nodes through bump allocation at `load`. Programs that do not
//! fit report a typed [`CapacityError`] instead of failing at runtime;
//! after a successful `load`, steady-state execution touches no
//! allocator and no `std`.

use crate::complex::Complex;
use crate::fft;
use crate::filter::{self, BandShape};
use crate::goertzel;
use crate::image::{
    CapacityError, McuImage, NodeKind, NodeSpec, PortSource, StatKind, MAX_CHANNELS, MAX_NODES,
    MAX_PORTS,
};
use crate::math;
use crate::sample::Sample;
use crate::spectral;
use crate::stats;
use crate::window::WindowShape;
use crate::zcr;
use core::ops::Range;

/// Default arena capacity (elements per arena). Sized for host-side
/// equivalence testing; MCU deployments instantiate `McuCore<f32, N>`
/// with `N` matched to their program and RAM budget.
pub const DEFAULT_ARENA: usize = 4096;

/// A wake-up event: the triggering sample's per-channel sequence number
/// and the value that crossed the output node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WakeEvent {
    /// Sequence number of the sample that completed the emission.
    pub seq: u64,
    /// The scalar value produced at the output node.
    pub value: f64,
}

/// Execution-time observability hooks for the soundness harness.
///
/// The interpreter threads an `ExecProbe` through its staging and
/// result paths so a harness can measure what a run *actually* touched
/// and compare it against the statically certified bounds. The same
/// statically-dispatched `const ENABLED` pattern as the host `obs`
/// crate's `EventSink` makes the hooks zero-cost when disabled: with
/// [`NoProbe`] every call site constant-folds away, which is what keeps
/// `push_sample` on the frozen-digest fast path byte-for-byte intact.
pub trait ExecProbe {
    /// Whether the probe is live. `false` lets the compiler delete
    /// every hook.
    const ENABLED: bool;

    /// A vector payload of `len` elements was copied through the
    /// sample staging arena from `node`'s result slot.
    fn staged_vector(&mut self, node: u16, len: usize);

    /// A spectrum payload of `len` elements was copied through the
    /// spectrum staging arena from `node`'s result slot.
    fn staged_spectrum(&mut self, node: u16, len: usize);

    /// Node `node` produced a fresh result during this pass.
    fn emitted(&mut self, node: u16);
}

/// The default probe: observes nothing, costs nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoProbe;

impl ExecProbe for NoProbe {
    const ENABLED: bool = false;
    fn staged_vector(&mut self, _node: u16, _len: usize) {}
    fn staged_spectrum(&mut self, _node: u16, _len: usize) {}
    fn emitted(&mut self, _node: u16) {}
}

/// Records staging high-water marks and per-node emission counts — the
/// measured side of the `measured ≤ certified` soundness pins.
#[derive(Debug, Clone, Copy)]
pub struct HighWaterProbe {
    /// Largest vector payload staged through `stage_p`, in elements.
    pub stage_sample_peak: usize,
    /// Largest spectrum payload staged through `stage_c`, in elements.
    pub stage_spectrum_peak: usize,
    /// Fresh results per node since construction.
    pub emissions: [u64; MAX_NODES],
}

impl HighWaterProbe {
    /// A probe with every mark at zero.
    pub const fn new() -> HighWaterProbe {
        HighWaterProbe {
            stage_sample_peak: 0,
            stage_spectrum_peak: 0,
            emissions: [0; MAX_NODES],
        }
    }
}

impl Default for HighWaterProbe {
    fn default() -> Self {
        Self::new()
    }
}

impl ExecProbe for HighWaterProbe {
    const ENABLED: bool = true;

    fn staged_vector(&mut self, _node: u16, len: usize) {
        if len > self.stage_sample_peak {
            self.stage_sample_peak = len;
        }
    }

    fn staged_spectrum(&mut self, _node: u16, len: usize) {
        if len > self.stage_spectrum_peak {
            self.stage_spectrum_peak = len;
        }
    }

    fn emitted(&mut self, node: u16) {
        self.emissions[node as usize] += 1;
    }
}

/// Errors raised while loading or executing an image.
///
/// The `Display` strings of the execution-time variants mirror the host
/// runtime's `ExecError`, with the dense node index in place of the IR
/// identifier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum McuExecError {
    /// `push_sample` before a successful `load`.
    NotLoaded,
    /// A channel index at or above [`MAX_CHANNELS`].
    BadChannel {
        /// The offending channel index.
        channel: u8,
    },
    /// A transform node received a window whose length is not a power
    /// of two.
    BadTransformLength {
        /// The node's dense index.
        node: u16,
        /// The offending length.
        len: usize,
    },
    /// A node received a value of the wrong type (scalar where a vector
    /// was expected, and so on).
    TypeError {
        /// The node's dense index.
        node: u16,
    },
    /// A value arrived on a port the node does not have.
    BadPort {
        /// The node's dense index.
        node: u16,
        /// The offending port.
        port: usize,
    },
    /// A node parameter failed validation at load time.
    BadParameter {
        /// The node's dense index.
        node: u16,
        /// What was wrong.
        what: &'static str,
    },
    /// A node's carve would overflow one of the fixed arenas — detected
    /// by the pre-flight footprint check, before anything is carved.
    ArenaOverflow {
        /// The arena that would overflow (see
        /// [`ArenaKind::name`](crate::footprint::ArenaKind::name)).
        arena: &'static str,
        /// Dense index of the node whose carve crosses the capacity.
        node: u16,
        /// Elements the program needs by the end of that node's carve.
        needed: usize,
        /// Elements the core provides per arena.
        capacity: usize,
    },
    /// The program needs more arena storage than the core provides.
    Capacity(CapacityError),
}

impl core::fmt::Display for McuExecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            McuExecError::NotLoaded => write!(f, "no program image loaded"),
            McuExecError::BadChannel { channel } => {
                write!(f, "channel {channel} beyond the core's channel limit")
            }
            McuExecError::BadTransformLength { node, len } => {
                write!(f, "node {node}: window length {len} is not a power of two")
            }
            McuExecError::TypeError { node } => {
                write!(f, "node {node}: received a value of the wrong type")
            }
            McuExecError::BadPort { node, port } => {
                write!(f, "node {node}: no input port {port}")
            }
            McuExecError::BadParameter { node, what } => {
                write!(f, "node {node}: invalid parameter: {what}")
            }
            McuExecError::ArenaOverflow {
                arena,
                node,
                needed,
                capacity,
            } => write!(
                f,
                "node {node}: {arena} exhausted: needs {needed} elements, capacity {capacity}"
            ),
            McuExecError::Capacity(e) => write!(f, "{e}"),
        }
    }
}

impl core::error::Error for McuExecError {}

impl From<CapacityError> for McuExecError {
    fn from(e: CapacityError) -> Self {
        McuExecError::Capacity(e)
    }
}

/// A `[start, start + cap)` slice of one arena, assigned at load time.
#[derive(Debug, Clone, Copy)]
struct Span {
    start: u32,
    cap: u32,
}

impl Span {
    const EMPTY: Span = Span { start: 0, cap: 0 };

    fn range(self, len: usize) -> Range<usize> {
        let start = self.start as usize;
        start..start + len
    }

    fn full(self) -> Range<usize> {
        self.range(self.cap as usize)
    }

    fn cap(self) -> usize {
        self.cap as usize
    }
}

/// Per-node mutable state plus the arena spans its kind was assigned.
/// One flat struct for all kinds keeps the state table a plain array;
/// each kind touches only its own fields.
#[derive(Debug, Clone, Copy)]
struct NodeState {
    /// Window ring buffer / zcr-variance scratch (sample arena).
    aux_p: Span,
    /// Tabulated taper coefficients (sample arena).
    coeffs: Span,
    /// Moving-average ring / Goertzel probe table (scalar arena).
    aux_f: Span,
    /// Bit-reversal swap table (swap arena).
    swaps: Span,
    /// Live entries in `swaps` once planned.
    swaps_len: u32,
    /// Forward twiddle table (complex arena).
    fwd: Span,
    /// Inverse twiddle table (complex arena).
    inv: Span,
    /// Band-filter keep mask (mask arena).
    mask: Span,
    /// Widening scratch for `f32` pipelines (scalar arena).
    wide_in: Span,
    /// Planned transform length / probed window length; `u32::MAX`
    /// until first planned (mirrors the host's lazily built plans).
    planned_len: u32,
    /// Live probe count in `aux_f` for Goertzel kinds.
    probe_len: u32,
    /// Ring head (windower / moving average).
    head: u32,
    /// Ring fill (windower / moving average).
    fill: u32,
    /// Samples since the last emission (sliding windower).
    since_emit: u32,
    /// Whether the sliding windower has emitted its first window.
    primed: bool,
    /// EMA state value.
    ema: f64,
    /// Whether `ema` holds a previous output.
    ema_set: bool,
    /// Per-port latest sequence tags (joins).
    latest_seq: [u64; MAX_PORTS],
    /// Per-port latest values (joins).
    latest_val: [f64; MAX_PORTS],
    /// Bitmask of ports that have received a value (joins).
    latest_set: u8,
    /// Current streak length (`sustained`).
    streak: u32,
    /// Last arrival sequence (`sustained`).
    last_seq: u64,
    /// Whether `last_seq` is valid.
    has_last: bool,
}

impl NodeState {
    const EMPTY: NodeState = NodeState {
        aux_p: Span::EMPTY,
        coeffs: Span::EMPTY,
        aux_f: Span::EMPTY,
        swaps: Span::EMPTY,
        swaps_len: 0,
        fwd: Span::EMPTY,
        inv: Span::EMPTY,
        mask: Span::EMPTY,
        wide_in: Span::EMPTY,
        planned_len: u32::MAX,
        probe_len: 0,
        head: 0,
        fill: 0,
        since_emit: 0,
        primed: false,
        ema: 0.0,
        ema_set: false,
        latest_seq: [0; MAX_PORTS],
        latest_val: [0.0; MAX_PORTS],
        latest_set: 0,
        streak: 0,
        last_seq: 0,
        has_last: false,
    };

    /// Clears the mutable execution state while keeping spans and plans
    /// — the per-node half of [`McuCore::reset`], mirroring the host
    /// instances' `reset`.
    fn reset(&mut self) {
        self.head = 0;
        self.fill = 0;
        self.since_emit = 0;
        self.primed = false;
        self.ema = 0.0;
        self.ema_set = false;
        self.latest_seq = [0; MAX_PORTS];
        self.latest_val = [0.0; MAX_PORTS];
        self.latest_set = 0;
        self.streak = 0;
        self.last_seq = 0;
        self.has_last = false;
    }
}

/// The type of value a result slot holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotKind {
    Empty,
    Scalar,
    Vector,
    Spectrum,
}

/// One node's result slot: the fixed-capacity twin of the host
/// runtime's `ResultSlot`.
#[derive(Debug, Clone, Copy)]
struct Slot {
    kind: SlotKind,
    seq: u64,
    scalar: f64,
    /// Vector payload span (sample arena) and live length.
    vec: Span,
    vec_len: u32,
    /// Spectrum payload span (complex arena) and live length.
    spec: Span,
    spec_len: u32,
}

impl Slot {
    const EMPTY: Slot = Slot {
        kind: SlotKind::Empty,
        seq: 0,
        scalar: 0.0,
        vec: Span::EMPTY,
        vec_len: 0,
        spec: Span::EMPTY,
        spec_len: 0,
    };

    fn set_scalar(&mut self, seq: u64, value: f64) {
        self.kind = SlotKind::Scalar;
        self.seq = seq;
        self.scalar = value;
    }
}

/// A staged input on its way into a node: scalars by value, payloads by
/// length into the staging arrays they were copied to.
enum Staged {
    Scalar(f64),
    Vector(usize),
    Spectrum(usize),
}

/// A borrowed input value, the mirror of the host's `ValueRef`.
enum In<'a, P: Sample> {
    Scalar(f64),
    Vector(&'a [P]),
    Spectrum(&'a [Complex]),
}

impl<'a, P: Sample> In<'a, P> {
    fn as_scalar(&self) -> Option<f64> {
        match *self {
            In::Scalar(x) => Some(x),
            _ => None,
        }
    }

    fn as_vector(&self) -> Option<&'a [P]> {
        match *self {
            In::Vector(v) => Some(v),
            _ => None,
        }
    }

    fn as_spectrum(&self) -> Option<&'a [Complex]> {
        match *self {
            In::Spectrum(s) => Some(s),
            _ => None,
        }
    }
}

/// Mutable views over every arena, handed to the per-kind executor.
struct Arenas<'a, P: Sample> {
    p: &'a mut [P],
    f: &'a mut [f64],
    c: &'a mut [Complex],
    s: &'a mut [(u32, u32)],
    b: &'a mut [bool],
}

/// Identity of one feed: which node, which port, at what sequence.
#[derive(Clone, Copy)]
struct FeedCtx {
    node: u16,
    port: usize,
    seq: u64,
}

/// What a lazily built transform plan must provide.
struct PlanNeeds {
    fwd: bool,
    inv: bool,
    band: Option<(BandShape, f64)>,
}

/// The `no_std` hub interpreter: loads an [`McuImage`] into
/// fixed-capacity arenas and executes it sample by sample.
///
/// `P` is the vector-payload precision (`f64` for host bit-equivalence,
/// `f32` for hardware-faithful deployments); `CAP` is the per-arena
/// element capacity. The struct is large (roughly `7 * CAP * 8` bytes
/// at `P = f64`); embed it in a `static` or a `Box` rather than the
/// stack for big capacities.
pub struct McuCore<P: Sample = f64, const CAP: usize = DEFAULT_ARENA> {
    image: McuImage,
    loaded: bool,
    states: [NodeState; MAX_NODES],
    slots: [Slot; MAX_NODES],
    channel_seq: [u64; MAX_CHANNELS],
    wake_count: u64,
    /// Elements `load` carved from each bump arena (sample, scalar,
    /// complex, swap, mask) — pinned against the static footprint.
    arena_used: [u32; 5],
    /// Sample-typed arena: window rings, taper tables, vector payloads.
    arena_p: [P; CAP],
    /// f64 arena: moving-average rings, probe tables, widening scratch.
    arena_f: [f64; CAP],
    /// Complex arena: twiddle tables and spectrum payloads.
    arena_c: [Complex; CAP],
    /// Bit-reversal swap tables.
    arena_s: [(u32, u32); CAP],
    /// Band-filter keep masks.
    arena_b: [bool; CAP],
    /// Staging copy of a producer's vector payload while it is fed.
    stage_p: [P; CAP],
    /// Staging copy of a producer's spectrum payload while it is fed.
    stage_c: [Complex; CAP],
}

impl<P: Sample, const CAP: usize> Default for McuCore<P, CAP> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: Sample, const CAP: usize> McuCore<P, CAP> {
    /// Creates an empty core. `const`, so a core can live in a
    /// `static` — the zero-heap deployment shape for MCU targets.
    pub const fn new() -> Self {
        McuCore {
            image: McuImage::EMPTY,
            loaded: false,
            states: [NodeState::EMPTY; MAX_NODES],
            slots: [Slot::EMPTY; MAX_NODES],
            channel_seq: [0; MAX_CHANNELS],
            wake_count: 0,
            arena_used: [0; 5],
            arena_p: [P::ZERO; CAP],
            arena_f: [0.0; CAP],
            arena_c: [Complex::ZERO; CAP],
            arena_s: [(0, 0); CAP],
            arena_b: [false; CAP],
            stage_p: [P::ZERO; CAP],
            stage_c: [Complex::ZERO; CAP],
        }
    }

    /// Whether an image has been loaded.
    pub fn is_loaded(&self) -> bool {
        self.loaded
    }

    /// Total wake-ups since load (or the last [`reset`](Self::reset)).
    pub fn wake_count(&self) -> u64 {
        self.wake_count
    }

    /// The loaded image.
    pub fn image(&self) -> &McuImage {
        &self.image
    }

    /// Elements the last successful `load` carved from each bump arena,
    /// in [`ArenaKind::ALL`](crate::footprint::ArenaKind::ALL) order
    /// (sample, scalar, complex, swap, mask). The soundness harness
    /// pins these against [`image_footprint`](crate::image_footprint).
    pub fn arena_used(&self) -> [usize; 5] {
        [
            self.arena_used[0] as usize,
            self.arena_used[1] as usize,
            self.arena_used[2] as usize,
            self.arena_used[3] as usize,
            self.arena_used[4] as usize,
        ]
    }

    /// Loads an image: validates node parameters and carves every
    /// buffer the program needs out of the arenas.
    ///
    /// Buffer sizes come from a forward pass over the dense node list
    /// (producers precede consumers, so each node's payload length is
    /// known from its first source). Parameter validation mirrors the
    /// host loader's checks and messages.
    ///
    /// # Errors
    ///
    /// [`McuExecError::BadParameter`] on invalid node parameters,
    /// [`McuExecError::ArenaOverflow`] when the program's certified
    /// footprint exceeds `CAP` — raised by a pre-flight
    /// [`check_fit`](crate::footprint::check_fit) pass, naming the
    /// arena and the offending node, before any arena is touched.
    pub fn load(&mut self, image: &McuImage) -> Result<(), McuExecError> {
        self.loaded = false;
        self.states = [NodeState::EMPTY; MAX_NODES];
        self.slots = [Slot::EMPTY; MAX_NODES];
        self.channel_seq = [0; MAX_CHANNELS];
        self.wake_count = 0;
        self.arena_used = [0; 5];

        // Admission first: the static footprint is exact (pinned
        // against the carve below by the equivalence tests), so a
        // rejected image leaves the core exactly as unloaded as a
        // never-loaded one, and the carve below cannot fail.
        crate::footprint::check_fit(image, CAP)?;

        let mut used_p = 0usize;
        let mut used_f = 0usize;
        let mut used_c = 0usize;
        let mut used_s = 0usize;
        let mut used_b = 0usize;
        // Payload length each node emits (0 for scalar producers).
        let mut lens = [0usize; MAX_NODES];

        for (i, spec) in image.nodes().iter().enumerate() {
            let node = i as u16;
            let in_len = match spec.sources[0] {
                PortSource::Channel(_) => 0,
                PortSource::Node(src) => lens[src as usize],
            };
            let mut st = NodeState::EMPTY;
            let mut slot = Slot::EMPTY;
            match spec.kind {
                NodeKind::Window { size, hop, shape } => {
                    let (size, hop) = (size as usize, hop as usize);
                    if size == 0 || hop == 0 || hop > size {
                        return Err(McuExecError::BadParameter {
                            node,
                            what: "window size and hop must be positive",
                        });
                    }
                    st.aux_p = bump(&mut used_p, CAP, size, "sample arena")?;
                    st.coeffs = bump(&mut used_p, CAP, size, "sample arena")?;
                    shape.fill_coefficients(&mut self.arena_p[st.coeffs.full()]);
                    slot.vec = bump(&mut used_p, CAP, size, "sample arena")?;
                    lens[i] = size;
                }
                NodeKind::Fft => {
                    st.swaps = bump(&mut used_s, CAP, plan_swap_cap(in_len), "swap arena")?;
                    st.fwd = bump(&mut used_c, CAP, plan_twiddle_cap(in_len), "complex arena")?;
                    st.wide_in = bump(&mut used_f, CAP, in_len, "scalar arena")?;
                    slot.spec = bump(&mut used_c, CAP, in_len, "complex arena")?;
                    lens[i] = in_len;
                }
                NodeKind::Ifft => {
                    st.swaps = bump(&mut used_s, CAP, plan_swap_cap(in_len), "swap arena")?;
                    st.inv = bump(&mut used_c, CAP, plan_twiddle_cap(in_len), "complex arena")?;
                    slot.spec = bump(&mut used_c, CAP, in_len, "complex arena")?;
                    slot.vec = bump(&mut used_p, CAP, in_len, "sample arena")?;
                    lens[i] = in_len;
                }
                NodeKind::SpectralMagnitude => {
                    let m = if in_len > 0 { in_len / 2 + 1 } else { 0 };
                    slot.vec = bump(&mut used_p, CAP, m, "sample arena")?;
                    lens[i] = m;
                }
                NodeKind::MovingAvg { window } => {
                    if window == 0 {
                        return Err(McuExecError::BadParameter {
                            node,
                            what: "moving-average window must be positive",
                        });
                    }
                    st.aux_f = bump(&mut used_f, CAP, window as usize, "scalar arena")?;
                }
                NodeKind::ExpMovingAvg { alpha } => {
                    if !(alpha > 0.0 && alpha <= 1.0) {
                        return Err(McuExecError::BadParameter {
                            node,
                            what: "smoothing factor must be in (0, 1]",
                        });
                    }
                }
                NodeKind::LowPass { .. } | NodeKind::HighPass { .. } => {
                    st.swaps = bump(&mut used_s, CAP, plan_swap_cap(in_len), "swap arena")?;
                    st.fwd = bump(&mut used_c, CAP, plan_twiddle_cap(in_len), "complex arena")?;
                    st.inv = bump(&mut used_c, CAP, plan_twiddle_cap(in_len), "complex arena")?;
                    st.mask = bump(&mut used_b, CAP, in_len, "mask arena")?;
                    st.wide_in = bump(&mut used_f, CAP, in_len, "scalar arena")?;
                    slot.spec = bump(&mut used_c, CAP, in_len, "complex arena")?;
                    slot.vec = bump(&mut used_p, CAP, in_len, "sample arena")?;
                    lens[i] = in_len;
                }
                NodeKind::ZcrVariance { sub_windows } => {
                    st.aux_p = bump(&mut used_p, CAP, sub_windows as usize, "sample arena")?;
                }
                NodeKind::Goertzel { lo_hz, hi_hz }
                | NodeKind::GoertzelFreq { lo_hz, hi_hz }
                | NodeKind::GoertzelRatio { lo_hz, hi_hz } => {
                    if !(lo_hz.is_finite() && hi_hz.is_finite() && 0.0 <= lo_hz && lo_hz <= hi_hz) {
                        return Err(McuExecError::BadParameter {
                            node,
                            what: "goertzel band must be finite with 0 <= lo <= hi",
                        });
                    }
                    let probes = if in_len > 0 { in_len / 2 + 1 } else { 0 };
                    st.aux_f = bump(&mut used_f, CAP, probes, "scalar arena")?;
                }
                NodeKind::VectorMagnitude
                | NodeKind::Zcr
                | NodeKind::Stat(_)
                | NodeKind::DominantRatio
                | NodeKind::DominantFreq
                | NodeKind::MinThreshold { .. }
                | NodeKind::MaxThreshold { .. }
                | NodeKind::BandThreshold { .. }
                | NodeKind::OutsideThreshold { .. }
                | NodeKind::Sustained { .. }
                | NodeKind::AllOf
                | NodeKind::AnyOf => {}
            }
            self.states[i] = st;
            self.slots[i] = slot;
        }

        self.arena_used = [
            used_p as u32,
            used_f as u32,
            used_c as u32,
            used_s as u32,
            used_b as u32,
        ];
        self.image = *image;
        self.loaded = true;
        Ok(())
    }

    /// Ingests one sample on a channel, running a full interpreter pass
    /// and invoking `on_wake` for each wake-up it produces — the mirror
    /// of the host runtime's masked pass.
    ///
    /// # Errors
    ///
    /// [`McuExecError::NotLoaded`] before a `load`, otherwise the
    /// execution errors of the nodes the sample reaches.
    pub fn push_sample(
        &mut self,
        channel: u8,
        sample: f64,
        on_wake: &mut impl FnMut(WakeEvent),
    ) -> Result<(), McuExecError> {
        self.push_sample_probed(channel, sample, on_wake, &mut NoProbe)
    }

    /// [`push_sample`](Self::push_sample) with an [`ExecProbe`]
    /// observing staging copies and fresh results. With [`NoProbe`]
    /// this *is* `push_sample` — the hooks compile away.
    ///
    /// # Errors
    ///
    /// As [`push_sample`](Self::push_sample).
    pub fn push_sample_probed<Pr: ExecProbe>(
        &mut self,
        channel: u8,
        sample: f64,
        on_wake: &mut impl FnMut(WakeEvent),
        probe: &mut Pr,
    ) -> Result<(), McuExecError> {
        if !self.loaded {
            return Err(McuExecError::NotLoaded);
        }
        let ci = channel as usize;
        if ci >= MAX_CHANNELS {
            return Err(McuExecError::BadChannel { channel });
        }
        let seq = self.channel_seq[ci];
        self.channel_seq[ci] += 1;

        let mut ready = self.image.entry_mask(ci);
        let mut fresh: u128 = 0;
        // Single-source entry nodes first, in increasing index order,
        // without consulting the ready set — exactly the host pass.
        let mut direct = self.image.direct_feed_mask(ci);
        while direct != 0 {
            let i = direct.trailing_zeros() as usize;
            direct &= direct - 1;
            self.slots[i].kind = SlotKind::Empty;
            self.dispatch(i, 0, seq, Staged::Scalar(sample))?;
            self.note_result(i, &mut ready, &mut fresh, on_wake, probe);
        }
        while ready != 0 {
            let i = ready.trailing_zeros() as usize;
            ready &= ready - 1;
            self.slots[i].kind = SlotKind::Empty;
            let spec = self.image.nodes()[i];
            for port in 0..spec.port_count as usize {
                match spec.sources[port] {
                    PortSource::Channel(c) if c == channel => {
                        self.dispatch(i, port, seq, Staged::Scalar(sample))?;
                    }
                    PortSource::Channel(_) => {}
                    PortSource::Node(src) => {
                        if fresh & (1u128 << src) != 0 {
                            self.feed_from(i, port, src as usize, probe)?;
                        }
                    }
                }
            }
            self.note_result(i, &mut ready, &mut fresh, on_wake, probe);
        }
        Ok(())
    }

    /// Ingests a batch of samples on one channel.
    ///
    /// # Errors
    ///
    /// Stops at the first failing sample; see [`push_sample`](Self::push_sample).
    pub fn push_samples(
        &mut self,
        channel: u8,
        samples: &[f64],
        on_wake: &mut impl FnMut(WakeEvent),
    ) -> Result<(), McuExecError> {
        for &x in samples {
            self.push_sample(channel, x, on_wake)?;
        }
        Ok(())
    }

    /// [`push_samples`](Self::push_samples) with an [`ExecProbe`].
    ///
    /// # Errors
    ///
    /// Stops at the first failing sample; see [`push_sample`](Self::push_sample).
    pub fn push_samples_probed<Pr: ExecProbe>(
        &mut self,
        channel: u8,
        samples: &[f64],
        on_wake: &mut impl FnMut(WakeEvent),
        probe: &mut Pr,
    ) -> Result<(), McuExecError> {
        for &x in samples {
            self.push_sample_probed(channel, x, on_wake, probe)?;
        }
        Ok(())
    }

    /// Resets all mutable execution state (rings, averages, streaks,
    /// sequence counters) while keeping the image, arena layout, and
    /// built transform plans — the mirror of the host runtime's
    /// `reset`.
    pub fn reset(&mut self) {
        for st in self.states.iter_mut() {
            st.reset();
        }
        for slot in self.slots.iter_mut() {
            slot.kind = SlotKind::Empty;
        }
        self.channel_seq = [0; MAX_CHANNELS];
        self.wake_count = 0;
    }

    /// Books node `i`'s result into the ready/fresh sets and fires the
    /// wake callback when it is the scalar-producing output node.
    fn note_result<Pr: ExecProbe>(
        &mut self,
        i: usize,
        ready: &mut u128,
        fresh: &mut u128,
        on_wake: &mut impl FnMut(WakeEvent),
        probe: &mut Pr,
    ) {
        let slot = self.slots[i];
        if slot.kind == SlotKind::Empty {
            return;
        }
        if Pr::ENABLED {
            probe.emitted(i as u16);
        }
        *fresh |= 1u128 << i;
        *ready |= self.image.nodes()[i].consumer_mask;
        if i == self.image.out_index() && slot.kind == SlotKind::Scalar {
            self.wake_count += 1;
            on_wake(WakeEvent {
                seq: slot.seq,
                value: slot.scalar,
            });
        }
    }

    /// Copies producer `src`'s result into the staging arrays and feeds
    /// it to node `i` on `port`, tagged with the producer's sequence.
    fn feed_from<Pr: ExecProbe>(
        &mut self,
        i: usize,
        port: usize,
        src: usize,
        probe: &mut Pr,
    ) -> Result<(), McuExecError> {
        let slot = self.slots[src];
        let staged = match slot.kind {
            SlotKind::Empty => return Ok(()),
            SlotKind::Scalar => Staged::Scalar(slot.scalar),
            SlotKind::Vector => {
                let len = slot.vec_len as usize;
                if Pr::ENABLED {
                    probe.staged_vector(src as u16, len);
                }
                self.stage_p[..len].copy_from_slice(&self.arena_p[slot.vec.range(len)]);
                Staged::Vector(len)
            }
            SlotKind::Spectrum => {
                let len = slot.spec_len as usize;
                if Pr::ENABLED {
                    probe.staged_spectrum(src as u16, len);
                }
                self.stage_c[..len].copy_from_slice(&self.arena_c[slot.spec.range(len)]);
                Staged::Spectrum(len)
            }
        };
        self.dispatch(i, port, slot.seq, staged)
    }

    /// Resolves the staged input into a borrowed value and runs the
    /// node's kind over the arenas.
    fn dispatch(
        &mut self,
        i: usize,
        port: usize,
        seq: u64,
        staged: Staged,
    ) -> Result<(), McuExecError> {
        let McuCore {
            image,
            states,
            slots,
            arena_p,
            arena_f,
            arena_c,
            arena_s,
            arena_b,
            stage_p,
            stage_c,
            ..
        } = self;
        let spec = image.nodes()[i];
        let input = match staged {
            Staged::Scalar(x) => In::Scalar(x),
            Staged::Vector(len) => In::Vector(&stage_p[..len]),
            Staged::Spectrum(len) => In::Spectrum(&stage_c[..len]),
        };
        exec_kind(
            FeedCtx {
                node: i as u16,
                port,
                seq,
            },
            &spec,
            &mut states[i],
            &mut slots[i],
            Arenas {
                p: &mut arena_p[..],
                f: &mut arena_f[..],
                c: &mut arena_c[..],
                s: &mut arena_s[..],
                b: &mut arena_b[..],
            },
            input,
        )
    }
}

/// Bump-allocates `need` elements from an arena of `total` capacity.
fn bump(
    used: &mut usize,
    total: usize,
    need: usize,
    what: &'static str,
) -> Result<Span, McuExecError> {
    if *used + need > total {
        return Err(McuExecError::Capacity(CapacityError {
            what,
            needed: *used + need,
            capacity: total,
        }));
    }
    let span = Span {
        start: *used as u32,
        cap: need as u32,
    };
    *used += need;
    Ok(span)
}

/// Swap-table capacity to reserve for a predicted transform length.
/// Non-power-of-two predictions reserve nothing: the plan will fail
/// with `BadTransformLength` before the table is needed.
pub(crate) fn plan_swap_cap(n: usize) -> usize {
    if fft::is_power_of_two(n) {
        fft::swap_count(n)
    } else {
        0
    }
}

/// Twiddle-table capacity to reserve for a predicted transform length.
pub(crate) fn plan_twiddle_cap(n: usize) -> usize {
    if fft::is_power_of_two(n) {
        fft::twiddle_count(n)
    } else {
        0
    }
}

/// Two disjoint mutable subslices of one slice, in either order.
fn two_ranges<T>(s: &mut [T], a: Range<usize>, b: Range<usize>) -> (&mut [T], &mut [T]) {
    if a.end <= b.start {
        let (lo, hi) = s.split_at_mut(b.start);
        let b_len = b.end - b.start;
        (&mut lo[a], &mut hi[..b_len])
    } else {
        debug_assert!(b.end <= a.start, "overlapping arena spans");
        let (lo, hi) = s.split_at_mut(a.start);
        let a_len = a.end - a.start;
        (&mut hi[..a_len], &mut lo[b])
    }
}

/// Three disjoint mutable subslices; `c` must lie after `a` and `b`
/// (the bump allocator hands out ascending spans, so per-node span
/// triples always satisfy this).
fn tri_ranges<T>(
    s: &mut [T],
    a: Range<usize>,
    b: Range<usize>,
    c: Range<usize>,
) -> (&mut [T], &mut [T], &mut [T]) {
    debug_assert!(a.end <= c.start && b.end <= c.start, "span order violated");
    let (rest, tail) = s.split_at_mut(c.start);
    let c_len = c.end - c.start;
    let (a_s, b_s) = two_ranges(rest, a, b);
    (a_s, b_s, &mut tail[..c_len])
}

/// (Re)builds a node's transform tables when the incoming window length
/// differs from the planned length — the fixed-capacity mirror of the
/// host's `ensure_fft_plan` / `ensure_band_plan`.
fn ensure_plan(
    node: u16,
    st: &mut NodeState,
    n: usize,
    s: &mut [(u32, u32)],
    c: &mut [Complex],
    b: &mut [bool],
    needs: &PlanNeeds,
) -> Result<(), McuExecError> {
    if st.planned_len == n as u32 {
        return Ok(());
    }
    fft::check_len(n).map_err(|e| McuExecError::BadTransformLength { node, len: e.len })?;
    let sc = fft::swap_count(n);
    let tc = fft::twiddle_count(n);
    if sc > st.swaps.cap() {
        return Err(arena_overflow("swap arena", sc, st.swaps.cap()));
    }
    if needs.fwd && tc > st.fwd.cap() {
        return Err(arena_overflow("complex arena", tc, st.fwd.cap()));
    }
    if needs.inv && tc > st.inv.cap() {
        return Err(arena_overflow("complex arena", tc, st.inv.cap()));
    }
    if needs.band.is_some() && n > st.mask.cap() {
        return Err(arena_overflow("mask arena", n, st.mask.cap()));
    }
    {
        let swaps = &mut s[st.swaps.range(sc)];
        let mut k = 0;
        fft::for_each_swap(n, |i, j| {
            swaps[k] = (i, j);
            k += 1;
        });
        st.swaps_len = sc as u32;
    }
    if needs.fwd {
        let table = &mut c[st.fwd.range(tc)];
        let mut k = 0;
        fft::for_each_twiddle(n, -1.0, |w| {
            table[k] = w;
            k += 1;
        });
    }
    if needs.inv {
        let table = &mut c[st.inv.range(tc)];
        let mut k = 0;
        fft::for_each_twiddle(n, 1.0, |w| {
            table[k] = w;
            k += 1;
        });
    }
    if let Some((shape, rate)) = needs.band {
        filter::fill_keep_mask(&mut b[st.mask.range(n)], rate, shape);
    }
    st.planned_len = n as u32;
    Ok(())
}

/// Rebuilds a Goertzel node's probe table when the window length
/// changes — the mirror of the host's `replan_probes`.
fn replan_probes(
    st: &mut NodeState,
    f: &mut [f64],
    n: usize,
    rate_hz: f64,
    lo_hz: f64,
    hi_hz: f64,
    skip_dc: bool,
) -> Result<(), McuExecError> {
    if st.planned_len == n as u32 {
        return Ok(());
    }
    st.planned_len = n as u32;
    st.probe_len = 0;
    if rate_hz > 0.0 && n > 0 {
        let dst = &mut f[st.aux_f.full()];
        let mut count = 0usize;
        for k in usize::from(skip_dc)..=n / 2 {
            let freq = fft::bin_to_frequency(k, n, rate_hz);
            if lo_hz <= freq && freq <= hi_hz {
                if count >= dst.len() {
                    return Err(arena_overflow("scalar arena", count + 1, dst.len()));
                }
                dst[count] = freq;
                count += 1;
            }
        }
        st.probe_len = count as u32;
    }
    Ok(())
}

fn arena_overflow(what: &'static str, needed: usize, capacity: usize) -> McuExecError {
    McuExecError::Capacity(CapacityError {
        what,
        needed,
        capacity,
    })
}

/// Copies the window ring (in logical order starting at `head`) into
/// the node's output span and applies the tabulated taper — the mirror
/// of the host `Windower::emit_into`.
fn emit_window<P: Sample>(
    p: &mut [P],
    st: &NodeState,
    slot: &Slot,
    len: usize,
    shape: WindowShape,
    head: usize,
) {
    let (ring, coeffs, out) = tri_ranges(
        p,
        st.aux_p.range(len),
        st.coeffs.range(len),
        slot.vec.range(len),
    );
    for (k, slot) in out.iter_mut().enumerate() {
        *slot = ring[(head + k) % len];
    }
    if shape != WindowShape::Rectangular {
        for (x, &cf) in out.iter_mut().zip(coeffs.iter()) {
            *x = *x * cf;
        }
    }
}

/// Executes one feed against one node — every per-kind body is the
/// operation-for-operation mirror of the host `AlgoInstance::feed_ref`.
fn exec_kind<P: Sample>(
    ctx: FeedCtx,
    spec: &NodeSpec,
    st: &mut NodeState,
    slot: &mut Slot,
    ar: Arenas<'_, P>,
    input: In<'_, P>,
) -> Result<(), McuExecError> {
    let Arenas { p, f, c, s, b } = ar;
    let node = ctx.node;
    let seq = ctx.seq;
    let type_err = McuExecError::TypeError { node };
    match spec.kind {
        NodeKind::Window { size, hop, shape } => {
            let x = input.as_scalar().ok_or(type_err)?;
            // The precision boundary: samples narrow to `P` as they
            // enter the ring, exactly like the host windower.
            let x = P::from_f64(x);
            let (len, hop) = (size as usize, hop as usize);
            let ring_start = st.aux_p.start as usize;
            if hop == len {
                // Non-overlapping windows partition the stream:
                // sequential fill, emit, restart.
                p[ring_start + st.fill as usize] = x;
                st.fill += 1;
                if (st.fill as usize) < len {
                    return Ok(());
                }
                emit_window(p, st, slot, len, shape, 0);
                st.fill = 0;
            } else {
                if st.fill as usize == len {
                    st.head = ((st.head as usize + 1) % len) as u32;
                    st.fill -= 1;
                }
                p[ring_start + (st.head as usize + st.fill as usize) % len] = x;
                st.fill += 1;
                if (st.fill as usize) < len {
                    return Ok(());
                }
                let emit = if !st.primed {
                    st.primed = true;
                    st.since_emit = 0;
                    true
                } else {
                    st.since_emit += 1;
                    if st.since_emit as usize == hop {
                        st.since_emit = 0;
                        true
                    } else {
                        false
                    }
                };
                if !emit {
                    return Ok(());
                }
                emit_window(p, st, slot, len, shape, st.head as usize);
            }
            slot.kind = SlotKind::Vector;
            slot.vec_len = len as u32;
            slot.seq = seq;
        }
        NodeKind::Fft => {
            let window = input.as_vector().ok_or(type_err)?;
            let n = window.len();
            ensure_plan(
                node,
                st,
                n,
                s,
                c,
                b,
                &PlanNeeds {
                    fwd: true,
                    inv: false,
                    band: None,
                },
            )?;
            if n > st.wide_in.cap() {
                return Err(arena_overflow("scalar arena", n, st.wide_in.cap()));
            }
            if n > slot.spec.cap() {
                return Err(arena_overflow("complex arena", n, slot.spec.cap()));
            }
            let wide = P::widen_slice_into(window, &mut f[st.wide_in.full()]);
            let (spec_s, fwd_s) =
                two_ranges(c, slot.spec.range(n), st.fwd.range(fft::twiddle_count(n)));
            for (z, &x) in spec_s.iter_mut().zip(wide.iter()) {
                *z = Complex::from_real(x);
            }
            fft::run_butterflies(spec_s, &s[st.swaps.range(st.swaps_len as usize)], fwd_s);
            slot.kind = SlotKind::Spectrum;
            slot.spec_len = n as u32;
            slot.seq = seq;
        }
        NodeKind::Ifft => {
            let spectrum = input.as_spectrum().ok_or(type_err)?;
            let n = spectrum.len();
            ensure_plan(
                node,
                st,
                n,
                s,
                c,
                b,
                &PlanNeeds {
                    fwd: false,
                    inv: true,
                    band: None,
                },
            )?;
            if n > slot.spec.cap() {
                return Err(arena_overflow("complex arena", n, slot.spec.cap()));
            }
            if n > slot.vec.cap() {
                return Err(arena_overflow("sample arena", n, slot.vec.cap()));
            }
            // The spectrum span doubles as the inverse-transform
            // scratch; the result itself is the real part, a vector.
            let (spec_s, inv_s) =
                two_ranges(c, slot.spec.range(n), st.inv.range(fft::twiddle_count(n)));
            spec_s.copy_from_slice(spectrum);
            fft::run_butterflies(spec_s, &s[st.swaps.range(st.swaps_len as usize)], inv_s);
            fft::scale_inverse(spec_s);
            for (o, z) in p[slot.vec.range(n)].iter_mut().zip(spec_s.iter()) {
                *o = P::from_f64(z.re);
            }
            slot.kind = SlotKind::Vector;
            slot.vec_len = n as u32;
            slot.seq = seq;
        }
        NodeKind::SpectralMagnitude => {
            let spectrum = input.as_spectrum().ok_or(type_err)?;
            if !spectrum.is_empty() {
                let m = spectrum.len() / 2 + 1;
                if m > slot.vec.cap() {
                    return Err(arena_overflow("sample arena", m, slot.vec.cap()));
                }
                for (o, z) in p[slot.vec.range(m)].iter_mut().zip(spectrum[..m].iter()) {
                    *o = P::from_f64(z.magnitude());
                }
                slot.kind = SlotKind::Vector;
                slot.vec_len = m as u32;
                slot.seq = seq;
            }
        }
        NodeKind::MovingAvg { window } => {
            let x = input.as_scalar().ok_or(type_err)?;
            let w = window as usize;
            let ring = &mut f[st.aux_f.range(w)];
            if st.fill as usize == w {
                st.head = ((st.head as usize + 1) % w) as u32;
                st.fill -= 1;
            }
            ring[(st.head as usize + st.fill as usize) % w] = x;
            st.fill += 1;
            if st.fill as usize == w {
                // Oldest-to-newest sum from zero, then divide: the
                // exact reduction order of the host moving average.
                let mut sum = 0.0;
                for k in 0..w {
                    sum += ring[(st.head as usize + k) % w];
                }
                slot.set_scalar(seq, sum / w as f64);
            }
        }
        NodeKind::ExpMovingAvg { alpha } => {
            let x = input.as_scalar().ok_or(type_err)?;
            let y = if st.ema_set {
                alpha * x + (1.0 - alpha) * st.ema
            } else {
                x
            };
            st.ema = y;
            st.ema_set = true;
            slot.set_scalar(seq, y);
        }
        NodeKind::LowPass { cutoff_hz } | NodeKind::HighPass { cutoff_hz } => {
            let window = input.as_vector().ok_or(type_err)?;
            let n = window.len();
            let shape = if matches!(spec.kind, NodeKind::LowPass { .. }) {
                BandShape::LowPass { cutoff_hz }
            } else {
                BandShape::HighPass { cutoff_hz }
            };
            ensure_plan(
                node,
                st,
                n,
                s,
                c,
                b,
                &PlanNeeds {
                    fwd: true,
                    inv: true,
                    band: Some((shape, spec.rate_hz)),
                },
            )?;
            if n > st.wide_in.cap() {
                return Err(arena_overflow("scalar arena", n, st.wide_in.cap()));
            }
            if n > slot.spec.cap() {
                return Err(arena_overflow("complex arena", n, slot.spec.cap()));
            }
            if n > slot.vec.cap() {
                return Err(arena_overflow("sample arena", n, slot.vec.cap()));
            }
            let tc = fft::twiddle_count(n);
            let wide = P::widen_slice_into(window, &mut f[st.wide_in.full()]);
            {
                let (spec_s, fwd_s) = two_ranges(c, slot.spec.range(n), st.fwd.range(tc));
                for (z, &x) in spec_s.iter_mut().zip(wide.iter()) {
                    *z = Complex::from_real(x);
                }
                fft::run_butterflies(spec_s, &s[st.swaps.range(st.swaps_len as usize)], fwd_s);
                for (z, &keep) in spec_s.iter_mut().zip(b[st.mask.range(n)].iter()) {
                    if !keep {
                        *z = Complex::ZERO;
                    }
                }
            }
            {
                let (spec_s, inv_s) = two_ranges(c, slot.spec.range(n), st.inv.range(tc));
                fft::run_butterflies(spec_s, &s[st.swaps.range(st.swaps_len as usize)], inv_s);
                fft::scale_inverse(spec_s);
                for (o, z) in p[slot.vec.range(n)].iter_mut().zip(spec_s.iter()) {
                    *o = P::from_f64(z.re);
                }
            }
            slot.kind = SlotKind::Vector;
            slot.vec_len = n as u32;
            slot.seq = seq;
        }
        NodeKind::VectorMagnitude => {
            let x = input.as_scalar().ok_or(type_err)?;
            let ports = spec.port_count as usize;
            if ctx.port >= ports {
                return Err(McuExecError::BadPort {
                    node,
                    port: ctx.port,
                });
            }
            st.latest_seq[ctx.port] = seq;
            st.latest_val[ctx.port] = x;
            st.latest_set |= 1 << ctx.port;
            // Emit only when every branch has produced a value from
            // the same source samples: a stale axis must never be
            // combined with a fresh one.
            let all = (0..ports).all(|k| st.latest_set & (1 << k) != 0 && st.latest_seq[k] == seq);
            if all {
                let mut energy = 0.0;
                for k in 0..ports {
                    let v = st.latest_val[k];
                    energy += v * v;
                }
                slot.set_scalar(seq, math::sqrt(energy));
            }
        }
        NodeKind::Zcr => {
            let window = input.as_vector().ok_or(type_err)?;
            if let Some(r) = zcr::zero_crossing_rate(window) {
                slot.set_scalar(seq, r.to_f64());
            }
        }
        NodeKind::ZcrVariance { sub_windows } => {
            let window = input.as_vector().ok_or(type_err)?;
            let scratch = &mut p[st.aux_p.full()];
            if let Some(v) = zcr::zcr_variance_into(window, sub_windows as usize, scratch) {
                slot.set_scalar(seq, v.to_f64());
            }
        }
        NodeKind::Stat(sf) => {
            let window = input.as_vector().ok_or(type_err)?;
            if let Some(summary) = stats::Summary::of(window) {
                let y = match sf {
                    StatKind::Mean => summary.mean,
                    StatKind::Variance => summary.variance,
                    StatKind::StdDev => summary.std_dev(),
                    StatKind::MeanAbs => stats::mean_abs(window).ok_or(type_err)?,
                    StatKind::Rms => summary.rms,
                    StatKind::Energy => stats::energy(window),
                    StatKind::Min => summary.min,
                    StatKind::Max => summary.max,
                    StatKind::PeakToPeak => summary.peak_to_peak(),
                };
                slot.set_scalar(seq, y.to_f64());
            }
        }
        NodeKind::DominantRatio => {
            let mags = input.as_vector().ok_or(type_err)?;
            // Skip DC: pitched-sound detection must not be fooled by
            // offset.
            if mags.len() > 1 {
                if let Some(r) = spectral::dominant_to_mean_ratio(&mags[1..]) {
                    slot.set_scalar(seq, r.to_f64());
                }
            }
        }
        NodeKind::DominantFreq => {
            let mags = input.as_vector().ok_or(type_err)?;
            if mags.len() > 1 {
                if let Some(peak) = spectral::dominant_bin(&mags[1..]) {
                    // One-sided magnitudes of an N-point transform have
                    // N/2+1 entries.
                    let n = (mags.len() - 1) * 2;
                    let freq = fft::bin_to_frequency(peak.bin + 1, n, spec.rate_hz);
                    slot.set_scalar(seq, freq);
                }
            }
        }
        NodeKind::Goertzel { lo_hz, hi_hz } => {
            let window = input.as_vector().ok_or(type_err)?;
            replan_probes(st, f, window.len(), spec.rate_hz, lo_hz, hi_hz, false)?;
            let probes = &f[st.aux_f.range(st.probe_len as usize)];
            if let Some(m) = goertzel::strongest_magnitude(window, probes, spec.rate_hz) {
                slot.set_scalar(seq, m);
            }
        }
        NodeKind::GoertzelFreq { lo_hz, hi_hz } => {
            let window = input.as_vector().ok_or(type_err)?;
            replan_probes(st, f, window.len(), spec.rate_hz, lo_hz, hi_hz, true)?;
            let probes = &f[st.aux_f.range(st.probe_len as usize)];
            if let Some((freq, _)) = goertzel::strongest_of(window, probes, spec.rate_hz) {
                slot.set_scalar(seq, freq);
            }
        }
        NodeKind::GoertzelRatio { lo_hz, hi_hz } => {
            let window = input.as_vector().ok_or(type_err)?;
            replan_probes(st, f, window.len(), spec.rate_hz, lo_hz, hi_hz, true)?;
            let probes = &f[st.aux_f.range(st.probe_len as usize)];
            if let Some((peak, sum)) = goertzel::magnitude_max_and_sum(window, probes, spec.rate_hz)
            {
                // Peak over the mean of all n/2 non-DC bins, with the
                // in-band sum standing in for the total; a zero sum
                // mirrors `dominantRatio`'s no-emission guard.
                let bins = (window.len() / 2) as f64;
                if sum > 0.0 && bins > 0.0 {
                    slot.set_scalar(seq, peak * bins / sum);
                }
            }
        }
        NodeKind::MinThreshold { threshold } => {
            let x = input.as_scalar().ok_or(type_err)?;
            if x >= threshold {
                slot.set_scalar(seq, x);
            }
        }
        NodeKind::MaxThreshold { threshold } => {
            let x = input.as_scalar().ok_or(type_err)?;
            if x <= threshold {
                slot.set_scalar(seq, x);
            }
        }
        NodeKind::BandThreshold { lo, hi } => {
            let x = input.as_scalar().ok_or(type_err)?;
            if x >= lo && x <= hi {
                slot.set_scalar(seq, x);
            }
        }
        NodeKind::OutsideThreshold { lo, hi } => {
            let x = input.as_scalar().ok_or(type_err)?;
            if x < lo || x > hi {
                slot.set_scalar(seq, x);
            }
        }
        NodeKind::Sustained { count, max_gap } => {
            let x = input.as_scalar().ok_or(type_err)?;
            let consecutive = st.has_last && seq.saturating_sub(st.last_seq) <= max_gap;
            st.streak = if consecutive { st.streak + 1 } else { 1 };
            st.last_seq = seq;
            st.has_last = true;
            if st.streak >= count {
                slot.set_scalar(seq, x);
            }
        }
        NodeKind::AllOf => {
            let x = input.as_scalar().ok_or(type_err)?;
            let ports = spec.port_count as usize;
            if ctx.port >= ports {
                return Err(McuExecError::BadPort {
                    node,
                    port: ctx.port,
                });
            }
            st.latest_seq[ctx.port] = seq;
            st.latest_val[ctx.port] = x;
            st.latest_set |= 1 << ctx.port;
            // AND-join over the same window: all branches must have
            // passed their admission control for this seq.
            let all = (0..ports).all(|k| st.latest_set & (1 << k) != 0 && st.latest_seq[k] == seq);
            if all {
                slot.set_scalar(seq, x);
            }
        }
        NodeKind::AnyOf => {
            let x = input.as_scalar().ok_or(type_err)?;
            slot.set_scalar(seq, x);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::ImageBuilder;
    use std::string::ToString;
    use std::vec::Vec;

    fn collect_wakes<P: Sample, const CAP: usize>(
        core: &mut McuCore<P, CAP>,
        channel: u8,
        samples: &[f64],
    ) -> Vec<WakeEvent> {
        let mut wakes = Vec::new();
        core.push_samples(channel, samples, &mut |w| wakes.push(w))
            .unwrap();
        wakes
    }

    #[test]
    fn const_init_lives_in_a_static() {
        static CORE: McuCore<f64, 16> = McuCore::new();
        assert!(!CORE.is_loaded());
        assert_eq!(CORE.wake_count(), 0);
    }

    #[test]
    fn push_before_load_is_an_error() {
        let mut core: McuCore<f64, 16> = McuCore::new();
        let err = core.push_sample(0, 1.0, &mut |_| {}).unwrap_err();
        assert_eq!(err, McuExecError::NotLoaded);
        assert!(err.to_string().contains("no program image"));
    }

    #[test]
    fn moving_average_threshold_chain_wakes() {
        let mut b = ImageBuilder::new();
        let avg = b
            .push_node(
                NodeKind::MovingAvg { window: 4 },
                &[PortSource::Channel(0)],
                50.0,
            )
            .unwrap();
        let thr = b
            .push_node(
                NodeKind::MinThreshold { threshold: 3.0 },
                &[PortSource::Node(avg)],
                50.0,
            )
            .unwrap();
        let image = b.finish(thr).unwrap();
        let mut core: McuCore<f64, 64> = McuCore::new();
        core.load(&image).unwrap();
        let samples: Vec<f64> = (1..=8).map(f64::from).collect();
        let wakes = collect_wakes(&mut core, 0, &samples);
        // Averages 2.5, 3.5, 4.5, 5.5, 6.5 at seqs 3..=7; >= 3.0 from
        // the second on.
        assert_eq!(wakes.len(), 4);
        assert_eq!(wakes[0], WakeEvent { seq: 4, value: 3.5 });
        assert_eq!(wakes[3], WakeEvent { seq: 7, value: 6.5 });
        assert_eq!(core.wake_count(), 4);
    }

    #[test]
    fn window_mean_pipeline_emits_window_means() {
        let mut b = ImageBuilder::new();
        let win = b
            .push_node(
                NodeKind::Window {
                    size: 4,
                    hop: 4,
                    shape: WindowShape::Rectangular,
                },
                &[PortSource::Channel(0)],
                50.0,
            )
            .unwrap();
        let stat = b
            .push_node(
                NodeKind::Stat(StatKind::Mean),
                &[PortSource::Node(win)],
                50.0,
            )
            .unwrap();
        let image = b.finish(stat).unwrap();
        let mut core: McuCore<f64, 64> = McuCore::new();
        core.load(&image).unwrap();
        let samples: Vec<f64> = (0..8).map(f64::from).collect();
        let wakes = collect_wakes(&mut core, 0, &samples);
        assert_eq!(wakes.len(), 2);
        assert_eq!(wakes[0], WakeEvent { seq: 3, value: 1.5 });
        assert_eq!(wakes[1], WakeEvent { seq: 7, value: 5.5 });
    }

    #[test]
    fn sliding_window_hop_and_taper_match_the_host_windower() {
        // hop 2 over size 4 with a Hamming taper: first emission at
        // seq 3, then every 2 samples, each window tapered.
        let mut b = ImageBuilder::new();
        let win = b
            .push_node(
                NodeKind::Window {
                    size: 4,
                    hop: 2,
                    shape: WindowShape::Hamming,
                },
                &[PortSource::Channel(0)],
                50.0,
            )
            .unwrap();
        let stat = b
            .push_node(
                NodeKind::Stat(StatKind::Mean),
                &[PortSource::Node(win)],
                50.0,
            )
            .unwrap();
        let image = b.finish(stat).unwrap();
        let mut core: McuCore<f64, 64> = McuCore::new();
        core.load(&image).unwrap();
        let samples: Vec<f64> = (1..=8).map(f64::from).collect();
        let wakes = collect_wakes(&mut core, 0, &samples);
        assert_eq!(
            wakes.iter().map(|w| w.seq).collect::<Vec<_>>(),
            [3, 5, 7],
            "hop-2 emission schedule"
        );
        let coeffs = WindowShape::Hamming.coefficients(4);
        for (w, start) in wakes.iter().zip([1.0f64, 3.0, 5.0]) {
            let expect = (0..4).map(|k| (start + k as f64) * coeffs[k]).sum::<f64>() / 4.0;
            assert_eq!(w.value.to_bits(), expect.to_bits());
        }
    }

    #[test]
    fn fft_pipeline_is_bit_identical_to_reference_kernels() {
        let mut b = ImageBuilder::new();
        let win = b
            .push_node(
                NodeKind::Window {
                    size: 8,
                    hop: 8,
                    shape: WindowShape::Hamming,
                },
                &[PortSource::Channel(0)],
                80.0,
            )
            .unwrap();
        let fft_n = b
            .push_node(NodeKind::Fft, &[PortSource::Node(win)], 80.0)
            .unwrap();
        let mag = b
            .push_node(
                NodeKind::SpectralMagnitude,
                &[PortSource::Node(fft_n)],
                80.0,
            )
            .unwrap();
        let stat = b
            .push_node(
                NodeKind::Stat(StatKind::Max),
                &[PortSource::Node(mag)],
                80.0,
            )
            .unwrap();
        let image = b.finish(stat).unwrap();
        let mut core: McuCore<f64, 256> = McuCore::new();
        core.load(&image).unwrap();
        let samples: Vec<f64> = (0..8).map(|i| (i as f64 * 0.9).sin()).collect();
        let wakes = collect_wakes(&mut core, 0, &samples);
        assert_eq!(wakes.len(), 1);
        assert_eq!(wakes[0].seq, 7);

        let coeffs = WindowShape::Hamming.coefficients(8);
        let mut data: Vec<Complex> = samples
            .iter()
            .zip(&coeffs)
            .map(|(&x, &cf)| Complex::from_real(x * cf))
            .collect();
        fft::transform(&mut data, false);
        let mags: Vec<f64> = data[..5].iter().map(|z| z.magnitude()).collect();
        let expect = stats::Summary::of(&mags).unwrap().max;
        assert_eq!(wakes[0].value.to_bits(), expect.to_bits());
    }

    #[test]
    fn lowpass_pipeline_matches_manual_band_filter() {
        let n = 16;
        let rate = 1600.0;
        let cutoff = 300.0;
        let mut b = ImageBuilder::new();
        let win = b
            .push_node(
                NodeKind::Window {
                    size: n as u32,
                    hop: n as u32,
                    shape: WindowShape::Rectangular,
                },
                &[PortSource::Channel(0)],
                rate,
            )
            .unwrap();
        let lp = b
            .push_node(
                NodeKind::LowPass { cutoff_hz: cutoff },
                &[PortSource::Node(win)],
                rate,
            )
            .unwrap();
        let stat = b
            .push_node(NodeKind::Stat(StatKind::Rms), &[PortSource::Node(lp)], rate)
            .unwrap();
        let image = b.finish(stat).unwrap();
        let mut core: McuCore<f64, 512> = McuCore::new();
        core.load(&image).unwrap();
        let samples: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / rate;
                (2.0 * core::f64::consts::PI * 100.0 * t).sin()
                    + (2.0 * core::f64::consts::PI * 600.0 * t).sin()
            })
            .collect();
        let wakes = collect_wakes(&mut core, 0, &samples);
        assert_eq!(wakes.len(), 1);

        // Manual reference: forward transform, zero masked bins,
        // inverse, scale, take real parts, RMS.
        let mut mask = std::vec![false; n];
        filter::fill_keep_mask(&mut mask, rate, BandShape::LowPass { cutoff_hz: cutoff });
        let mut data: Vec<Complex> = samples.iter().map(|&x| Complex::from_real(x)).collect();
        fft::transform(&mut data, false);
        for (z, &keep) in data.iter_mut().zip(&mask) {
            if !keep {
                *z = Complex::ZERO;
            }
        }
        fft::transform(&mut data, true);
        fft::scale_inverse(&mut data);
        let filtered: Vec<f64> = data.iter().map(|z| z.re).collect();
        let expect = stats::Summary::of(&filtered).unwrap().rms;
        assert_eq!(wakes[0].value.to_bits(), expect.to_bits());
    }

    #[test]
    fn goertzel_node_matches_direct_probing() {
        let n = 32;
        let rate = 3200.0;
        let mut b = ImageBuilder::new();
        let win = b
            .push_node(
                NodeKind::Window {
                    size: n as u32,
                    hop: n as u32,
                    shape: WindowShape::Rectangular,
                },
                &[PortSource::Channel(0)],
                rate,
            )
            .unwrap();
        let g = b
            .push_node(
                NodeKind::Goertzel {
                    lo_hz: 200.0,
                    hi_hz: 500.0,
                },
                &[PortSource::Node(win)],
                rate,
            )
            .unwrap();
        let image = b.finish(g).unwrap();
        let mut core: McuCore<f64, 256> = McuCore::new();
        core.load(&image).unwrap();
        let samples: Vec<f64> = (0..n)
            .map(|i| (2.0 * core::f64::consts::PI * 300.0 * i as f64 / rate).sin())
            .collect();
        let wakes = collect_wakes(&mut core, 0, &samples);
        assert_eq!(wakes.len(), 1);
        let probes = [200.0, 300.0, 400.0, 500.0];
        let expect = goertzel::strongest_magnitude(&samples, &probes, rate).unwrap();
        assert_eq!(wakes[0].value.to_bits(), expect.to_bits());
    }

    #[test]
    fn vector_magnitude_joins_two_channels() {
        let mut b = ImageBuilder::new();
        let vm = b
            .push_node(
                NodeKind::VectorMagnitude,
                &[PortSource::Channel(0), PortSource::Channel(1)],
                50.0,
            )
            .unwrap();
        let image = b.finish(vm).unwrap();
        let mut core: McuCore<f64, 16> = McuCore::new();
        core.load(&image).unwrap();
        let mut wakes = Vec::new();
        core.push_sample(0, 3.0, &mut |w| wakes.push(w)).unwrap();
        assert!(wakes.is_empty(), "one axis alone must not emit");
        core.push_sample(1, 4.0, &mut |w| wakes.push(w)).unwrap();
        assert_eq!(wakes, [WakeEvent { seq: 0, value: 5.0 }]);
    }

    #[test]
    fn allof_join_requires_equal_sequences() {
        let mut b = ImageBuilder::new();
        let lo = b
            .push_node(
                NodeKind::MinThreshold { threshold: 0.0 },
                &[PortSource::Channel(0)],
                50.0,
            )
            .unwrap();
        let hi = b
            .push_node(
                NodeKind::MaxThreshold { threshold: 10.0 },
                &[PortSource::Channel(0)],
                50.0,
            )
            .unwrap();
        let both = b
            .push_node(
                NodeKind::AllOf,
                &[PortSource::Node(lo), PortSource::Node(hi)],
                50.0,
            )
            .unwrap();
        let image = b.finish(both).unwrap();
        let mut core: McuCore<f64, 16> = McuCore::new();
        core.load(&image).unwrap();
        let wakes = collect_wakes(&mut core, 0, &[5.0, 20.0, -3.0, 7.0]);
        assert_eq!(
            wakes,
            [
                WakeEvent { seq: 0, value: 5.0 },
                WakeEvent { seq: 3, value: 7.0 }
            ]
        );
    }

    #[test]
    fn sustained_streaks_respect_gaps() {
        let mut b = ImageBuilder::new();
        let thr = b
            .push_node(
                NodeKind::MinThreshold { threshold: 0.5 },
                &[PortSource::Channel(0)],
                50.0,
            )
            .unwrap();
        let sus = b
            .push_node(
                NodeKind::Sustained {
                    count: 2,
                    max_gap: 1,
                },
                &[PortSource::Node(thr)],
                50.0,
            )
            .unwrap();
        let image = b.finish(sus).unwrap();
        let mut core: McuCore<f64, 16> = McuCore::new();
        core.load(&image).unwrap();
        let wakes = collect_wakes(&mut core, 0, &[1.0, 1.0, 0.0, 1.0, 1.0]);
        assert_eq!(
            wakes.iter().map(|w| w.seq).collect::<Vec<_>>(),
            [1, 4],
            "a 2-sample gap must break the streak"
        );
    }

    #[test]
    fn ema_emits_from_the_first_sample() {
        let mut b = ImageBuilder::new();
        let ema = b
            .push_node(
                NodeKind::ExpMovingAvg { alpha: 0.5 },
                &[PortSource::Channel(0)],
                50.0,
            )
            .unwrap();
        let image = b.finish(ema).unwrap();
        let mut core: McuCore<f64, 16> = McuCore::new();
        core.load(&image).unwrap();
        let wakes = collect_wakes(&mut core, 0, &[4.0, 8.0]);
        assert_eq!(wakes[0].value, 4.0);
        assert_eq!(wakes[1].value, 6.0);
    }

    #[test]
    fn reset_replays_identically() {
        let mut b = ImageBuilder::new();
        let avg = b
            .push_node(
                NodeKind::MovingAvg { window: 4 },
                &[PortSource::Channel(0)],
                50.0,
            )
            .unwrap();
        let image = b.finish(avg).unwrap();
        let mut core: McuCore<f64, 16> = McuCore::new();
        core.load(&image).unwrap();
        let samples: Vec<f64> = (1..=4).map(f64::from).collect();
        let first = collect_wakes(&mut core, 0, &samples);
        assert_eq!(first, [WakeEvent { seq: 3, value: 2.5 }]);
        core.reset();
        assert_eq!(core.wake_count(), 0);
        let again = collect_wakes(&mut core, 0, &samples);
        assert_eq!(again, first, "reset must restart sequences and rings");
    }

    #[test]
    fn f32_core_runs_the_same_pipelines() {
        let mut b = ImageBuilder::new();
        let win = b
            .push_node(
                NodeKind::Window {
                    size: 4,
                    hop: 4,
                    shape: WindowShape::Rectangular,
                },
                &[PortSource::Channel(0)],
                50.0,
            )
            .unwrap();
        let stat = b
            .push_node(
                NodeKind::Stat(StatKind::Mean),
                &[PortSource::Node(win)],
                50.0,
            )
            .unwrap();
        let image = b.finish(stat).unwrap();
        let mut core: McuCore<f32, 64> = McuCore::new();
        core.load(&image).unwrap();
        let samples: Vec<f64> = (0..4).map(f64::from).collect();
        let wakes = collect_wakes(&mut core, 0, &samples);
        assert_eq!(wakes.len(), 1);
        assert!((wakes[0].value - 1.5).abs() < 1e-6);
    }

    #[test]
    fn oversized_programs_fail_at_load_with_capacity_errors() {
        let mut b = ImageBuilder::new();
        let win = b
            .push_node(
                NodeKind::Window {
                    size: 64,
                    hop: 64,
                    shape: WindowShape::Rectangular,
                },
                &[PortSource::Channel(0)],
                50.0,
            )
            .unwrap();
        let image = b.finish(win).unwrap();
        let mut core: McuCore<f64, 8> = McuCore::new();
        match core.load(&image).unwrap_err() {
            McuExecError::ArenaOverflow {
                arena,
                node,
                needed,
                capacity,
            } => {
                assert_eq!(arena, "sample arena");
                assert_eq!(node, 0);
                assert!(needed > 8, "needed = {needed}");
                assert_eq!(capacity, 8);
            }
            other => panic!("expected arena-overflow error, got {other:?}"),
        }
        assert!(!core.is_loaded());
    }

    #[test]
    fn failed_load_leaves_the_core_reusable() {
        // A rejected image must not leave partial carve state behind: a
        // subsequent load of a fitting image runs exactly as if the
        // failed load never happened.
        let oversized = {
            let mut b = ImageBuilder::new();
            let win = b
                .push_node(
                    NodeKind::Window {
                        size: 64,
                        hop: 64,
                        shape: WindowShape::Rectangular,
                    },
                    &[PortSource::Channel(0)],
                    50.0,
                )
                .unwrap();
            b.finish(win).unwrap()
        };
        let fitting = {
            let mut b = ImageBuilder::new();
            let avg = b
                .push_node(
                    NodeKind::MovingAvg { window: 4 },
                    &[PortSource::Channel(0)],
                    50.0,
                )
                .unwrap();
            let thr = b
                .push_node(
                    NodeKind::MinThreshold { threshold: 5.0 },
                    &[PortSource::Node(avg)],
                    50.0,
                )
                .unwrap();
            b.finish(thr).unwrap()
        };

        let mut fresh: McuCore<f64, 16> = McuCore::new();
        fresh.load(&fitting).unwrap();
        let samples: Vec<f64> = (0..16).map(f64::from).collect();
        let expected = collect_wakes(&mut fresh, 0, &samples);
        assert!(!expected.is_empty());

        let mut reused: McuCore<f64, 16> = McuCore::new();
        assert!(matches!(
            reused.load(&oversized).unwrap_err(),
            McuExecError::ArenaOverflow { .. }
        ));
        assert!(!reused.is_loaded());
        assert!(matches!(
            reused.push_sample(0, 1.0, &mut |_| {}),
            Err(McuExecError::NotLoaded)
        ));
        reused.load(&fitting).unwrap();
        assert_eq!(collect_wakes(&mut reused, 0, &samples), expected);
        assert_eq!(reused.arena_used(), [0, 4, 0, 0, 0]);
    }

    #[test]
    fn arena_used_matches_the_static_footprint() {
        use crate::footprint::{image_footprint, ArenaKind};
        let mut b = ImageBuilder::new();
        let win = b
            .push_node(
                NodeKind::Window {
                    size: 16,
                    hop: 16,
                    shape: WindowShape::Hamming,
                },
                &[PortSource::Channel(0)],
                64.0,
            )
            .unwrap();
        let fft = b
            .push_node(NodeKind::Fft, &[PortSource::Node(win)], 64.0)
            .unwrap();
        let mag = b
            .push_node(NodeKind::SpectralMagnitude, &[PortSource::Node(fft)], 64.0)
            .unwrap();
        let dom = b
            .push_node(NodeKind::DominantRatio, &[PortSource::Node(mag)], 64.0)
            .unwrap();
        let image = b.finish(dom).unwrap();
        let fp = image_footprint(&image).unwrap();
        let mut core: McuCore<f64, 128> = McuCore::new();
        core.load(&image).unwrap();
        let used = core.arena_used();
        for (k, kind) in ArenaKind::ALL[..5].iter().enumerate() {
            assert_eq!(
                used[k],
                fp.arena(*kind).elements,
                "{} diverged from the footprint",
                kind.name()
            );
        }
    }

    #[test]
    fn invalid_parameters_are_rejected_at_load() {
        let mut b = ImageBuilder::new();
        b.push_node(
            NodeKind::ExpMovingAvg { alpha: 1.5 },
            &[PortSource::Channel(0)],
            50.0,
        )
        .unwrap();
        let image = b.finish(0).unwrap();
        let mut core: McuCore<f64, 16> = McuCore::new();
        let err = core.load(&image).unwrap_err();
        assert_eq!(
            err,
            McuExecError::BadParameter {
                node: 0,
                what: "smoothing factor must be in (0, 1]",
            }
        );
        assert!(err.to_string().contains("smoothing factor"));
    }

    #[test]
    fn bad_channel_is_rejected_at_push() {
        let mut b = ImageBuilder::new();
        b.push_node(NodeKind::AnyOf, &[PortSource::Channel(0)], 50.0)
            .unwrap();
        let image = b.finish(0).unwrap();
        let mut core: McuCore<f64, 16> = McuCore::new();
        core.load(&image).unwrap();
        let err = core.push_sample(200, 1.0, &mut |_| {}).unwrap_err();
        assert_eq!(err, McuExecError::BadChannel { channel: 200 });
    }
}
