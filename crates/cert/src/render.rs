//! Canonical JSON rendering, FNV-1a digests, and the pins document.
//!
//! Certificates are digested over a *canonical* rendering — fixed field
//! order, floats via Rust's shortest-roundtrip `{:?}` formatting, no
//! locale or map-iteration nondeterminism — so the same image certifies
//! to the same digest on every host, and `results/resource_certs.json`
//! can pin the golden fixtures against drift.

use crate::{McuVerdict, ResourceCert};
use sidewinder_hub::mcu::CapacityError;

/// 64-bit FNV-1a over a byte string — the same construction the wake
/// and fleet digests pin.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A certificate's pinned digest: FNV-1a over its canonical JSON.
pub fn digest(cert: &ResourceCert) -> u64 {
    fnv1a64(canonical_json(cert).as_bytes())
}

/// Shortest-roundtrip float rendering; non-finite values become `null`
/// (JSON has no Inf/NaN).
fn float(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        String::from("null")
    }
}

fn opt_u32(v: Option<u32>) -> String {
    v.map_or_else(|| String::from("null"), |v| v.to_string())
}

fn verdict_label(v: &McuVerdict) -> &'static str {
    match v.error {
        None => "ok",
        Some(CapacityError::NotRealTime { .. }) => "not-real-time",
        Some(CapacityError::OutOfMemory { .. }) => "out-of-memory",
    }
}

/// Renders a certificate as canonical JSON.
pub fn canonical_json(cert: &ResourceCert) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"precision\": \"{}\",\n",
        cert.precision.name()
    ));
    out.push_str(&format!("  \"cap\": {},\n", cert.cap));
    out.push_str(&format!(
        "  \"required_capacity\": {},\n",
        cert.required_capacity
    ));
    out.push_str(&format!("  \"fits_cap\": {},\n", cert.fits_cap));
    out.push_str(&format!("  \"total_bytes\": {},\n", cert.total_bytes));
    out.push_str("  \"arenas\": [\n");
    for (i, a) in cert.arenas.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"elements\": {}, \"element_bytes\": {}, \"bytes\": {}, \
             \"peak_node\": {}, \"peak_elements\": {}}}{}\n",
            a.name,
            a.elements,
            a.element_bytes,
            a.bytes,
            a.peak_node
                .map_or_else(|| String::from("null"), |n| n.to_string()),
            a.peak_elements,
            if i + 1 < cert.arenas.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"nodes\": [\n");
    for (i, n) in cert.nodes.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"index\": {}, \"kind\": \"{}\", \"id\": {}, \"line\": {}, \
             \"input_rate_hz\": {}, \"out_rate_hz\": {}, \"out_len\": {}, \
             \"base_rate_hz\": {}, \"channels_mask\": {}, \"flops_per_input\": {}, \
             \"flops_per_second\": {}, \"memory_bytes\": {}}}{}\n",
            n.index,
            n.kind,
            opt_u32(n.ir_id),
            opt_u32(n.line),
            float(n.input_rate_hz),
            float(n.out_rate_hz),
            n.out_len,
            float(n.base_rate_hz),
            n.channels_mask,
            float(n.flops_per_input),
            float(n.flops_per_second),
            n.memory_bytes,
            if i + 1 < cert.nodes.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"channel_rates\": [{}],\n",
        cert.channel_rates
            .iter()
            .map(|&r| float(r))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str(&format!(
        "  \"total_flops_per_second\": {},\n",
        float(cert.total_flops_per_second)
    ));
    out.push_str(&format!(
        "  \"total_memory_bytes\": {},\n",
        cert.total_memory_bytes
    ));
    out.push_str(&format!(
        "  \"wake_rate_hz\": {},\n",
        float(cert.wake_rate_hz)
    ));
    out.push_str(&format!(
        "  \"mcu\": {{\"name\": \"{}\", \"awake_power_mw\": {}, \"demanded_cycles_per_s\": {}, \
         \"budget_cycles_per_s\": {}, \"memory_bytes\": {}, \"ram_bytes\": {}, \"verdict\": \"{}\"}},\n",
        cert.mcu.mcu,
        float(cert.mcu.awake_power_mw),
        float(cert.mcu.demanded_cycles_per_s),
        float(cert.mcu.budget_cycles_per_s),
        cert.mcu.memory_bytes,
        cert.mcu.ram_bytes,
        verdict_label(&cert.mcu),
    ));
    out.push_str(&format!(
        "  \"energy\": {{\"compute_uw\": {}, \"link_uw\": {}, \"total_uw\": {}}}\n",
        float(cert.energy.compute_uw),
        float(cert.energy.link_uw),
        float(cert.energy.total_uw),
    ));
    out.push('}');
    out
}

/// One row of the pins document.
#[derive(Debug, Clone, PartialEq)]
pub struct PinEntry {
    /// Program name (fixture stem, or `fused_all_six`).
    pub name: String,
    /// Smallest core capacity that loads the image.
    pub required_capacity: usize,
    /// Certified worst-case wake rate, Hz.
    pub wake_rate_hz: f64,
    /// Digest of the `f64` certificate.
    pub digest_f64: u64,
    /// Digest of the `f32` certificate.
    pub digest_f32: u64,
}

impl PinEntry {
    /// Builds a row from a program's two certificates, which must agree
    /// on everything precision-independent.
    pub fn from_certs(
        name: impl Into<String>,
        f64_cert: &ResourceCert,
        f32_cert: &ResourceCert,
    ) -> PinEntry {
        debug_assert_eq!(f64_cert.required_capacity, f32_cert.required_capacity);
        PinEntry {
            name: name.into(),
            required_capacity: f64_cert.required_capacity,
            wake_rate_hz: f64_cert.wake_rate_hz,
            digest_f64: digest(f64_cert),
            digest_f32: digest(f32_cert),
        }
    }
}

/// Renders the pins document committed at `results/resource_certs.json`.
pub fn render_pins(cap: usize, entries: &[PinEntry]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"cap\": {cap},\n"));
    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"required_capacity\": {}, \"wake_rate_hz\": {}, \
             \"digest_f64\": \"{:#018x}\", \"digest_f32\": \"{:#018x}\"}}{}\n",
            e.name,
            e.required_capacity,
            float(e.wake_rate_hz),
            e.digest_f64,
            e.digest_f32,
            if i + 1 < entries.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{certify_program, CertTarget, Precision};
    use sidewinder_hub::runtime::ChannelRates;
    use sidewinder_ir::Program;

    #[test]
    fn fnv_matches_the_reference_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn canonical_json_is_deterministic_and_digestable() {
        let program: Program = "ACC_X -> movingAvg(id=1, params={4});
             1 -> minThreshold(id=2, params={5});
             2 -> OUT;"
            .parse()
            .unwrap();
        let rates = ChannelRates::default();
        let a = certify_program(&program, &rates, Precision::F64, &CertTarget::default()).unwrap();
        let b = certify_program(&program, &rates, Precision::F64, &CertTarget::default()).unwrap();
        assert_eq!(canonical_json(&a), canonical_json(&b));
        assert_eq!(a.digest(), b.digest());
        let json = canonical_json(&a);
        assert!(json.contains("\"precision\": \"f64\""));
        assert!(json.contains("\"kind\": \"movingAvg\""));
        assert!(json.contains("\"verdict\": \"ok\""));
        // A different cap is a different certificate.
        let c = certify_program(
            &program,
            &rates,
            Precision::F64,
            &CertTarget {
                mcu: None,
                cap: 128,
            },
        )
        .unwrap();
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn pins_round_to_stable_hex() {
        let entry = PinEntry {
            name: String::from("toy"),
            required_capacity: 192,
            wake_rate_hz: 50.0,
            digest_f64: 0x1234,
            digest_f32: 0xabcd,
        };
        let doc = render_pins(16_384, &[entry]);
        assert!(doc.contains("\"cap\": 16384"));
        assert!(doc.contains("\"digest_f64\": \"0x0000000000001234\""));
        assert!(doc.contains("\"digest_f32\": \"0x000000000000abcd\""));
    }
}
