//! `swcert` — the static resource certifier.
//!
//! The paper's placement story (Table 2) is that a wake condition
//! *provably fits* a tiny hub MCU. The linter's SW006/SW007 checks
//! predict fit from the flop/RAM cost model, but until this crate
//! nothing certified what [`McuCore::load`](sidewinder_mcu::McuCore)
//! actually carves: the seven bump arenas were sized by folklore
//! (`DEFAULT_ARENA`, hand-known 16k cores for music/phrase). `swcert`
//! closes that gap with a certification pass over the compiled
//! [`McuImage`] — the exact bytes an MCU would execute — deriving, per
//! program, per precision, per target MCU:
//!
//! * **arena occupancy** — exact per-arena element counts for all seven
//!   arenas (via [`sidewinder_mcu::footprint`], the same accounting
//!   `load` enforces), with per-arena attribution of the heaviest node;
//! * **cycle bounds** — worst-case flops and cycles per second per
//!   node, mirroring [`PipelineCost`](sidewinder_hub::cost::PipelineCost)
//!   with bitwise-identical arithmetic so the certifier and the
//!   SW006/SW007 lints provably agree;
//! * **schedulability** — worst-case cycles/second against the target
//!   MCU's real-time budget and RAM;
//! * **an energy ceiling** — certified flop rate priced at
//!   [`sidewinder_hub::energy::HUB_NJ_PER_FLOP`] plus certified wake
//!   rate priced at the framed UART link cost, the same constants the
//!   simulator's attribution ledger charges.
//!
//! The result is a plain-data [`ResourceCert`] with a canonical JSON
//! rendering ([`canonical_json`]) and a pinned FNV-1a digest
//! ([`digest`]); `results/resource_certs.json` pins the six golden
//! fixtures and the fused suite. Soundness — measured arena high-water
//! marks and execution counts never exceed certified bounds — is
//! enforced by the `soundness` test suite and the `cert_soundness` fuzz
//! target; monotonicity under `opt::optimize` is asserted by the
//! optimizer itself in debug builds.

pub mod render;

pub use render::{canonical_json, digest, fnv1a64, render_pins, PinEntry};

use sidewinder_hub::cost::kind_cost;
use sidewinder_hub::energy::{HUB_NJ_PER_FLOP, LINK_ACTIVE_MW};
use sidewinder_hub::fault::WAKE_FRAME_BYTES;
use sidewinder_hub::link::SerialLink;
use sidewinder_hub::mcu::CapacityError;
use sidewinder_hub::runtime::ChannelRates;
use sidewinder_hub::{compile_image, HubError, Mcu};
use sidewinder_ir::{AlgorithmKind, NodeId, Program, StatFn, WindowShapeParam};
use sidewinder_mcu::footprint::{image_footprint, ArenaKind, ImageFootprint};
use sidewinder_mcu::image::{MAX_CHANNELS, MAX_NODES};
use sidewinder_mcu::{McuExecError, McuImage, NodeKind, PortSource, StatKind, WindowShape};
use sidewinder_sensors::SensorChannel;

/// The sample payload width a certificate prices arenas at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Precision {
    /// `f64` payloads (the digest-pinned reference precision).
    F64,
    /// `f32` payloads (the SIMD pipeline mode).
    F32,
}

impl Precision {
    /// Bytes per sample payload element.
    pub fn sample_bytes(self) -> usize {
        match self {
            Precision::F64 => 8,
            Precision::F32 => 4,
        }
    }

    /// Lowercase label used in renderings.
    pub fn name(self) -> &'static str {
        match self {
            Precision::F64 => "f64",
            Precision::F32 => "f32",
        }
    }
}

/// What to certify against: a core capacity and an MCU (or the catalog).
#[derive(Debug, Clone, Copy)]
pub struct CertTarget {
    /// The MCU to check schedulability against; `None` means pick the
    /// cheapest fitting part from [`Mcu::CATALOG`], exactly as
    /// [`Mcu::cheapest_for`] (and therefore SW006/SW007) does.
    pub mcu: Option<Mcu>,
    /// Core arena capacity (`CAP` of the `McuCore` the image targets).
    pub cap: usize,
}

impl Default for CertTarget {
    fn default() -> Self {
        CertTarget {
            mcu: None,
            cap: sidewinder_mcu::DEFAULT_ARENA,
        }
    }
}

/// One arena's certified occupancy, priced at the cert's precision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArenaCert {
    /// Stable arena name (e.g. `"sample arena"`).
    pub name: &'static str,
    /// Certified element occupancy.
    pub elements: usize,
    /// Bytes per element at the cert's precision.
    pub element_bytes: usize,
    /// `elements × element_bytes`.
    pub bytes: usize,
    /// Dense image index of the heaviest contributor, when any node
    /// contributes at all.
    pub peak_node: Option<u16>,
    /// The heaviest contributor's element count.
    pub peak_elements: usize,
}

/// One node's certified worst-case demand.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeCert {
    /// Dense image index.
    pub index: u16,
    /// IR algorithm name (`window`, `fft`, …).
    pub kind: &'static str,
    /// IR node id, when certified from a program.
    pub ir_id: Option<u32>,
    /// Source line, when certified from parsed text.
    pub line: Option<u32>,
    /// Emissions per second arriving at the node (sum over ports).
    pub input_rate_hz: f64,
    /// Worst-case emissions per second leaving the node.
    pub out_rate_hz: f64,
    /// Elements per emission leaving the node.
    pub out_len: usize,
    /// Sample rate of the data inside incoming vectors.
    pub base_rate_hz: f64,
    /// Dense-channel bitmask of the sensor channels transitively
    /// feeding this node.
    pub channels_mask: u16,
    /// Floating-point operations per input emission.
    pub flops_per_input: f64,
    /// Worst-case flops per second (`input_rate_hz × flops_per_input`).
    pub flops_per_second: f64,
    /// Host-model state bytes (the SW006/SW007 RAM estimate).
    pub memory_bytes: usize,
}

/// Schedulability of the certified demand on one MCU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McuVerdict {
    /// The MCU judged (the cheapest fitting part in auto mode, or the
    /// last catalog part when nothing fits).
    pub mcu: &'static str,
    /// MCU awake power, mW.
    pub awake_power_mw: f64,
    /// Worst-case cycles per second the image demands on this MCU.
    pub demanded_cycles_per_s: f64,
    /// Cycles per second the MCU grants wake conditions.
    pub budget_cycles_per_s: f64,
    /// Host-model memory demand, bytes.
    pub memory_bytes: usize,
    /// MCU RAM, bytes.
    pub ram_bytes: usize,
    /// Why the image does not fit, when it doesn't.
    pub error: Option<CapacityError>,
}

/// The static energy ceiling, µW.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyCert {
    /// Certified flop rate priced at [`HUB_NJ_PER_FLOP`].
    pub compute_uw: f64,
    /// Certified wake rate priced at the framed UART transfer cost and
    /// [`LINK_ACTIVE_MW`].
    pub link_uw: f64,
    /// `compute_uw + link_uw` — the ceiling the attribution ledger's
    /// compute and link rows stay under.
    pub total_uw: f64,
}

/// A complete certificate for one image at one precision and target.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceCert {
    /// Sample payload width the byte figures assume.
    pub precision: Precision,
    /// The core capacity certified against.
    pub cap: usize,
    /// Largest single-arena occupancy — the smallest `CAP` that loads
    /// the image.
    pub required_capacity: usize,
    /// Whether every arena fits `cap`.
    pub fits_cap: bool,
    /// Total carved bytes at this precision.
    pub total_bytes: usize,
    /// Per-arena occupancy, in [`ArenaKind::ALL`] order.
    pub arenas: [ArenaCert; 7],
    /// Per-node demand, in dense image order.
    pub nodes: Vec<NodeCert>,
    /// Dense per-channel sample rates the cert was derived at.
    pub channel_rates: [f64; MAX_CHANNELS],
    /// Worst-case total flops per second (bitwise equal to
    /// `PipelineCost::total_flops_per_second`).
    pub total_flops_per_second: f64,
    /// Host-model memory demand (bitwise equal to
    /// `PipelineCost::total_memory_bytes`).
    pub total_memory_bytes: usize,
    /// Worst-case wake emissions per second.
    pub wake_rate_hz: f64,
    /// Schedulability on the target (or cheapest catalog) MCU.
    pub mcu: McuVerdict,
    /// The static energy ceiling.
    pub energy: EnergyCert,
}

impl ResourceCert {
    /// The certificate's canonical-JSON FNV-1a digest.
    pub fn digest(&self) -> u64 {
        digest(self)
    }
}

/// Why an input could not be certified.
#[derive(Debug, Clone, PartialEq)]
pub enum CertError {
    /// The program failed to compile into an image.
    Compile(HubError),
    /// The image carries parameters `load` would reject.
    Image(McuExecError),
}

impl std::fmt::Display for CertError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertError::Compile(e) => write!(f, "uncertifiable: {e}"),
            CertError::Image(e) => write!(f, "uncertifiable image: {e}"),
        }
    }
}

impl std::error::Error for CertError {}

impl From<HubError> for CertError {
    fn from(e: HubError) -> Self {
        CertError::Compile(e)
    }
}

/// Dense per-channel rate table: index `c` holds the rate of the sensor
/// channel whose dense index is `c`, exactly as `compile_image` encodes
/// `PortSource::Channel`.
pub fn dense_rates(rates: &ChannelRates) -> [f64; MAX_CHANNELS] {
    let mut dense = [0.0; MAX_CHANNELS];
    for &channel in &SensorChannel::ALL {
        dense[channel.index()] = rates.rate_of(channel);
    }
    dense
}

/// Certifies a compiled image. Total: never panics; images carrying
/// parameters `load` would reject return [`CertError::Image`].
///
/// # Errors
///
/// Returns [`CertError::Image`] when the image's footprint is
/// undefined (bad node parameters).
pub fn certify_image(
    image: &McuImage,
    rates: &ChannelRates,
    precision: Precision,
    target: &CertTarget,
) -> Result<ResourceCert, CertError> {
    let footprint = image_footprint(image).map_err(CertError::Image)?;
    let dense = dense_rates(rates);
    Ok(build_cert(image, &footprint, &dense, precision, target))
}

/// Compiles and certifies a program, enriching the certificate with IR
/// node ids, source lines, and the abstract interpreter's (often
/// tighter) wake-rate fact.
///
/// # Errors
///
/// Returns [`CertError::Compile`] when the program fails validation or
/// exceeds image capacities, and [`CertError::Image`] as
/// [`certify_image`] does.
pub fn certify_program(
    program: &Program,
    rates: &ChannelRates,
    precision: Precision,
    target: &CertTarget,
) -> Result<ResourceCert, CertError> {
    let image = compile_image(program, rates)?;
    let mut cert = certify_image(&image, rates, precision, target)?;

    // The image preserves statement order, so the i-th image node is the
    // i-th program node; the abstract interpreter walks the same order.
    let analysis = sidewinder_lint::absint::analyze(program, rates);
    for (node, fact) in cert.nodes.iter_mut().zip(analysis.facts()) {
        node.ir_id = Some(fact.id.0);
        node.line = fact.line;
    }
    // Both the cost-mirror out-rate and the absint emission fact are
    // sound wake-rate bounds; take the tighter.
    if let Some(fact) = analysis.out_fact() {
        if fact.rate_hz.is_finite() && fact.rate_hz < cert.wake_rate_hz {
            cert.wake_rate_hz = fact.rate_hz;
            cert.energy = energy_of(cert.total_flops_per_second, cert.wake_rate_hz);
        }
    }
    Ok(cert)
}

fn energy_of(total_flops_per_second: f64, wake_rate_hz: f64) -> EnergyCert {
    // flops/s × nJ/flop = nW; ×1e-3 → µW.
    let compute_uw = total_flops_per_second * HUB_NJ_PER_FLOP * 1e-3;
    let frame_s = SerialLink::NEXUS4_UART
        .framed_transfer_time(WAKE_FRAME_BYTES)
        .as_secs_f64();
    // wakes/s × s/frame × mW = mW duty; ×1e3 → µW.
    let link_uw = wake_rate_hz * frame_s * LINK_ACTIVE_MW * 1e3;
    EnergyCert {
        compute_uw,
        link_uw,
        total_uw: compute_uw + link_uw,
    }
}

fn verdict_for(mcu: &Mcu, total_flops_per_second: f64, total_memory_bytes: usize) -> McuVerdict {
    // The exact comparisons of `Mcu::supports_cost`, fed the mirror's
    // bitwise-identical totals, so verdicts provably agree with
    // SW006/SW007.
    let demanded = total_flops_per_second * mcu.cycles_per_flop;
    let error = if demanded > mcu.cycle_budget() {
        Some(CapacityError::NotRealTime {
            mcu: mcu.name,
            demanded_cycles_per_s: demanded,
            budget_cycles_per_s: mcu.cycle_budget(),
        })
    } else if total_memory_bytes > mcu.ram_bytes {
        Some(CapacityError::OutOfMemory {
            mcu: mcu.name,
            demanded_bytes: total_memory_bytes,
            ram_bytes: mcu.ram_bytes,
        })
    } else {
        None
    };
    McuVerdict {
        mcu: mcu.name,
        awake_power_mw: mcu.awake_power_mw,
        demanded_cycles_per_s: demanded,
        budget_cycles_per_s: mcu.cycle_budget(),
        memory_bytes: total_memory_bytes,
        ram_bytes: mcu.ram_bytes,
        error,
    }
}

fn build_cert(
    image: &McuImage,
    footprint: &ImageFootprint,
    dense: &[f64; MAX_CHANNELS],
    precision: Precision,
    target: &CertTarget,
) -> ResourceCert {
    let n = image.node_count();
    let mut out_rate = [0.0f64; MAX_NODES];
    let mut out_len = [1usize; MAX_NODES];
    let mut out_base = [0.0f64; MAX_NODES];
    let mut channels = [0u16; MAX_NODES];
    let mut nodes = Vec::with_capacity(n);

    for (i, spec) in image.nodes().iter().enumerate() {
        let sources = &spec.sources[..(spec.port_count as usize).min(spec.sources.len())];
        // Mirror of `PipelineCost::analyze`, edge for edge: summed input
        // rate, max input length (channels count as scalars), max base
        // rate. Out-of-range references (impossible in built images, but
        // certification is total) take the analyzer's defaults.
        let src_rates: Vec<f64> = sources
            .iter()
            .map(|s| match s {
                PortSource::Channel(c) => dense.get(*c as usize).copied().unwrap_or(0.0),
                PortSource::Node(s) if (*s as usize) < i => out_rate[*s as usize],
                PortSource::Node(_) => 0.0,
            })
            .collect();
        let input_rate: f64 = src_rates.iter().sum();
        let input_len = sources
            .iter()
            .map(|s| match s {
                PortSource::Channel(_) => 1,
                PortSource::Node(s) if (*s as usize) < i => out_len[*s as usize],
                PortSource::Node(_) => 1,
            })
            .max()
            .unwrap_or(1);
        let input_base = sources
            .iter()
            .map(|s| match s {
                PortSource::Channel(c) => dense.get(*c as usize).copied().unwrap_or(0.0),
                PortSource::Node(s) if (*s as usize) < i => out_base[*s as usize],
                PortSource::Node(_) => 0.0,
            })
            .fold(0.0, f64::max);
        let kind = algorithm_of(&spec.kind);
        let (flops, mem, mut rate_out, len_out) =
            kind_cost(&kind, input_rate, input_len, input_base);
        if matches!(kind, AlgorithmKind::VectorMagnitude | AlgorithmKind::AllOf) {
            rate_out = src_rates.iter().copied().fold(f64::INFINITY, f64::min);
            if !rate_out.is_finite() {
                rate_out = 0.0;
            }
        }
        let mask = sources.iter().fold(0u16, |acc, s| match s {
            PortSource::Channel(c) => acc | 1u16.checked_shl(u32::from(*c)).unwrap_or(0),
            PortSource::Node(s) if (*s as usize) < i => acc | channels[*s as usize],
            PortSource::Node(_) => acc,
        });

        nodes.push(NodeCert {
            index: i as u16,
            kind: kind.ir_name(),
            ir_id: None,
            line: None,
            input_rate_hz: input_rate,
            out_rate_hz: rate_out,
            out_len: len_out,
            base_rate_hz: input_base,
            channels_mask: mask,
            flops_per_input: flops,
            flops_per_second: input_rate * flops,
            memory_bytes: mem,
        });
        if i < MAX_NODES {
            out_rate[i] = rate_out;
            out_len[i] = len_out;
            out_base[i] = input_base;
            channels[i] = mask;
        }
    }

    let total_flops_per_second: f64 = nodes.iter().map(|n| n.flops_per_second).sum();
    let total_memory_bytes: usize = nodes.iter().map(|n| n.memory_bytes).sum();
    let wake_rate_hz = if image.out_index() < n {
        out_rate[image.out_index()]
    } else {
        0.0
    };

    let sample_bytes = precision.sample_bytes();
    let arenas = ArenaKind::ALL.map(|k| {
        let a = footprint.arena(k);
        ArenaCert {
            name: k.name(),
            elements: a.elements,
            element_bytes: k.element_bytes(sample_bytes),
            bytes: a.elements * k.element_bytes(sample_bytes),
            peak_node: (a.peak_elements > 0).then_some(a.peak_node),
            peak_elements: a.peak_elements,
        }
    });

    let mcu = match target.mcu {
        Some(mcu) => verdict_for(&mcu, total_flops_per_second, total_memory_bytes),
        None => {
            // Auto: the cheapest fitting catalog part, or the last
            // part's verdict when nothing fits — `Mcu::cheapest_for`'s
            // selection rule.
            let mut verdict = None;
            for mcu in &Mcu::CATALOG {
                let v = verdict_for(mcu, total_flops_per_second, total_memory_bytes);
                let done = v.error.is_none();
                verdict = Some(v);
                if done {
                    break;
                }
            }
            verdict.expect("catalog is non-empty")
        }
    };

    ResourceCert {
        precision,
        cap: target.cap,
        required_capacity: footprint.required_capacity(),
        fits_cap: footprint.fits(target.cap),
        total_bytes: footprint.total_bytes(sample_bytes),
        arenas,
        nodes,
        channel_rates: *dense,
        total_flops_per_second,
        total_memory_bytes,
        wake_rate_hz,
        mcu,
        energy: energy_of(total_flops_per_second, wake_rate_hz),
    }
}

/// A sound upper bound on how many emissions `cert.nodes[node]` may
/// produce after the given per-dense-channel push counts.
///
/// Every push runs one interpreter pass, and a pass emits each node at
/// most once, so the sum of pushes on the node's contributing channels
/// is always sound. When all contributing channels share one base rate
/// the certified out-rate gives a much tighter bound (`pushes ×
/// out_rate / base`, plus one for edge alignment and float rounding);
/// multi-rate joins fall back to the trivial bound because elapsed time
/// cannot be recovered from per-channel counts alone.
pub fn emission_bound(cert: &ResourceCert, node: usize, pushes: &[u64; MAX_CHANNELS]) -> u64 {
    let Some(n) = cert.nodes.get(node) else {
        return 0;
    };
    let mut total: u64 = 0;
    let mut max_pushes: u64 = 0;
    let mut base: Option<f64> = None;
    let mut uniform = true;
    for (c, &p) in pushes.iter().enumerate() {
        if n.channels_mask & (1 << c) != 0 {
            total = total.saturating_add(p);
            max_pushes = max_pushes.max(p);
            let r = cert.channel_rates[c];
            match base {
                None => base = Some(r),
                Some(b) if b == r => {}
                Some(_) => uniform = false,
            }
        }
    }
    if uniform {
        if let Some(b) = base {
            if b > 0.0 && n.out_rate_hz.is_finite() {
                let tight = (max_pushes as f64 * n.out_rate_hz / b).floor() as u64 + 1;
                return tight.min(total);
            }
        }
    }
    total
}

/// Renders a certificate's violations as registry diagnostics: one
/// SW008 per overflowing arena (naming the heaviest node) and one SW009
/// when the MCU verdict fails.
///
/// These are *target-relative* findings — a program that merely needs a
/// 16k core is healthy on a 16k fleet — so they are surfaced by
/// `swcert` and fleet ingest, not by a default `swlint` run.
pub fn diagnostics(cert: &ResourceCert) -> Vec<sidewinder_lint::Diagnostic> {
    use sidewinder_lint::{Diagnostic, LintCode};
    let mut out = Vec::new();
    for arena in &cert.arenas {
        if arena.elements > cert.cap {
            let (node, line, label) = match arena.peak_node {
                Some(i) => {
                    let n = &cert.nodes[i as usize];
                    (
                        n.ir_id.map(NodeId),
                        n.line,
                        format!("{}#{}", n.kind, n.ir_id.unwrap_or(u32::from(n.index))),
                    )
                }
                None => (None, None, String::from("<none>")),
            };
            out.push(Diagnostic::new(
                LintCode::ArenaOverflow,
                node,
                line,
                format!(
                    "{} needs {} elements but the core capacity is {}; heaviest node {} carves {}",
                    arena.name, arena.elements, cert.cap, label, arena.peak_elements
                ),
            ));
        }
    }
    if let Some(err) = cert.mcu.error {
        // Anchor the deadline finding to the hungriest node.
        let heavy = cert
            .nodes
            .iter()
            .max_by(|a, b| a.flops_per_second.total_cmp(&b.flops_per_second));
        out.push(Diagnostic::new(
            LintCode::MissedDeadline,
            heavy.and_then(|n| n.ir_id.map(NodeId)),
            heavy.and_then(|n| n.line),
            format!("certified demand is unschedulable: {err}"),
        ));
    }
    out
}

/// Image node kind → IR algorithm — the inverse of the compiler's
/// one-way bridge, so the certifier can feed the image through the
/// host's cost table. `Sustained`'s `max_gap` saturates back to `u32`;
/// the cost table ignores it.
fn algorithm_of(kind: &NodeKind) -> AlgorithmKind {
    match *kind {
        NodeKind::Window { size, hop, shape } => AlgorithmKind::Window {
            size,
            hop,
            shape: match shape {
                WindowShape::Rectangular => WindowShapeParam::Rectangular,
                WindowShape::Hamming => WindowShapeParam::Hamming,
                WindowShape::Hann => WindowShapeParam::Hann,
            },
        },
        NodeKind::Fft => AlgorithmKind::Fft,
        NodeKind::Ifft => AlgorithmKind::Ifft,
        NodeKind::SpectralMagnitude => AlgorithmKind::SpectralMagnitude,
        NodeKind::MovingAvg { window } => AlgorithmKind::MovingAvg { window },
        NodeKind::ExpMovingAvg { alpha } => AlgorithmKind::ExpMovingAvg { alpha },
        NodeKind::LowPass { cutoff_hz } => AlgorithmKind::LowPass { cutoff_hz },
        NodeKind::HighPass { cutoff_hz } => AlgorithmKind::HighPass { cutoff_hz },
        NodeKind::VectorMagnitude => AlgorithmKind::VectorMagnitude,
        NodeKind::Zcr => AlgorithmKind::Zcr,
        NodeKind::ZcrVariance { sub_windows } => AlgorithmKind::ZcrVariance { sub_windows },
        NodeKind::Stat(f) => AlgorithmKind::Stat(match f {
            StatKind::Mean => StatFn::Mean,
            StatKind::Variance => StatFn::Variance,
            StatKind::StdDev => StatFn::StdDev,
            StatKind::MeanAbs => StatFn::MeanAbs,
            StatKind::Rms => StatFn::Rms,
            StatKind::Energy => StatFn::Energy,
            StatKind::Min => StatFn::Min,
            StatKind::Max => StatFn::Max,
            StatKind::PeakToPeak => StatFn::PeakToPeak,
        }),
        NodeKind::DominantRatio => AlgorithmKind::DominantRatio,
        NodeKind::DominantFreq => AlgorithmKind::DominantFreq,
        NodeKind::Goertzel { lo_hz, hi_hz } => AlgorithmKind::Goertzel { lo_hz, hi_hz },
        NodeKind::GoertzelFreq { lo_hz, hi_hz } => AlgorithmKind::GoertzelFreq { lo_hz, hi_hz },
        NodeKind::GoertzelRatio { lo_hz, hi_hz } => AlgorithmKind::GoertzelRatio { lo_hz, hi_hz },
        NodeKind::MinThreshold { threshold } => AlgorithmKind::MinThreshold { threshold },
        NodeKind::MaxThreshold { threshold } => AlgorithmKind::MaxThreshold { threshold },
        NodeKind::BandThreshold { lo, hi } => AlgorithmKind::BandThreshold { lo, hi },
        NodeKind::OutsideThreshold { lo, hi } => AlgorithmKind::OutsideThreshold { lo, hi },
        NodeKind::Sustained { count, max_gap } => AlgorithmKind::Sustained {
            count,
            max_gap: u32::try_from(max_gap).unwrap_or(u32::MAX),
        },
        NodeKind::AllOf => AlgorithmKind::AllOf,
        NodeKind::AnyOf => AlgorithmKind::AnyOf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sidewinder_hub::cost::PipelineCost;
    use sidewinder_lint::LintCode;

    fn fig2() -> Program {
        "ACC_X -> movingAvg(id=1, params={10});
         ACC_Y -> movingAvg(id=2, params={10});
         ACC_Z -> movingAvg(id=3, params={10});
         1,2,3 -> vectorMagnitude(id=4);
         4 -> minThreshold(id=5, params={15});
         5 -> OUT;"
            .parse()
            .unwrap()
    }

    fn audio() -> Program {
        "MIC -> window(id=1, params={64, 32, 1});
         1 -> fft(id=2);
         2 -> spectralMagnitude(id=3);
         3 -> dominantRatio(id=4);
         4 -> minThreshold(id=5, params={3});
         5 -> OUT;"
            .parse()
            .unwrap()
    }

    #[test]
    fn mirror_totals_are_bitwise_equal_to_the_cost_model() {
        for program in [fig2(), audio()] {
            let rates = ChannelRates::default();
            let cost = PipelineCost::analyze(&program, &rates);
            let cert =
                certify_program(&program, &rates, Precision::F64, &CertTarget::default()).unwrap();
            assert_eq!(
                cert.total_flops_per_second.to_bits(),
                cost.total_flops_per_second().to_bits(),
                "flops must agree bit for bit"
            );
            assert_eq!(cert.total_memory_bytes, cost.total_memory_bytes());
            for (nc, cc) in cert.nodes.iter().zip(cost.nodes()) {
                assert_eq!(nc.input_rate_hz.to_bits(), cc.input_rate_hz.to_bits());
                assert_eq!(nc.flops_per_input.to_bits(), cc.flops_per_input.to_bits());
                assert_eq!(nc.memory_bytes, cc.memory_bytes);
                assert_eq!(nc.ir_id, Some(cc.id.0));
            }
        }
    }

    #[test]
    fn verdict_matches_cheapest_for() {
        let rates = ChannelRates::default();
        for program in [fig2(), audio()] {
            let cert =
                certify_program(&program, &rates, Precision::F64, &CertTarget::default()).unwrap();
            match Mcu::cheapest_for(&program, &rates) {
                Ok(mcu) => {
                    assert_eq!(cert.mcu.mcu, mcu.name);
                    assert!(cert.mcu.error.is_none());
                }
                Err(_) => assert!(cert.mcu.error.is_some()),
            }
        }
    }

    #[test]
    fn arena_occupancy_matches_the_footprint_and_the_load() {
        let rates = ChannelRates::default();
        let image = compile_image(&audio(), &rates).unwrap();
        let cert = certify_image(&image, &rates, Precision::F64, &CertTarget::default()).unwrap();
        let foot = image_footprint(&image).unwrap();
        for (kind, arena) in ArenaKind::ALL.iter().zip(&cert.arenas) {
            assert_eq!(arena.elements, foot.arena(*kind).elements);
        }
        // window 3×64 ring+taper+payload, plus fft/specMag vectors.
        assert!(cert.required_capacity >= 192);
        assert!(cert.fits_cap);

        let mut core: sidewinder_mcu::McuCore<f64, 4096> = sidewinder_mcu::McuCore::new();
        core.load(&image).unwrap();
        let used = core.arena_used();
        for (k, &u) in ArenaKind::ALL[..5].iter().zip(used.iter()) {
            assert_eq!(u, cert.arenas[k.index()].elements, "{}", k.name());
        }
    }

    #[test]
    fn f32_certificates_halve_sample_bytes_only() {
        let rates = ChannelRates::default();
        let c64 =
            certify_program(&audio(), &rates, Precision::F64, &CertTarget::default()).unwrap();
        let c32 =
            certify_program(&audio(), &rates, Precision::F32, &CertTarget::default()).unwrap();
        assert_eq!(c64.required_capacity, c32.required_capacity);
        assert_eq!(
            c64.total_flops_per_second.to_bits(),
            c32.total_flops_per_second.to_bits()
        );
        let s64 = c64.arenas[ArenaKind::Sample.index()];
        let s32 = c32.arenas[ArenaKind::Sample.index()];
        assert_eq!(s64.elements, s32.elements);
        assert_eq!(s64.bytes, 2 * s32.bytes);
        // Scalar/complex arenas are precision-independent.
        let f64a = c64.arenas[ArenaKind::Scalar.index()];
        let f32a = c32.arenas[ArenaKind::Scalar.index()];
        assert_eq!(f64a.bytes, f32a.bytes);
        assert_ne!(c64.digest(), c32.digest());
    }

    #[test]
    fn overflow_and_deadline_render_as_sw008_and_sw009() {
        let rates = ChannelRates::default();
        let cert = certify_program(
            &audio(),
            &rates,
            Precision::F64,
            &CertTarget {
                mcu: Some(Mcu::MSP430),
                cap: 100,
            },
        )
        .unwrap();
        assert!(!cert.fits_cap);
        let diags = diagnostics(&cert);
        let sw008: Vec<_> = diags
            .iter()
            .filter(|d| d.code == LintCode::ArenaOverflow)
            .collect();
        assert!(!sw008.is_empty());
        assert!(
            sw008[0].message.contains("window#1"),
            "{}",
            sw008[0].message
        );
        // The FFT pipeline cannot run on the MSP430 in real time.
        assert!(cert.mcu.error.is_some());
        assert!(diags.iter().any(|d| d.code == LintCode::MissedDeadline));
        // A healthy target yields no diagnostics at all.
        let ok = certify_program(&fig2(), &rates, Precision::F64, &CertTarget::default()).unwrap();
        assert!(diagnostics(&ok).is_empty());
    }

    #[test]
    fn emission_bounds_tighten_for_single_base_rate_pipelines() {
        let rates = ChannelRates::default();
        let cert =
            certify_program(&audio(), &rates, Precision::F64, &CertTarget::default()).unwrap();
        let mic = SensorChannel::Mic.index();
        let mut pushes = [0u64; MAX_CHANNELS];
        pushes[mic] = 8_000;
        // The windower (node 0) hops every 32 samples.
        let window_bound = emission_bound(&cert, 0, &pushes);
        assert!(window_bound <= 8_000 / 32 + 1, "bound {window_bound}");
        // The trivial per-push bound still caps everything.
        for i in 0..cert.nodes.len() {
            assert!(emission_bound(&cert, i, &pushes) <= 8_000);
        }
    }

    #[test]
    fn certification_is_total_on_uncompilable_programs() {
        let program: Program = "ACC_X -> movingAvg(id=1, params={10});".parse().unwrap();
        let err = certify_program(
            &program,
            &ChannelRates::default(),
            Precision::F64,
            &CertTarget::default(),
        )
        .unwrap_err();
        assert!(matches!(err, CertError::Compile(_)));
        assert!(err.to_string().contains("uncertifiable"));
    }
}
