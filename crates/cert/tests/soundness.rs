//! The soundness harness: every certified bound dominates what a real
//! execution measures.
//!
//! For each golden fixture (and the fused-six suite), at both vector
//! precisions, the program is certified, compiled, loaded into a core
//! of the certificate's capacity class, and driven with a deterministic
//! sample schedule under [`HighWaterProbe`]. The measured side — carved
//! arena elements, staging high-water marks, per-node emission counts —
//! must sit at or under the certified side, with the arena carve
//! *exactly* equal (the certificate is an exact accounting, not an
//! estimate). Tightness ratios are printed so a loosening bound is
//! visible in the test log before it becomes a useless one.

use proptest::prelude::*;
use sidewinder_cert::{certify_program, emission_bound, CertTarget, Precision, ResourceCert};
use sidewinder_hub::runtime::ChannelRates;
use sidewinder_hub::{compile_image, McuCore};
use sidewinder_ir::Program;
use sidewinder_lint::testing::{accel_program, arb_program, audio_program};
use sidewinder_mcu::image::MAX_CHANNELS;
use sidewinder_mcu::{ArenaKind, HighWaterProbe, Sample};

const FIXTURES: [(&str, &str); 6] = [
    (
        "headbutts",
        include_str!("../../ir/tests/fixtures/headbutts.swir"),
    ),
    ("steps", include_str!("../../ir/tests/fixtures/steps.swir")),
    (
        "sirens",
        include_str!("../../ir/tests/fixtures/sirens.swir"),
    ),
    (
        "transitions",
        include_str!("../../ir/tests/fixtures/transitions.swir"),
    ),
    ("music", include_str!("../../ir/tests/fixtures/music.swir")),
    (
        "phrase",
        include_str!("../../ir/tests/fixtures/phrase.swir"),
    ),
];

/// Capacity class every fixture (and the fused suite) fits.
const ARENA: usize = 16_384;

/// Samples per channel for the measured side — enough to cycle the
/// largest (2048-sample) windows several times.
const SAMPLES: usize = 8_192;

fn target() -> CertTarget {
    CertTarget {
        mcu: None,
        cap: ARENA,
    }
}

/// The equivalence suites' synthetic conformance input.
fn probe_sample(i: usize, ci: usize) -> f64 {
    let loud = (i / 2048) % 2 == 1;
    let step = if loud {
        1.3
    } else {
        1.3 + 0.8 * (i as f64 / 97.0).sin()
    };
    let phase = i as f64 * step + ci as f64 * 0.7;
    phase.sin() * if loud { 12.0 } else { 2.0 }
}

/// Runs `program` on a `P`-precision core under the high-water probe
/// and checks every measured mark against `cert`. Returns the worst
/// (largest) measured/certified emission ratio for the tightness log.
fn check_measured_bounds<P: Sample>(name: &str, program: &Program, cert: &ResourceCert) -> f64 {
    let image = compile_image(program, &ChannelRates::default())
        .unwrap_or_else(|e| panic!("{name}: compiles: {e}"));
    let mut core: McuCore<P, ARENA> = McuCore::new();
    core.load(&image)
        .unwrap_or_else(|e| panic!("{name}: loads: {e}"));

    // Exact accounting: the loader carves precisely what was certified.
    for (kind, &used) in ArenaKind::ALL[..5].iter().zip(core.arena_used().iter()) {
        assert_eq!(
            used,
            cert.arenas[kind.index()].elements,
            "{name}: {} carve diverged from the certificate",
            kind.name()
        );
    }

    let mut probe = HighWaterProbe::new();
    let mut pushes = [0u64; MAX_CHANNELS];
    let channels = program.channels();
    for i in 0..SAMPLES {
        for (ci, &channel) in channels.iter().enumerate() {
            core.push_sample_probed(
                channel.index() as u8,
                probe_sample(i, ci),
                &mut |_| {},
                &mut probe,
            )
            .unwrap_or_else(|e| panic!("{name}: executes: {e}"));
            pushes[channel.index()] += 1;
        }
    }

    let stage_sample = cert.arenas[ArenaKind::StageSample.index()].peak_elements;
    let stage_spectrum = cert.arenas[ArenaKind::StageSpectrum.index()].peak_elements;
    assert!(
        probe.stage_sample_peak <= stage_sample,
        "{name}: staged vector peak {} > certified {stage_sample}",
        probe.stage_sample_peak
    );
    assert!(
        probe.stage_spectrum_peak <= stage_spectrum,
        "{name}: staged spectrum peak {} > certified {stage_spectrum}",
        probe.stage_spectrum_peak
    );

    let mut worst_ratio = 0.0f64;
    for (node, &measured) in probe.emissions.iter().enumerate().take(cert.nodes.len()) {
        let bound = emission_bound(cert, node, &pushes);
        assert!(
            measured <= bound,
            "{name}: node {node} ({}) emitted {measured} > certified {bound}",
            cert.nodes[node].kind
        );
        if bound > 0 {
            worst_ratio = worst_ratio.max(measured as f64 / bound as f64);
        }
    }
    worst_ratio
}

/// Runs `f` on a thread with stack room for a 16k-class core (~1 MiB of
/// arenas), propagating any panic so assertion failures still fail the
/// owning test or proptest case.
fn with_big_stack<F: FnOnce() + Send>(f: F) {
    std::thread::scope(|scope| {
        std::thread::Builder::new()
            .stack_size(64 << 20)
            .spawn_scoped(scope, f)
            .expect("spawn soundness thread")
            .join()
    })
    .unwrap_or_else(|panic| std::panic::resume_unwind(panic));
}

fn certified(name: &str, program: &Program, precision: Precision) -> ResourceCert {
    let cert = certify_program(program, &ChannelRates::default(), precision, &target())
        .unwrap_or_else(|e| panic!("{name}: certifies: {e}"));
    assert!(cert.fits_cap, "{name}: does not fit the {ARENA} class");
    cert
}

#[test]
fn measured_marks_never_exceed_certified_bounds_on_the_fixtures() {
    std::thread::Builder::new()
        .stack_size(64 << 20)
        .spawn(|| {
            for (name, text) in FIXTURES {
                let program: Program = text.parse().unwrap();
                let c64 = certified(name, &program, Precision::F64);
                let r64 = check_measured_bounds::<f64>(name, &program, &c64);
                let c32 = certified(name, &program, Precision::F32);
                let r32 = check_measured_bounds::<f32>(name, &program, &c32);
                println!(
                    "tightness {name}: required {} elements, worst emission ratio \
                     f64 {r64:.3} f32 {r32:.3}",
                    c64.required_capacity
                );
            }
        })
        .unwrap()
        .join()
        .unwrap();
}

#[test]
fn the_fused_six_suite_is_certified_and_sound() {
    std::thread::Builder::new()
        .stack_size(64 << 20)
        .spawn(|| {
            let programs: Vec<Program> = FIXTURES.iter().map(|(_, t)| t.parse().unwrap()).collect();
            let fused = sidewinder_opt::fuse_programs(&programs);
            let (optimized, _) = sidewinder_opt::optimize(
                &fused,
                &ChannelRates::default(),
                &sidewinder_opt::OptOptions::aggressive(),
            );
            let cert = certified("fused_all_six", &optimized, Precision::F64);
            let ratio = check_measured_bounds::<f64>("fused_all_six", &optimized, &cert);
            println!(
                "tightness fused_all_six: required {} elements, worst emission ratio {ratio:.3}",
                cert.required_capacity
            );
        })
        .unwrap()
        .join()
        .unwrap();
}

/// The acceptance criterion the conformance suites used to hardcode:
/// the music and phrase conditions genuinely need the 16k-element core
/// class — their certificates place them past the default 4096 arena
/// but inside 16384. The certificate now *derives* the constant the
/// tests used to assert.
#[test]
fn music_and_phrase_certificates_reproduce_the_16k_requirement() {
    for name in ["music", "phrase"] {
        let text = FIXTURES.iter().find(|(n, _)| *n == name).unwrap().1;
        let program: Program = text.parse().unwrap();
        let cert = certified(name, &program, Precision::F64);
        assert!(
            cert.required_capacity > sidewinder_mcu::DEFAULT_ARENA,
            "{name}: certified at {} elements, expected past the default arena",
            cert.required_capacity
        );
        assert!(cert.required_capacity <= 16_384, "{name}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Totality: certification never panics on generated programs, and
    /// certifiability does not depend on precision.
    #[test]
    fn certification_is_total_on_generated_programs(program in arb_program()) {
        let rates = ChannelRates::default();
        let c64 = certify_program(&program, &rates, Precision::F64, &target());
        let c32 = certify_program(&program, &rates, Precision::F32, &target());
        prop_assert_eq!(c64.is_ok(), c32.is_ok());
    }

    /// Soundness on the generated corpus: whenever a generated program
    /// certifies and fits, the measured marks obey the bounds.
    #[test]
    fn generated_accel_programs_are_sound(program in accel_program()) {
        if let Ok(cert) = certify_program(&program, &ChannelRates::default(), Precision::F64, &target()) {
            if cert.fits_cap {
                with_big_stack(|| { check_measured_bounds::<f64>("accel", &program, &cert); });
            }
        }
    }

    /// Audio generators exercise the windowed/spectral staging paths.
    #[test]
    fn generated_audio_programs_are_sound(program in audio_program()) {
        if let Ok(cert) = certify_program(&program, &ChannelRates::default(), Precision::F64, &target()) {
            if cert.fits_cap {
                with_big_stack(|| { check_measured_bounds::<f64>("audio", &program, &cert); });
            }
        }
    }
}
