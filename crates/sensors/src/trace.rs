//! Multi-channel sensor traces.

use crate::channel::SensorChannel;
use crate::ground_truth::GroundTruth;
use crate::series::TimeSeries;
use crate::time::Micros;
use std::collections::BTreeMap;

/// A multi-channel recording with ground-truth labels — the unit of
/// evaluation in the paper's trace-driven simulation (§4).
///
/// Channels may have different sample rates (50 Hz accelerometer, 8 kHz
/// microphone) but are expected to span the same duration.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SensorTrace {
    name: String,
    channels: BTreeMap<SensorChannel, TimeSeries>,
    ground_truth: GroundTruth,
}

impl SensorTrace {
    /// Creates an empty trace with a descriptive name.
    pub fn new(name: impl Into<String>) -> Self {
        SensorTrace {
            name: name.into(),
            channels: BTreeMap::new(),
            ground_truth: GroundTruth::new(),
        }
    }

    /// The trace's descriptive name (e.g. `"robot-group1-run3"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds or replaces a channel, returning the previous series if any.
    pub fn insert(&mut self, channel: SensorChannel, series: TimeSeries) -> Option<TimeSeries> {
        self.channels.insert(channel, series)
    }

    /// The series on `channel`, if recorded.
    pub fn channel(&self, channel: SensorChannel) -> Option<&TimeSeries> {
        self.channels.get(&channel)
    }

    /// Channels present in this trace, in canonical order.
    pub fn channels(&self) -> impl Iterator<Item = SensorChannel> + '_ {
        self.channels.keys().copied()
    }

    /// Whether the trace records `channel`.
    pub fn has_channel(&self, channel: SensorChannel) -> bool {
        self.channels.contains_key(&channel)
    }

    /// The ground-truth labels.
    pub fn ground_truth(&self) -> &GroundTruth {
        &self.ground_truth
    }

    /// Mutable access to the ground-truth labels.
    pub fn ground_truth_mut(&mut self) -> &mut GroundTruth {
        &mut self.ground_truth
    }

    /// The longest channel duration (zero for an empty trace).
    pub fn duration(&self) -> Micros {
        self.channels
            .values()
            .map(|s| s.duration())
            .max()
            .unwrap_or(Micros::ZERO)
    }

    /// Checks that all channels span the same duration within one sample
    /// period of the slowest channel; returns the mismatching channel
    /// otherwise.
    pub fn check_aligned(&self) -> Result<(), MisalignedChannelError> {
        let target = self.duration();
        for (&channel, series) in &self.channels {
            let tolerance = Micros::from_secs_f64(1.0 / series.rate_hz());
            let diff = target.saturating_sub(series.duration());
            if diff > tolerance {
                return Err(MisalignedChannelError {
                    channel,
                    expected: target,
                    actual: series.duration(),
                });
            }
        }
        Ok(())
    }
}

/// Error returned by [`SensorTrace::check_aligned`] when a channel is
/// shorter than the trace duration by more than one sample period.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MisalignedChannelError {
    /// The short channel.
    pub channel: SensorChannel,
    /// The trace duration.
    pub expected: Micros,
    /// The channel's duration.
    pub actual: Micros,
}

impl std::fmt::Display for MisalignedChannelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "channel {} spans {} but the trace spans {}",
            self.channel, self.actual, self.expected
        )
    }
}

impl std::error::Error for MisalignedChannelError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground_truth::{EventKind, LabeledInterval};

    fn accel(n: usize) -> TimeSeries {
        TimeSeries::from_samples(50.0, vec![0.0; n]).unwrap()
    }

    #[test]
    fn empty_trace_has_zero_duration() {
        let t = SensorTrace::new("empty");
        assert_eq!(t.duration(), Micros::ZERO);
        assert_eq!(t.name(), "empty");
        assert!(t.check_aligned().is_ok());
        assert_eq!(t.channels().count(), 0);
    }

    #[test]
    fn insert_and_query_channels() {
        let mut t = SensorTrace::new("t");
        assert!(t.insert(SensorChannel::AccX, accel(100)).is_none());
        assert!(t.has_channel(SensorChannel::AccX));
        assert!(!t.has_channel(SensorChannel::Mic));
        assert_eq!(t.channel(SensorChannel::AccX).unwrap().len(), 100);
        // Replacing returns the old series.
        assert!(t.insert(SensorChannel::AccX, accel(50)).is_some());
        assert_eq!(t.channel(SensorChannel::AccX).unwrap().len(), 50);
    }

    #[test]
    fn duration_is_longest_channel() {
        let mut t = SensorTrace::new("t");
        t.insert(SensorChannel::AccX, accel(100)); // 2 s
        t.insert(
            SensorChannel::Mic,
            TimeSeries::from_samples(8000.0, vec![0.0; 24_000]).unwrap(), // 3 s
        );
        assert_eq!(t.duration(), Micros::from_secs(3));
    }

    #[test]
    fn alignment_check_tolerates_one_sample() {
        let mut t = SensorTrace::new("t");
        t.insert(SensorChannel::AccX, accel(100));
        t.insert(SensorChannel::AccY, accel(99)); // one sample short: OK
        assert!(t.check_aligned().is_ok());
    }

    #[test]
    fn alignment_check_flags_short_channel() {
        let mut t = SensorTrace::new("t");
        t.insert(SensorChannel::AccX, accel(100)); // 2 s
        t.insert(SensorChannel::AccY, accel(50)); // 1 s: misaligned
        let err = t.check_aligned().unwrap_err();
        assert_eq!(err.channel, SensorChannel::AccY);
        assert!(err.to_string().contains("ACC_Y"));
    }

    #[test]
    fn ground_truth_is_attached() {
        let mut t = SensorTrace::new("t");
        t.ground_truth_mut().push(
            LabeledInterval::new(EventKind::Siren, Micros::ZERO, Micros::from_secs(1)).unwrap(),
        );
        assert_eq!(t.ground_truth().count_of(EventKind::Siren), 1);
    }

    #[test]
    fn channels_iterate_in_canonical_order() {
        let mut t = SensorTrace::new("t");
        t.insert(SensorChannel::Mic, TimeSeries::empty(8000.0).unwrap());
        t.insert(SensorChannel::AccX, accel(1));
        let order: Vec<_> = t.channels().collect();
        assert_eq!(order, vec![SensorChannel::AccX, SensorChannel::Mic]);
    }
}
