//! Integer-microsecond time base.
//!
//! The simulator integrates power over sleep/wake state intervals; float
//! timestamps would accumulate error over half-hour traces. [`Micros`] is
//! both a timestamp (offset from trace start) and a duration — the trace
//! origin is always zero, so a separate instant type would add ceremony
//! without catching real bugs in this codebase.

use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A timestamp or duration in whole microseconds.
///
/// # Example
///
/// ```
/// use sidewinder_sensors::time::Micros;
///
/// let t = Micros::from_millis(1_500);
/// assert_eq!(t.as_secs_f64(), 1.5);
/// assert_eq!(t + Micros::from_secs(1), Micros::from_millis(2_500));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Micros(pub u64);

impl Micros {
    /// Zero time: the trace origin.
    pub const ZERO: Micros = Micros(0);
    /// The largest representable time.
    pub const MAX: Micros = Micros(u64::MAX);

    /// Constructs from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Micros(us)
    }

    /// Constructs from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Micros(ms * 1_000)
    }

    /// Constructs from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Micros(s * 1_000_000)
    }

    /// Constructs from fractional seconds, rounding to the nearest
    /// microsecond. Negative or non-finite input clamps to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return Micros::ZERO;
        }
        Micros((s * 1e6).round() as u64)
    }

    /// The raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This time in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This time in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction: `self - rhs`, or zero if `rhs` is later.
    pub fn saturating_sub(self, rhs: Micros) -> Micros {
        Micros(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    pub fn checked_add(self, rhs: Micros) -> Option<Micros> {
        self.0.checked_add(rhs.0).map(Micros)
    }

    /// The smaller of two times.
    pub fn min(self, rhs: Micros) -> Micros {
        Micros(self.0.min(rhs.0))
    }

    /// The larger of two times.
    pub fn max(self, rhs: Micros) -> Micros {
        Micros(self.0.max(rhs.0))
    }

    /// Number of whole sample periods of `rate_hz` that fit in this
    /// duration.
    ///
    /// # Panics
    ///
    /// Panics if `rate_hz` is not positive and finite.
    pub fn samples_at(self, rate_hz: f64) -> usize {
        assert!(
            rate_hz.is_finite() && rate_hz > 0.0,
            "sample rate must be positive, got {rate_hz}"
        );
        (self.as_secs_f64() * rate_hz).floor() as usize
    }
}

impl Add for Micros {
    type Output = Micros;
    fn add(self, rhs: Micros) -> Micros {
        Micros(self.0 + rhs.0)
    }
}

impl AddAssign for Micros {
    fn add_assign(&mut self, rhs: Micros) {
        self.0 += rhs.0;
    }
}

impl Sub for Micros {
    type Output = Micros;
    /// # Panics
    /// Panics on underflow in debug builds, like integer subtraction.
    fn sub(self, rhs: Micros) -> Micros {
        Micros(self.0 - rhs.0)
    }
}

impl SubAssign for Micros {
    fn sub_assign(&mut self, rhs: Micros) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Micros {
    type Output = Micros;
    fn mul(self, rhs: u64) -> Micros {
        Micros(self.0 * rhs)
    }
}

impl Div<u64> for Micros {
    type Output = Micros;
    fn div(self, rhs: u64) -> Micros {
        Micros(self.0 / rhs)
    }
}

impl std::fmt::Display for Micros {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

/// Converts a sample index to its timestamp at `rate_hz`.
///
/// # Panics
///
/// Panics if `rate_hz` is not positive and finite.
pub fn sample_time(index: usize, rate_hz: f64) -> Micros {
    assert!(
        rate_hz.is_finite() && rate_hz > 0.0,
        "sample rate must be positive, got {rate_hz}"
    );
    Micros::from_secs_f64(index as f64 / rate_hz)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Micros::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(Micros::from_millis(5).as_micros(), 5_000);
        assert_eq!(Micros::from_secs_f64(1.5), Micros::from_millis(1_500));
        assert_eq!(Micros::from_secs(3).as_secs_f64(), 3.0);
        assert_eq!(Micros::from_millis(250).as_millis_f64(), 250.0);
    }

    #[test]
    fn from_secs_f64_clamps_bad_input() {
        assert_eq!(Micros::from_secs_f64(-1.0), Micros::ZERO);
        assert_eq!(Micros::from_secs_f64(f64::NAN), Micros::ZERO);
        assert_eq!(Micros::from_secs_f64(f64::INFINITY), Micros::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Micros::from_secs(1);
        let b = Micros::from_millis(500);
        assert_eq!(a + b, Micros::from_millis(1_500));
        assert_eq!(a - b, Micros::from_millis(500));
        assert_eq!(b * 4, Micros::from_secs(2));
        assert_eq!(a / 4, Micros::from_micros(250_000));
        let mut c = a;
        c += b;
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn saturating_sub_clamps_at_zero() {
        assert_eq!(
            Micros::from_secs(1).saturating_sub(Micros::from_secs(2)),
            Micros::ZERO
        );
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(Micros::MAX.checked_add(Micros(1)).is_none());
        assert_eq!(Micros(1).checked_add(Micros(2)), Some(Micros(3)));
    }

    #[test]
    fn min_max() {
        let a = Micros(10);
        let b = Micros(20);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn samples_at_counts_whole_periods() {
        assert_eq!(Micros::from_secs(2).samples_at(50.0), 100);
        assert_eq!(Micros::from_millis(1_999).samples_at(1.0), 1);
        assert_eq!(Micros::ZERO.samples_at(100.0), 0);
    }

    #[test]
    #[should_panic(expected = "sample rate must be positive")]
    fn samples_at_rejects_zero_rate() {
        Micros::from_secs(1).samples_at(0.0);
    }

    #[test]
    fn sample_time_is_index_over_rate() {
        assert_eq!(sample_time(50, 50.0), Micros::from_secs(1));
        assert_eq!(sample_time(0, 8000.0), Micros::ZERO);
        assert_eq!(sample_time(1, 8000.0), Micros(125));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(Micros(500).to_string(), "500us");
        assert_eq!(Micros::from_millis(20).to_string(), "20.000ms");
        assert_eq!(Micros::from_secs_f64(1.25).to_string(), "1.250s");
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(Micros(1) < Micros(2));
        assert_eq!(Micros::ZERO, Micros::default());
    }
}
