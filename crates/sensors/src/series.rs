//! Uniformly sampled time series.

use crate::time::{sample_time, Micros};

/// A uniformly sampled signal: a sample rate plus a sample vector, starting
/// at trace time zero.
///
/// # Example
///
/// ```
/// use sidewinder_sensors::series::TimeSeries;
/// use sidewinder_sensors::time::Micros;
///
/// let s = TimeSeries::from_samples(50.0, vec![0.0; 100])?;
/// assert_eq!(s.duration(), Micros::from_secs(2));
/// assert_eq!(s.index_at(Micros::from_millis(1_000)), Some(50));
/// # Ok::<(), sidewinder_sensors::series::InvalidRateError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    rate_hz: f64,
    samples: Vec<f64>,
}

/// Error returned when a series is constructed with a non-positive or
/// non-finite sample rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvalidRateError {
    /// The rejected rate.
    pub rate_hz: f64,
}

impl std::fmt::Display for InvalidRateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sample rate {} must be positive and finite",
            self.rate_hz
        )
    }
}

impl std::error::Error for InvalidRateError {}

impl TimeSeries {
    /// Creates a series from a sample rate and samples.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidRateError`] if `rate_hz` is not positive and finite.
    pub fn from_samples(rate_hz: f64, samples: Vec<f64>) -> Result<Self, InvalidRateError> {
        if !(rate_hz.is_finite() && rate_hz > 0.0) {
            return Err(InvalidRateError { rate_hz });
        }
        Ok(TimeSeries { rate_hz, samples })
    }

    /// Creates an empty series at the given rate.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidRateError`] if `rate_hz` is not positive and finite.
    pub fn empty(rate_hz: f64) -> Result<Self, InvalidRateError> {
        TimeSeries::from_samples(rate_hz, Vec::new())
    }

    /// The sampling rate in Hz.
    pub fn rate_hz(&self) -> f64 {
        self.rate_hz
    }

    /// The samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the series holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total duration covered (`len / rate`).
    pub fn duration(&self) -> Micros {
        Micros::from_secs_f64(self.samples.len() as f64 / self.rate_hz)
    }

    /// Timestamp of the sample at `index`.
    pub fn time_of(&self, index: usize) -> Micros {
        sample_time(index, self.rate_hz)
    }

    /// Index of the sample covering time `t`, or `None` past the end.
    pub fn index_at(&self, t: Micros) -> Option<usize> {
        let idx = (t.as_secs_f64() * self.rate_hz).floor() as usize;
        (idx < self.samples.len()).then_some(idx)
    }

    /// The samples whose timestamps lie in `[start, end)`.
    ///
    /// Times past the end of the series are clamped; an inverted range
    /// yields an empty slice.
    pub fn slice(&self, start: Micros, end: Micros) -> &[f64] {
        if end <= start {
            return &[];
        }
        // Guard the ceil against float error: 1.1 s × 50 Hz evaluates to
        // 55.000000000000007, which must still mean index 55.
        let bound = |t: Micros| {
            (((t.as_secs_f64() * self.rate_hz) - 1e-9).ceil().max(0.0) as usize)
                .min(self.samples.len())
        };
        let lo = bound(start);
        let hi = bound(end);
        &self.samples[lo..hi.max(lo)]
    }

    /// Appends a sample.
    pub fn push(&mut self, sample: f64) {
        self.samples.push(sample);
    }

    /// Appends all samples from an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        self.samples.extend(iter);
    }

    /// Iterates `(timestamp, sample)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Micros, f64)> + '_ {
        self.samples
            .iter()
            .enumerate()
            .map(move |(i, &x)| (self.time_of(i), x))
    }

    /// Consumes the series, returning the raw sample vector.
    pub fn into_samples(self) -> Vec<f64> {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> TimeSeries {
        TimeSeries::from_samples(50.0, (0..100).map(|i| i as f64).collect()).unwrap()
    }

    #[test]
    fn rejects_bad_rates() {
        assert!(TimeSeries::from_samples(0.0, vec![]).is_err());
        assert!(TimeSeries::from_samples(-5.0, vec![]).is_err());
        assert!(TimeSeries::from_samples(f64::NAN, vec![]).is_err());
        let err = TimeSeries::from_samples(0.0, vec![]).unwrap_err();
        assert!(err.to_string().contains("0"));
    }

    #[test]
    fn duration_and_len() {
        let s = series();
        assert_eq!(s.len(), 100);
        assert!(!s.is_empty());
        assert_eq!(s.duration(), Micros::from_secs(2));
        assert!(TimeSeries::empty(10.0).unwrap().is_empty());
        assert_eq!(TimeSeries::empty(10.0).unwrap().duration(), Micros::ZERO);
    }

    #[test]
    fn time_index_round_trip() {
        let s = series();
        for i in [0usize, 1, 49, 99] {
            assert_eq!(s.index_at(s.time_of(i)), Some(i));
        }
        assert_eq!(s.index_at(Micros::from_secs(2)), None);
    }

    #[test]
    fn slice_selects_half_open_range() {
        let s = series();
        // [1s, 1.1s) at 50 Hz = samples 50..55
        let got = s.slice(Micros::from_secs(1), Micros::from_millis(1_100));
        assert_eq!(got, &[50.0, 51.0, 52.0, 53.0, 54.0]);
    }

    #[test]
    fn slice_clamps_to_series_end() {
        let s = series();
        let got = s.slice(Micros::from_millis(1_900), Micros::from_secs(100));
        assert_eq!(got.len(), 5);
        assert_eq!(got[0], 95.0);
    }

    #[test]
    fn inverted_or_empty_ranges_are_empty() {
        let s = series();
        assert!(s
            .slice(Micros::from_secs(1), Micros::from_secs(1))
            .is_empty());
        assert!(s
            .slice(Micros::from_secs(2), Micros::from_secs(1))
            .is_empty());
    }

    #[test]
    fn whole_trace_slice_returns_everything() {
        let s = series();
        assert_eq!(s.slice(Micros::ZERO, s.duration()), s.samples());
    }

    #[test]
    fn push_and_extend_grow_series() {
        let mut s = TimeSeries::empty(10.0).unwrap();
        s.push(1.0);
        s.extend([2.0, 3.0]);
        assert_eq!(s.samples(), &[1.0, 2.0, 3.0]);
        assert_eq!(s.into_samples(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn iter_yields_timestamps() {
        let s = TimeSeries::from_samples(2.0, vec![5.0, 6.0]).unwrap();
        let pairs: Vec<_> = s.iter().collect();
        assert_eq!(
            pairs,
            vec![(Micros::ZERO, 5.0), (Micros::from_millis(500), 6.0)]
        );
    }
}
