//! Plain-text persistence for traces and ground truth.
//!
//! Traces are written as two CSV documents: a per-channel sample file
//! (`channel,rate_hz,index,value`) and a label file
//! (`kind,start_us,end_us`). The format is deliberately simple — the
//! reproduction generates traces deterministically, so files exist for
//! inspection and for replaying a specific trace across tool invocations,
//! not as an archival format.

use crate::channel::SensorChannel;
use crate::ground_truth::{EventKind, GroundTruth, LabeledInterval};
use crate::series::TimeSeries;
use crate::time::Micros;
use crate::trace::SensorTrace;
use std::io::{BufRead, BufReader, Read, Write};

/// Errors arising while reading or writing trace CSV.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based line number and contents.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending line.
        text: String,
        /// What was wrong.
        reason: String,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "I/O error: {e}"),
            CsvError::Parse { line, text, reason } => {
                write!(f, "line {line}: {reason} (in {text:?})")
            }
        }
    }
}

impl std::error::Error for CsvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CsvError::Io(e) => Some(e),
            CsvError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Writes all channels of a trace as `channel,rate_hz,index,value` rows.
///
/// A `&mut` writer can be passed since `Write` is implemented for mutable
/// references.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_samples<W: Write>(trace: &SensorTrace, mut w: W) -> Result<(), CsvError> {
    writeln!(w, "channel,rate_hz,index,value")?;
    for channel in trace.channels() {
        // channels() yields present keys today, but a racing mutation or a
        // future refactor must degrade to skipping the channel, not panic
        // mid-export.
        let Some(series) = trace.channel(channel) else {
            continue;
        };
        for (i, &x) in series.samples().iter().enumerate() {
            writeln!(w, "{},{},{},{}", channel.ir_name(), series.rate_hz(), i, x)?;
        }
    }
    Ok(())
}

/// Reads rows produced by [`write_samples`] into a fresh trace named
/// `name`.
///
/// # Errors
///
/// Returns [`CsvError::Parse`] on malformed rows and [`CsvError::Io`] on
/// reader failures.
pub fn read_samples<R: Read>(name: &str, r: R) -> Result<SensorTrace, CsvError> {
    let mut trace = SensorTrace::new(name);
    let reader = BufReader::new(r);
    let mut pending: std::collections::BTreeMap<SensorChannel, (f64, Vec<f64>)> =
        std::collections::BTreeMap::new();
    for (line_no, line) in reader.lines().enumerate() {
        let line = line?;
        if line_no == 0 || line.trim().is_empty() {
            continue;
        }
        let parse_err = |reason: &str| CsvError::Parse {
            line: line_no + 1,
            text: line.clone(),
            reason: reason.to_string(),
        };
        let mut parts = line.split(',');
        let channel = parts
            .next()
            .and_then(SensorChannel::from_ir_name)
            .ok_or_else(|| parse_err("unknown channel"))?;
        let rate: f64 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err("bad rate"))?;
        let _index: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err("bad index"))?;
        let value: f64 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err("bad value"))?;
        if parts.next().is_some() {
            return Err(parse_err("too many fields"));
        }
        let entry = pending.entry(channel).or_insert((rate, Vec::new()));
        if entry.0 != rate {
            return Err(parse_err("inconsistent rate for channel"));
        }
        entry.1.push(value);
    }
    for (channel, (rate, samples)) in pending {
        let series = TimeSeries::from_samples(rate, samples).map_err(|e| CsvError::Parse {
            line: 0,
            text: String::new(),
            reason: e.to_string(),
        })?;
        trace.insert(channel, series);
    }
    Ok(trace)
}

/// Writes ground truth as `kind,start_us,end_us` rows.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_labels<W: Write>(gt: &GroundTruth, mut w: W) -> Result<(), CsvError> {
    writeln!(w, "kind,start_us,end_us")?;
    for i in gt.intervals() {
        writeln!(
            w,
            "{},{},{}",
            i.kind().name(),
            i.start().as_micros(),
            i.end().as_micros()
        )?;
    }
    Ok(())
}

/// Reads rows produced by [`write_labels`].
///
/// # Errors
///
/// Returns [`CsvError::Parse`] on malformed rows and [`CsvError::Io`] on
/// reader failures.
pub fn read_labels<R: Read>(r: R) -> Result<GroundTruth, CsvError> {
    let mut gt = GroundTruth::new();
    let reader = BufReader::new(r);
    for (line_no, line) in reader.lines().enumerate() {
        let line = line?;
        if line_no == 0 || line.trim().is_empty() {
            continue;
        }
        let parse_err = |reason: &str| CsvError::Parse {
            line: line_no + 1,
            text: line.clone(),
            reason: reason.to_string(),
        };
        let mut parts = line.split(',');
        let kind = parts
            .next()
            .and_then(EventKind::from_name)
            .ok_or_else(|| parse_err("unknown kind"))?;
        let start: u64 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err("bad start"))?;
        let end: u64 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err("bad end"))?;
        let interval =
            LabeledInterval::new(kind, Micros::from_micros(start), Micros::from_micros(end))
                .map_err(|e| parse_err(&e.to_string()))?;
        gt.push(interval);
    }
    Ok(gt)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> SensorTrace {
        let mut t = SensorTrace::new("csv-test");
        t.insert(
            SensorChannel::AccX,
            TimeSeries::from_samples(50.0, vec![1.0, 2.0, -0.5]).unwrap(),
        );
        t.insert(
            SensorChannel::Mic,
            TimeSeries::from_samples(8000.0, vec![0.25]).unwrap(),
        );
        t.ground_truth_mut().push(
            LabeledInterval::new(
                EventKind::Walking,
                Micros::from_secs(1),
                Micros::from_secs(2),
            )
            .unwrap(),
        );
        t
    }

    #[test]
    fn export_handles_sparse_and_empty_traces() {
        // Regression for the panic path in write_samples: exporting must
        // tolerate any channel-set shape — no channels at all, or a
        // channel whose series holds zero samples — without panicking.
        let mut buf = Vec::new();
        write_samples(&SensorTrace::new("empty"), &mut buf).unwrap();
        assert_eq!(buf, b"channel,rate_hz,index,value\n");

        let mut sparse = SensorTrace::new("sparse");
        sparse.insert(
            SensorChannel::AccZ,
            TimeSeries::from_samples(50.0, Vec::new()).unwrap(),
        );
        let mut buf = Vec::new();
        write_samples(&sparse, &mut buf).unwrap();
        let back = read_samples("sparse", buf.as_slice()).unwrap();
        assert!(back.channel(SensorChannel::AccZ).is_none());
    }

    #[test]
    fn samples_round_trip() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_samples(&trace, &mut buf).unwrap();
        let back = read_samples("csv-test", buf.as_slice()).unwrap();
        assert_eq!(
            back.channel(SensorChannel::AccX).unwrap().samples(),
            trace.channel(SensorChannel::AccX).unwrap().samples()
        );
        assert_eq!(back.channel(SensorChannel::Mic).unwrap().rate_hz(), 8000.0);
    }

    #[test]
    fn labels_round_trip() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_labels(trace.ground_truth(), &mut buf).unwrap();
        let back = read_labels(buf.as_slice()).unwrap();
        assert_eq!(&back, trace.ground_truth());
    }

    #[test]
    fn sample_header_is_stable() {
        let mut buf = Vec::new();
        write_samples(&SensorTrace::new("x"), &mut buf).unwrap();
        assert_eq!(
            String::from_utf8(buf).unwrap().lines().next().unwrap(),
            "channel,rate_hz,index,value"
        );
    }

    #[test]
    fn read_samples_rejects_unknown_channel() {
        let text = "channel,rate_hz,index,value\nBOGUS,50,0,1.0\n";
        let err = read_samples("x", text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("unknown channel"));
    }

    #[test]
    fn read_samples_rejects_extra_fields() {
        let text = "channel,rate_hz,index,value\nACC_X,50,0,1.0,9\n";
        assert!(read_samples("x", text.as_bytes()).is_err());
    }

    #[test]
    fn read_samples_rejects_inconsistent_rates() {
        let text = "channel,rate_hz,index,value\nACC_X,50,0,1.0\nACC_X,60,1,2.0\n";
        let err = read_samples("x", text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("inconsistent"));
    }

    #[test]
    fn read_labels_rejects_inverted_interval() {
        let text = "kind,start_us,end_us\nwalking,5,4\n";
        assert!(read_labels(text.as_bytes()).is_err());
    }

    #[test]
    fn read_labels_rejects_bad_kind() {
        let text = "kind,start_us,end_us\nflying,0,1\n";
        let err = read_labels(text.as_bytes()).unwrap_err();
        assert!(matches!(err, CsvError::Parse { line: 2, .. }));
    }

    #[test]
    fn blank_lines_are_skipped() {
        let text = "kind,start_us,end_us\n\nwalking,0,1000\n\n";
        let gt = read_labels(text.as_bytes()).unwrap();
        assert_eq!(gt.len(), 1);
    }
}
