//! Ground-truth event labels.
//!
//! The paper's robot logs the start and end of each scripted action (§4.1),
//! and the audio traces record where events were mixed in. [`GroundTruth`]
//! is this reproduction's equivalent: a set of labeled, non-degenerate time
//! intervals that the simulator's recall/precision accounting and the
//! Oracle configuration consume.

use crate::time::Micros;

/// The kind of activity or audio event occupying an interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EventKind {
    /// Robot or human standing/sitting still.
    Idle,
    /// A sustained walking bout.
    Walking,
    /// A single step (a point-like event inside a walking bout).
    Step,
    /// A sit-to-stand posture transition.
    SitToStand,
    /// A stand-to-sit posture transition.
    StandToSit,
    /// A sudden forward head movement (the paper's stand-in for falls).
    Headbutt,
    /// Miscellaneous non-target motion (human traces: commuting vibration,
    /// fidgeting, carrying).
    Misc,
    /// An emergency-vehicle siren.
    Siren,
    /// Music playing.
    Music,
    /// Human speech.
    Speech,
    /// The specific phrase of interest inside a speech segment.
    Phrase,
}

impl EventKind {
    /// Every kind, in canonical order.
    pub const ALL: [EventKind; 11] = [
        EventKind::Idle,
        EventKind::Walking,
        EventKind::Step,
        EventKind::SitToStand,
        EventKind::StandToSit,
        EventKind::Headbutt,
        EventKind::Misc,
        EventKind::Siren,
        EventKind::Music,
        EventKind::Speech,
        EventKind::Phrase,
    ];

    /// A short stable name used in CSV files and reports.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Idle => "idle",
            EventKind::Walking => "walking",
            EventKind::Step => "step",
            EventKind::SitToStand => "sit_to_stand",
            EventKind::StandToSit => "stand_to_sit",
            EventKind::Headbutt => "headbutt",
            EventKind::Misc => "misc",
            EventKind::Siren => "siren",
            EventKind::Music => "music",
            EventKind::Speech => "speech",
            EventKind::Phrase => "phrase",
        }
    }

    /// Parses a name produced by [`EventKind::name`].
    pub fn from_name(name: &str) -> Option<EventKind> {
        EventKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

impl std::fmt::Display for EventKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A labeled time interval `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabeledInterval {
    kind: EventKind,
    start: Micros,
    end: Micros,
}

/// Error returned for an interval whose end does not follow its start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmptyIntervalError {
    /// Requested start.
    pub start: Micros,
    /// Requested end.
    pub end: Micros,
}

impl std::fmt::Display for EmptyIntervalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "interval end {} must be after start {}",
            self.end, self.start
        )
    }
}

impl std::error::Error for EmptyIntervalError {}

impl LabeledInterval {
    /// Creates a labeled interval.
    ///
    /// # Errors
    ///
    /// Returns [`EmptyIntervalError`] if `end <= start`.
    pub fn new(kind: EventKind, start: Micros, end: Micros) -> Result<Self, EmptyIntervalError> {
        if end <= start {
            return Err(EmptyIntervalError { start, end });
        }
        Ok(LabeledInterval { kind, start, end })
    }

    /// The event kind.
    pub fn kind(&self) -> EventKind {
        self.kind
    }

    /// Interval start (inclusive).
    pub fn start(&self) -> Micros {
        self.start
    }

    /// Interval end (exclusive).
    pub fn end(&self) -> Micros {
        self.end
    }

    /// Interval length.
    pub fn duration(&self) -> Micros {
        self.end - self.start
    }

    /// Whether time `t` falls inside `[start, end)`.
    pub fn contains(&self, t: Micros) -> bool {
        t >= self.start && t < self.end
    }

    /// Whether this interval overlaps `[start, end)`.
    pub fn overlaps(&self, start: Micros, end: Micros) -> bool {
        self.start < end && start < self.end
    }

    /// The midpoint of the interval.
    pub fn midpoint(&self) -> Micros {
        self.start + (self.end - self.start) / 2
    }
}

/// A collection of labeled intervals kept sorted by start time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GroundTruth {
    intervals: Vec<LabeledInterval>,
}

impl GroundTruth {
    /// Creates an empty ground truth.
    pub fn new() -> Self {
        GroundTruth::default()
    }

    /// Adds an interval, keeping the collection sorted by start.
    pub fn push(&mut self, interval: LabeledInterval) {
        let pos = self
            .intervals
            .partition_point(|i| i.start() <= interval.start());
        self.intervals.insert(pos, interval);
    }

    /// All intervals in start order.
    pub fn intervals(&self) -> &[LabeledInterval] {
        &self.intervals
    }

    /// Number of labeled intervals.
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// Whether there are no labels.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Iterates intervals of one kind.
    pub fn of_kind(&self, kind: EventKind) -> impl Iterator<Item = &LabeledInterval> {
        self.intervals.iter().filter(move |i| i.kind() == kind)
    }

    /// Number of intervals of one kind.
    pub fn count_of(&self, kind: EventKind) -> usize {
        self.of_kind(kind).count()
    }

    /// Total time covered by intervals of `kind` (intervals of the same
    /// kind are assumed disjoint, as produced by the generators).
    pub fn total_duration_of(&self, kind: EventKind) -> Micros {
        self.of_kind(kind)
            .fold(Micros::ZERO, |acc, i| acc + i.duration())
    }

    /// The kind active at time `t`, if any (first match in start order).
    pub fn kind_at(&self, t: Micros) -> Option<EventKind> {
        self.intervals
            .iter()
            .find(|i| i.contains(t))
            .map(|i| i.kind())
    }

    /// Intervals of `kind` overlapping `[start, end)`.
    pub fn overlapping(
        &self,
        kind: EventKind,
        start: Micros,
        end: Micros,
    ) -> impl Iterator<Item = &LabeledInterval> {
        self.intervals
            .iter()
            .filter(move |i| i.kind() == kind && i.overlaps(start, end))
    }

    /// Merges another ground truth into this one.
    pub fn merge(&mut self, other: &GroundTruth) {
        for i in &other.intervals {
            self.push(*i);
        }
    }
}

impl FromIterator<LabeledInterval> for GroundTruth {
    fn from_iter<T: IntoIterator<Item = LabeledInterval>>(iter: T) -> Self {
        let mut gt = GroundTruth::new();
        for i in iter {
            gt.push(i);
        }
        gt
    }
}

impl Extend<LabeledInterval> for GroundTruth {
    fn extend<T: IntoIterator<Item = LabeledInterval>>(&mut self, iter: T) {
        for i in iter {
            self.push(i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(kind: EventKind, start_s: u64, end_s: u64) -> LabeledInterval {
        LabeledInterval::new(kind, Micros::from_secs(start_s), Micros::from_secs(end_s)).unwrap()
    }

    #[test]
    fn kind_names_round_trip() {
        for k in EventKind::ALL {
            assert_eq!(EventKind::from_name(k.name()), Some(k));
        }
        assert_eq!(EventKind::from_name("bogus"), None);
        assert_eq!(EventKind::Headbutt.to_string(), "headbutt");
    }

    #[test]
    fn interval_rejects_empty() {
        assert!(LabeledInterval::new(EventKind::Idle, Micros(5), Micros(5)).is_err());
        assert!(LabeledInterval::new(EventKind::Idle, Micros(5), Micros(4)).is_err());
        let err = LabeledInterval::new(EventKind::Idle, Micros(5), Micros(4)).unwrap_err();
        assert!(err.to_string().contains("after"));
    }

    #[test]
    fn interval_geometry() {
        let i = iv(EventKind::Walking, 2, 5);
        assert_eq!(i.duration(), Micros::from_secs(3));
        assert!(i.contains(Micros::from_secs(2)));
        assert!(i.contains(Micros::from_millis(4_999)));
        assert!(!i.contains(Micros::from_secs(5)));
        assert_eq!(i.midpoint(), Micros::from_millis(3_500));
    }

    #[test]
    fn overlap_is_half_open() {
        let i = iv(EventKind::Walking, 2, 5);
        assert!(i.overlaps(Micros::from_secs(4), Micros::from_secs(6)));
        assert!(i.overlaps(Micros::from_secs(0), Micros::from_secs(3)));
        assert!(!i.overlaps(Micros::from_secs(5), Micros::from_secs(6)));
        assert!(!i.overlaps(Micros::from_secs(0), Micros::from_secs(2)));
    }

    #[test]
    fn push_keeps_sorted_order() {
        let mut gt = GroundTruth::new();
        gt.push(iv(EventKind::Walking, 10, 20));
        gt.push(iv(EventKind::Headbutt, 1, 2));
        gt.push(iv(EventKind::Idle, 5, 8));
        let starts: Vec<u64> = gt
            .intervals()
            .iter()
            .map(|i| i.start().as_micros() / 1_000_000)
            .collect();
        assert_eq!(starts, vec![1, 5, 10]);
        assert_eq!(gt.len(), 3);
        assert!(!gt.is_empty());
    }

    #[test]
    fn kind_queries() {
        let gt: GroundTruth = [
            iv(EventKind::Walking, 0, 10),
            iv(EventKind::Headbutt, 12, 13),
            iv(EventKind::Walking, 20, 25),
        ]
        .into_iter()
        .collect();
        assert_eq!(gt.count_of(EventKind::Walking), 2);
        assert_eq!(gt.count_of(EventKind::Headbutt), 1);
        assert_eq!(gt.count_of(EventKind::Siren), 0);
        assert_eq!(
            gt.total_duration_of(EventKind::Walking),
            Micros::from_secs(15)
        );
    }

    #[test]
    fn kind_at_finds_active_interval() {
        let gt: GroundTruth = [iv(EventKind::Music, 5, 10)].into_iter().collect();
        assert_eq!(gt.kind_at(Micros::from_secs(7)), Some(EventKind::Music));
        assert_eq!(gt.kind_at(Micros::from_secs(3)), None);
    }

    #[test]
    fn overlapping_filters_by_kind_and_range() {
        let gt: GroundTruth = [
            iv(EventKind::Siren, 0, 2),
            iv(EventKind::Siren, 10, 12),
            iv(EventKind::Music, 1, 3),
        ]
        .into_iter()
        .collect();
        let hits: Vec<_> = gt
            .overlapping(
                EventKind::Siren,
                Micros::from_secs(1),
                Micros::from_secs(11),
            )
            .collect();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn merge_combines_and_sorts() {
        let mut a: GroundTruth = [iv(EventKind::Idle, 5, 6)].into_iter().collect();
        let b: GroundTruth = [iv(EventKind::Idle, 1, 2)].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.intervals()[0].start(), Micros::from_secs(1));
    }

    #[test]
    fn extend_adds_intervals() {
        let mut gt = GroundTruth::new();
        gt.extend([iv(EventKind::Step, 1, 2), iv(EventKind::Step, 3, 4)]);
        assert_eq!(gt.count_of(EventKind::Step), 2);
    }
}
