//! Sensor channel identities.
//!
//! The paper's prototype attaches an accelerometer and a microphone to the
//! sensor hub (§3.4) and exposes per-axis accelerometer channels to the API
//! (`SidewinderSensorManager.ACCELEROMETER_X` etc., Fig. 2a). Channels are
//! the *sources* of processing branches in a wake-up condition.

/// A sensor data channel available on the hub.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SensorChannel {
    /// Accelerometer x axis (m/s²). In the robot mount, the walking
    /// oscillation dominates this axis.
    AccX,
    /// Accelerometer y axis (m/s²). Front–back relative to the robot; the
    /// headbutt dip and the sitting posture component appear here.
    AccY,
    /// Accelerometer z axis (m/s²). Up–down; carries gravity while the
    /// device is horizontal.
    AccZ,
    /// Microphone (normalized amplitude in [-1, 1]).
    Mic,
}

impl SensorChannel {
    /// Number of channels (the length of [`SensorChannel::ALL`]).
    pub const COUNT: usize = 4;

    /// All channels, in canonical order.
    pub const ALL: [SensorChannel; 4] = [
        SensorChannel::AccX,
        SensorChannel::AccY,
        SensorChannel::AccZ,
        SensorChannel::Mic,
    ];

    /// Dense index of this channel within [`SensorChannel::ALL`]; lets
    /// per-channel state live in a fixed array instead of a map.
    pub fn index(self) -> usize {
        match self {
            SensorChannel::AccX => 0,
            SensorChannel::AccY => 1,
            SensorChannel::AccZ => 2,
            SensorChannel::Mic => 3,
        }
    }

    /// The three accelerometer axes, in x/y/z order.
    pub const ACCEL: [SensorChannel; 3] = [
        SensorChannel::AccX,
        SensorChannel::AccY,
        SensorChannel::AccZ,
    ];

    /// The canonical name used in the intermediate language
    /// (`ACC_X`, `ACC_Y`, `ACC_Z`, `MIC`).
    pub fn ir_name(self) -> &'static str {
        match self {
            SensorChannel::AccX => "ACC_X",
            SensorChannel::AccY => "ACC_Y",
            SensorChannel::AccZ => "ACC_Z",
            SensorChannel::Mic => "MIC",
        }
    }

    /// Parses the intermediate-language name back to a channel.
    pub fn from_ir_name(name: &str) -> Option<SensorChannel> {
        SensorChannel::ALL.into_iter().find(|c| c.ir_name() == name)
    }

    /// The default sampling rate this reproduction uses for the channel:
    /// 50 Hz for accelerometer axes (typical for activity recognition),
    /// 8 kHz for the microphone (telephone-band audio).
    pub fn default_rate_hz(self) -> f64 {
        match self {
            SensorChannel::AccX | SensorChannel::AccY | SensorChannel::AccZ => 50.0,
            SensorChannel::Mic => 8_000.0,
        }
    }

    /// Whether this is an accelerometer axis.
    pub fn is_accelerometer(self) -> bool {
        matches!(
            self,
            SensorChannel::AccX | SensorChannel::AccY | SensorChannel::AccZ
        )
    }

    /// Approximate raw data rate in bytes/second, used by the UART link
    /// budget check (paper §3.4): 16-bit accelerometer samples, 8-bit
    /// companded (G.711-style) microphone samples. At these rates the
    /// debugging UART carries every prototype sensor, as the paper
    /// observes.
    pub fn bytes_per_second(self) -> f64 {
        let bytes_per_sample = if self.is_accelerometer() { 2.0 } else { 1.0 };
        bytes_per_sample * self.default_rate_hz()
    }

    /// The physical unit of samples on this channel.
    pub fn unit(self) -> &'static str {
        if self.is_accelerometer() {
            "m/s^2"
        } else {
            "normalized amplitude"
        }
    }
}

impl std::fmt::Display for SensorChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.ir_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ir_names_round_trip() {
        for c in SensorChannel::ALL {
            assert_eq!(SensorChannel::from_ir_name(c.ir_name()), Some(c));
        }
        assert_eq!(SensorChannel::from_ir_name("NOPE"), None);
        assert_eq!(SensorChannel::from_ir_name("acc_x"), None);
    }

    #[test]
    fn display_matches_ir_name() {
        assert_eq!(SensorChannel::AccX.to_string(), "ACC_X");
        assert_eq!(SensorChannel::Mic.to_string(), "MIC");
    }

    #[test]
    fn accel_set_is_consistent() {
        for c in SensorChannel::ACCEL {
            assert!(c.is_accelerometer());
        }
        assert!(!SensorChannel::Mic.is_accelerometer());
    }

    #[test]
    fn default_rates() {
        assert_eq!(SensorChannel::AccY.default_rate_hz(), 50.0);
        assert_eq!(SensorChannel::Mic.default_rate_hz(), 8_000.0);
    }

    #[test]
    fn serial_budget_fits_uart() {
        // The paper notes the debugging UART supports low-bit-rate sensors.
        // A conservative 115200-baud UART carries ~11 520 bytes/s.
        let total: f64 = SensorChannel::ALL
            .iter()
            .map(|c| c.bytes_per_second())
            .sum();
        assert!(total < 11_520.0 * 2.0, "total = {total}");
    }

    #[test]
    fn units_are_labeled() {
        assert_eq!(SensorChannel::AccZ.unit(), "m/s^2");
        assert_eq!(SensorChannel::Mic.unit(), "normalized amplitude");
    }
}
