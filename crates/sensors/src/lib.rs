//! Sensor data model for the Sidewinder reproduction.
//!
//! Everything downstream of trace collection — the hub runtime, the
//! applications, and the trace-driven simulator — consumes the types in
//! this crate:
//!
//! * [`time::Micros`] — integer-microsecond timestamps and durations, so the
//!   event-driven simulator is exact.
//! * [`channel::SensorChannel`] — the sensor channels the paper's prototype
//!   exposes (three accelerometer axes and a microphone).
//! * [`series::TimeSeries`] — a uniformly sampled signal on one channel.
//! * [`trace::SensorTrace`] — a multi-channel recording plus ground truth,
//!   the unit of evaluation in the paper's trace-driven methodology (§4).
//! * [`ground_truth::GroundTruth`] — labeled event intervals, standing in
//!   for the robot's action log and the audio mixing script.
//! * [`csv`] — plain-text persistence so traces can be inspected and reused.
//!
//! # Example
//!
//! ```
//! use sidewinder_sensors::channel::SensorChannel;
//! use sidewinder_sensors::ground_truth::{EventKind, GroundTruth, LabeledInterval};
//! use sidewinder_sensors::series::TimeSeries;
//! use sidewinder_sensors::time::Micros;
//! use sidewinder_sensors::trace::SensorTrace;
//!
//! let mut trace = SensorTrace::new("demo");
//! let accel = TimeSeries::from_samples(50.0, vec![0.0; 500])?; // 10 s at 50 Hz
//! trace.insert(SensorChannel::AccX, accel);
//! trace.ground_truth_mut().push(LabeledInterval::new(
//!     EventKind::Walking,
//!     Micros::from_secs_f64(2.0),
//!     Micros::from_secs_f64(5.0),
//! )?);
//! assert_eq!(trace.duration(), Micros::from_secs_f64(10.0));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod channel;
pub mod csv;
pub mod ground_truth;
pub mod series;
pub mod time;
pub mod trace;

pub use channel::SensorChannel;
pub use ground_truth::{EventKind, GroundTruth, LabeledInterval};
pub use series::TimeSeries;
pub use time::Micros;
pub use trace::SensorTrace;
