//! Property-based tests for the sensor data model.

use proptest::prelude::*;
use sidewinder_sensors::csv;
use sidewinder_sensors::ground_truth::{EventKind, GroundTruth, LabeledInterval};
use sidewinder_sensors::series::TimeSeries;
use sidewinder_sensors::time::Micros;
use sidewinder_sensors::trace::SensorTrace;
use sidewinder_sensors::SensorChannel;

fn arb_kind() -> impl Strategy<Value = EventKind> {
    (0usize..EventKind::ALL.len()).prop_map(|i| EventKind::ALL[i])
}

fn arb_interval() -> impl Strategy<Value = LabeledInterval> {
    (arb_kind(), 0u64..1_000_000, 1u64..1_000_000).prop_map(|(kind, start, len)| {
        LabeledInterval::new(kind, Micros(start), Micros(start + len)).unwrap()
    })
}

proptest! {
    #[test]
    fn ground_truth_stays_sorted(intervals in prop::collection::vec(arb_interval(), 0..50)) {
        let gt: GroundTruth = intervals.into_iter().collect();
        let starts: Vec<_> = gt.intervals().iter().map(|i| i.start()).collect();
        let mut sorted = starts.clone();
        sorted.sort();
        prop_assert_eq!(starts, sorted);
    }

    #[test]
    fn total_duration_is_sum_of_kind(intervals in prop::collection::vec(arb_interval(), 0..50)) {
        let gt: GroundTruth = intervals.clone().into_iter().collect();
        for kind in EventKind::ALL {
            let expected: u64 = intervals
                .iter()
                .filter(|i| i.kind() == kind)
                .map(|i| i.duration().as_micros())
                .sum();
            prop_assert_eq!(gt.total_duration_of(kind).as_micros(), expected);
        }
    }

    #[test]
    fn labels_round_trip_through_csv(intervals in prop::collection::vec(arb_interval(), 0..30)) {
        let gt: GroundTruth = intervals.into_iter().collect();
        let mut buf = Vec::new();
        csv::write_labels(&gt, &mut buf).unwrap();
        let back = csv::read_labels(buf.as_slice()).unwrap();
        prop_assert_eq!(back, gt);
    }

    #[test]
    fn samples_round_trip_through_csv(
        samples in prop::collection::vec(-1000.0f64..1000.0, 0..200),
    ) {
        let mut trace = SensorTrace::new("prop");
        trace.insert(
            SensorChannel::AccY,
            TimeSeries::from_samples(50.0, samples.clone()).unwrap(),
        );
        let mut buf = Vec::new();
        csv::write_samples(&trace, &mut buf).unwrap();
        let back = csv::read_samples("prop", buf.as_slice()).unwrap();
        if samples.is_empty() {
            prop_assert!(back.channel(SensorChannel::AccY).is_none());
        } else {
            prop_assert_eq!(
                back.channel(SensorChannel::AccY).unwrap().samples(),
                samples.as_slice()
            );
        }
    }

    #[test]
    fn slice_is_consistent_with_index_at(
        n in 1usize..500,
        start_ms in 0u64..12_000,
        len_ms in 0u64..12_000,
    ) {
        let series = TimeSeries::from_samples(50.0, (0..n).map(|i| i as f64).collect()).unwrap();
        let start = Micros::from_millis(start_ms);
        let end = Micros::from_millis(start_ms + len_ms);
        let slice = series.slice(start, end);
        // Every sample in the slice has a timestamp within [start, end).
        for &x in slice {
            let t = series.time_of(x as usize);
            prop_assert!(t >= start || t + Micros::from_millis(20) > start);
            prop_assert!(t < end);
        }
    }

    #[test]
    fn micros_add_sub_inverse(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let x = Micros(a);
        let y = Micros(b);
        prop_assert_eq!((x + y) - y, x);
        prop_assert_eq!((x + y).saturating_sub(y), x);
    }

    #[test]
    fn kind_at_respects_containment(intervals in prop::collection::vec(arb_interval(), 1..30), t in 0u64..2_000_000) {
        let gt: GroundTruth = intervals.into_iter().collect();
        let t = Micros(t);
        if let Some(kind) = gt.kind_at(t) {
            prop_assert!(gt.of_kind(kind).any(|i| i.contains(t)));
        } else {
            prop_assert!(!gt.intervals().iter().any(|i| i.contains(t)));
        }
    }
}
