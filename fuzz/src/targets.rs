//! The fuzz targets: each takes arbitrary bytes and panics on any
//! violated invariant, so the runner's `catch_unwind` is the oracle.

use crate::{fnv1a, SplitMix64};
use sidewinder_cert::{certify_program, emission_bound, CertTarget, Precision};
use sidewinder_dsp::complex::Complex;
use sidewinder_dsp::fft;
use sidewinder_hub::runtime::{ChannelRates, HubRuntime};
use sidewinder_hub::{compile_image, McuCore};
use sidewinder_ir::Program;
use sidewinder_mcu::fft as mcu_fft;
use sidewinder_mcu::{ArenaKind, HighWaterProbe, McuExecError};
use sidewinder_sensors::SensorChannel;

/// The six golden fixtures double as structured seeds: mutated wake
/// conditions for the totality target, program choices for the
/// interpreter differentials.
pub const FIXTURES: [&str; 6] = [
    include_str!("../../crates/ir/tests/fixtures/steps.swir"),
    include_str!("../../crates/ir/tests/fixtures/transitions.swir"),
    include_str!("../../crates/ir/tests/fixtures/headbutts.swir"),
    include_str!("../../crates/ir/tests/fixtures/sirens.swir"),
    include_str!("../../crates/ir/tests/fixtures/music.swir"),
    include_str!("../../crates/ir/tests/fixtures/phrase.swir"),
];

/// Samples each interpreter differential expands its input to — enough
/// to fill the fixtures' 2048-sample windows twice over.
const SAMPLE_BUDGET: usize = 4096;

/// Arena capacity covering every fixture (see `hub/tests/mcu_equivalence.rs`).
const ARENA: usize = 16_384;

/// Totality: the parser must accept or reject arbitrary bytes without
/// panicking, and everything downstream of a successful parse — the
/// validator, the linter, the host loader, the image compiler — must be
/// total too, returning typed errors at worst.
pub fn ir_totality(data: &[u8]) {
    let text = String::from_utf8_lossy(data);
    let Ok(program) = text.parse::<Program>() else {
        return;
    };
    let rates = ChannelRates::default();
    let _ = program.validate();
    let _ = sidewinder_lint::lint(&program, &rates);
    let _ = HubRuntime::load(&program, &rates);
    let _ = compile_image(&program, &rates);
}

/// Interprets the input as raw `f64` bit patterns — NaNs, infinities,
/// and subnormals included, since every differential pair must handle
/// them identically.
fn raw_floats(data: &[u8]) -> Vec<f64> {
    data.chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("chunk of 8")))
        .collect()
}

/// Differential FFT: the host's planned path (swap/twiddle tables via
/// `FftPlan`) must be bit-identical to the reference radix-2 kernel,
/// forward and inverse, on arbitrary bit patterns.
pub fn fft_differential(data: &[u8]) {
    let values = raw_floats(data);
    let n = values.len().next_power_of_two() / 2;
    if n == 0 {
        return;
    }
    let input: Vec<Complex> = values[..n].iter().map(|&x| Complex::from_real(x)).collect();

    let mut planned = input.clone();
    fft::fft_in_place(&mut planned).expect("power-of-two length");
    let mut reference = input.clone();
    mcu_fft::transform(&mut reference, false);
    assert_bits_equal(&planned, &reference, "forward fft");

    let mut planned_inv = planned.clone();
    fft::ifft_in_place(&mut planned_inv).expect("power-of-two length");
    let mut reference_inv = reference.clone();
    mcu_fft::transform(&mut reference_inv, true);
    mcu_fft::scale_inverse(&mut reference_inv);
    assert_bits_equal(&planned_inv, &reference_inv, "inverse fft");
}

fn assert_bits_equal(a: &[Complex], b: &[Complex], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length diverged");
    for (k, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert!(
            x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
            "{what}: bin {k} diverged: {x:?} vs {y:?}"
        );
    }
}

/// Expands the input bytes into a per-channel sample schedule: the raw
/// floats first (preserving adversarial bit patterns), then a
/// bytes-seeded PRNG stream up to the budget, so short inputs still
/// exercise the windowed pipelines.
fn sample_schedule(data: &[u8]) -> Vec<f64> {
    let mut samples = raw_floats(data);
    let mut rng = SplitMix64(fnv1a(data));
    while samples.len() < SAMPLE_BUDGET {
        // Mostly tame amplitudes so thresholds and windows see both
        // sides; every 16th value is a raw bit pattern.
        let x = if rng.below(16) == 0 {
            f64::from_bits(rng.next_u64())
        } else {
            (rng.next_u64() as f64 / u64::MAX as f64 - 0.5) * 24.0
        };
        samples.push(x);
    }
    samples
}

/// Picks the fixture program the input's first byte selects.
fn pick_program(data: &[u8]) -> Program {
    let idx = data.first().map_or(0, |&b| b as usize % FIXTURES.len());
    FIXTURES[idx].parse().expect("committed fixture parses")
}

/// Differential ingestion: one batched `push_samples` call must be
/// bit-identical — same wakes, same order, same result bits — to
/// pushing the same samples one at a time, on every channel the
/// program reads.
pub fn ingest_differential(data: &[u8]) {
    let program = pick_program(data);
    let samples = sample_schedule(data);
    let rates = ChannelRates::default();
    let mut batched = HubRuntime::load(&program, &rates).expect("fixture loads");
    let mut serial = HubRuntime::load(&program, &rates).expect("fixture loads");
    for channel in program.channels() {
        let batch_wakes: Vec<_> = batched
            .push_samples(channel, &samples)
            .expect("fixture executes")
            .to_vec();
        let mut serial_wakes = Vec::with_capacity(batch_wakes.len());
        for &x in &samples {
            serial_wakes.extend(serial.push_sample(channel, x).expect("fixture executes"));
        }
        assert_eq!(
            batch_wakes.len(),
            serial_wakes.len(),
            "wake count diverged on {channel:?}"
        );
        for (k, (b, s)) in batch_wakes.iter().zip(serial_wakes.iter()).enumerate() {
            assert!(
                b.seq == s.seq && b.value.to_bits() == s.value.to_bits(),
                "wake #{k} diverged on {channel:?}: {b:?} vs {s:?}"
            );
        }
    }
}

/// Differential interpreters: the `no_std` MCU core must reproduce the
/// host runtime's wake stream bit for bit on the same program and
/// sample schedule.
pub fn mcu_equivalence(data: &[u8]) {
    // The fixture-sized core is ~1 MiB, too big for a default 2 MiB
    // test-thread stack; run the body on a roomy thread, propagating
    // any panic so `catch_unwind` in the runner still sees it.
    std::thread::scope(|scope| {
        std::thread::Builder::new()
            .stack_size(32 << 20)
            .spawn_scoped(scope, || mcu_equivalence_body(data))
            .expect("spawn fuzz thread")
            .join()
    })
    .unwrap_or_else(|panic| std::panic::resume_unwind(panic));
}

/// Arena capacity for the certificate-soundness target: deliberately
/// tight (a 512-sample windowed pipeline's exact footprint) so mutated
/// programs land on both sides of the fit boundary — the committed
/// corpus seeds programs at exactly the cap (`at_cap.swir`, 1538
/// elements), one element over (`just_over.swir`, 1539), and a couple
/// under/over (`under_cap.swir` 1536, `over_cap.swir` 1540).
const CERT_CAP: usize = 1538;

/// Certificate soundness: `certify_program` must be total on arbitrary
/// parseable programs, must agree exactly with the loader about what
/// fits, and its bounds must dominate everything a real execution
/// measures — arena occupancy, staging high-water marks, and per-node
/// emission counts.
pub fn cert_soundness(data: &[u8]) {
    let text = String::from_utf8_lossy(data);
    let Ok(program) = text.parse::<Program>() else {
        return;
    };
    if program.validate().is_err() {
        return;
    }
    let rates = ChannelRates::default();
    let target = CertTarget {
        mcu: None,
        cap: CERT_CAP,
    };
    // Totality at both precisions: typed errors at worst.
    let cert = certify_program(&program, &rates, Precision::F64, &target);
    let cert32 = certify_program(&program, &rates, Precision::F32, &target);
    assert_eq!(
        cert.is_ok(),
        cert32.is_ok(),
        "precision changed certifiability"
    );
    let Ok(image) = compile_image(&program, &rates) else {
        assert!(cert.is_err(), "certified a program the compiler rejects");
        return;
    };
    let cert = cert.expect("compilable programs certify");

    // The loader and the certificate must agree exactly on fit.
    let mut core: McuCore<f64, CERT_CAP> = McuCore::new();
    match core.load(&image) {
        Ok(()) => assert!(
            cert.fits_cap,
            "load succeeded but the certificate claims overflow \
             (required {})",
            cert.required_capacity
        ),
        Err(McuExecError::ArenaOverflow { .. }) => {
            assert!(
                !cert.fits_cap,
                "load overflowed but the certificate claims required {} <= {}",
                cert.required_capacity, CERT_CAP
            );
            return;
        }
        Err(e) => panic!("load failed for a non-arena reason: {e:?}"),
    }

    // Exact arena accounting: carved == certified, element for element.
    let used = core.arena_used();
    for (kind, &u) in ArenaKind::ALL[..5].iter().zip(used.iter()) {
        assert_eq!(
            u,
            cert.arenas[kind.index()].elements,
            "{} carve diverged from the certificate",
            kind.name()
        );
    }

    // Execute a deterministic schedule under the high-water probe; every
    // measured mark must stay at or under its certified bound.
    let samples = sample_schedule(data);
    let mut probe = HighWaterProbe::new();
    let mut pushes = [0u64; sidewinder_mcu::image::MAX_CHANNELS];
    for channel in program.channels() {
        let ci = channel.index();
        if core
            .push_samples_probed(ci as u8, &samples, &mut |_| {}, &mut probe)
            .is_err()
        {
            return; // runtime fault (e.g. NaN guard); bounds are vacuous
        }
        pushes[ci] += samples.len() as u64;
    }
    let stage_sample = cert.arenas[ArenaKind::StageSample.index()].peak_elements;
    let stage_spectrum = cert.arenas[ArenaKind::StageSpectrum.index()].peak_elements;
    assert!(
        probe.stage_sample_peak <= stage_sample,
        "staged vector peak {} exceeds certified {stage_sample}",
        probe.stage_sample_peak
    );
    assert!(
        probe.stage_spectrum_peak <= stage_spectrum,
        "staged spectrum peak {} exceeds certified {stage_spectrum}",
        probe.stage_spectrum_peak
    );
    for (node, &measured) in probe.emissions.iter().enumerate().take(cert.nodes.len()) {
        let bound = emission_bound(&cert, node, &pushes);
        assert!(
            measured <= bound,
            "node {node} emitted {measured} > certified bound {bound}"
        );
    }
}

fn mcu_equivalence_body(data: &[u8]) {
    let program = pick_program(data);
    let samples = sample_schedule(data);
    let rates = ChannelRates::default();
    let mut hub = HubRuntime::load(&program, &rates).expect("fixture loads");
    let image = compile_image(&program, &rates).expect("fixture compiles");
    let mut core: McuCore<f64, ARENA> = McuCore::new();
    core.load(&image).expect("image fits the arena");
    let channels: Vec<SensorChannel> = program.channels();
    for (ci, &channel) in channels.iter().enumerate() {
        // Offset each channel into the schedule so multi-channel
        // programs do not see identical streams.
        let stream = &samples[ci.min(samples.len())..];
        let host_wakes: Vec<_> = hub
            .push_samples(channel, stream)
            .expect("fixture executes on the host")
            .to_vec();
        let mut core_wakes = Vec::with_capacity(host_wakes.len());
        core.push_samples(channel.index() as u8, stream, &mut |w| core_wakes.push(w))
            .expect("fixture executes on the core");
        assert_eq!(
            host_wakes.len(),
            core_wakes.len(),
            "wake count diverged on {channel:?}"
        );
        for (k, (h, c)) in host_wakes.iter().zip(core_wakes.iter()).enumerate() {
            assert!(
                h.seq == c.seq && h.value.to_bits() == c.value.to_bits(),
                "wake #{k} diverged on {channel:?}: {h:?} vs {c:?}"
            );
        }
    }
}
