//! Fixed-budget deterministic fuzz runner — the CI `fuzz-smoke` job.
//!
//! Runs every registered target (or one, with `--target`) for a fixed
//! iteration budget. Inputs are derived purely from `(seed, target,
//! iteration)` plus the committed corpus, so a failure on one machine
//! reproduces everywhere: rerun with the same seed and the printed
//! iteration, or feed the crash artifact back with `--replay`.
//!
//! ```text
//! fuzzsmoke [--target NAME] [--iters N] [--seed N]
//!           [--corpus DIR] [--artifacts DIR] [--replay FILE]
//! ```
//!
//! Exit code 0 when every iteration of every target returns cleanly;
//! 1 when any target panicked (the offending input is written under the
//! artifacts directory for upload).

use sidewinder_fuzz::{fnv1a, mutate, SplitMix64, TARGETS};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Options {
    target: Option<String>,
    iters: u64,
    seed: u64,
    corpus: PathBuf,
    artifacts: PathBuf,
    replay: Option<PathBuf>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        target: None,
        iters: 256,
        seed: 0x51DE_F0CC_5EED_0001,
        corpus: PathBuf::from("fuzz/corpora"),
        artifacts: PathBuf::from("fuzz/artifacts"),
        replay: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .ok_or_else(|| format!("{what} requires a value"))
        };
        match flag.as_str() {
            "--target" => opts.target = Some(value("--target")?),
            "--iters" => {
                opts.iters = value("--iters")?
                    .parse()
                    .map_err(|e| format!("--iters: {e}"))?;
            }
            "--seed" => {
                let v = value("--seed")?;
                opts.seed = match v.strip_prefix("0x") {
                    Some(hex) => {
                        u64::from_str_radix(hex, 16).map_err(|e| format!("--seed: {e}"))?
                    }
                    None => v.parse().map_err(|e| format!("--seed: {e}"))?,
                };
            }
            "--corpus" => opts.corpus = PathBuf::from(value("--corpus")?),
            "--artifacts" => opts.artifacts = PathBuf::from(value("--artifacts")?),
            "--replay" => opts.replay = Some(PathBuf::from(value("--replay")?)),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(opts)
}

/// Loads a target's corpus directory in filename order (determinism:
/// readdir order is filesystem-dependent, sorted order is not).
fn load_corpus(dir: &Path) -> Vec<Vec<u8>> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_file())
        .collect();
    paths.sort();
    paths.iter().filter_map(|p| std::fs::read(p).ok()).collect()
}

/// Runs one target for its budget; returns the failing iteration and
/// input on the first panic.
fn run_target(
    name: &str,
    target: fn(&[u8]),
    corpus: &[Vec<u8>],
    iters: u64,
    seed: u64,
) -> Result<(), (u64, Vec<u8>)> {
    // Corpus entries verbatim first — committed seeds must always pass.
    for (i, entry) in corpus.iter().enumerate() {
        let data = entry.clone();
        if catch_unwind(AssertUnwindSafe(|| target(&data))).is_err() {
            return Err((i as u64, data));
        }
    }
    for i in 0..iters {
        let mut rng = SplitMix64(seed ^ fnv1a(name.as_bytes()) ^ i.wrapping_mul(0x9E37_79B9));
        let base: &[u8] = if corpus.is_empty() {
            &[]
        } else {
            &corpus[rng.below(corpus.len())]
        };
        let data = mutate(base, corpus, &mut rng);
        if catch_unwind(AssertUnwindSafe(|| target(&data))).is_err() {
            return Err((i, data));
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("fuzzsmoke: {e}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(path) = &opts.replay {
        let data = match std::fs::read(path) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("fuzzsmoke: cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let name = opts.target.as_deref().unwrap_or_else(|| {
            eprintln!("fuzzsmoke: --replay requires --target");
            std::process::exit(2);
        });
        let Some(&(_, target)) = TARGETS.iter().find(|(n, _)| *n == name) else {
            eprintln!("fuzzsmoke: unknown target {name}");
            return ExitCode::FAILURE;
        };
        target(&data);
        println!("fuzzsmoke: {name} replayed {} cleanly", path.display());
        return ExitCode::SUCCESS;
    }

    let selected: Vec<_> = TARGETS
        .iter()
        .filter(|(name, _)| opts.target.as_deref().is_none_or(|t| t == *name))
        .collect();
    if selected.is_empty() {
        eprintln!(
            "fuzzsmoke: unknown target {:?}; known: {}",
            opts.target,
            TARGETS.map(|(n, _)| n).join(", ")
        );
        return ExitCode::FAILURE;
    }

    let mut failed = false;
    for &&(name, target) in &selected {
        let corpus = load_corpus(&opts.corpus.join(name));
        match run_target(name, target, &corpus, opts.iters, opts.seed) {
            Ok(()) => println!(
                "fuzzsmoke: {name}: OK ({} corpus + {} mutated inputs, seed {:#x})",
                corpus.len(),
                opts.iters,
                opts.seed
            ),
            Err((iter, data)) => {
                failed = true;
                let _ = std::fs::create_dir_all(&opts.artifacts);
                let artifact = opts.artifacts.join(format!("{name}-{iter}.bin"));
                match std::fs::write(&artifact, &data) {
                    Ok(()) => eprintln!(
                        "fuzzsmoke: {name}: FAILED at iteration {iter} (seed {:#x}); \
                         input written to {} — rerun with --target {name} --replay {}",
                        opts.seed,
                        artifact.display(),
                        artifact.display()
                    ),
                    Err(e) => eprintln!(
                        "fuzzsmoke: {name}: FAILED at iteration {iter} (seed {:#x}); \
                         could not write artifact: {e}",
                        opts.seed
                    ),
                }
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
