//! Deterministic differential fuzzing for the Sidewinder workspace.
//!
//! The classic `cargo-fuzz`/libFuzzer stack needs a nightly toolchain
//! and sanitizer runtimes, so this harness is a plain, dependency-free
//! fallback that CI can run on stable: every target is a function from
//! arbitrary bytes to either a clean return or a panic, and the
//! [`fuzzsmoke`](../src/bin/fuzzsmoke.rs) runner drives each one for a
//! fixed, seed-determined iteration budget — same seed, same corpus,
//! same inputs, on every machine.
//!
//! The targets are differential where it counts:
//!
//! * [`targets::ir_totality`] — the parser, validator, linter, and
//!   loader must be total on arbitrary bytes (no panics, only typed
//!   errors);
//! * [`targets::fft_differential`] — the host's planned FFT path must
//!   be bit-identical to the reference transform;
//! * [`targets::ingest_differential`] — batched sample ingestion must
//!   be bit-identical to pushing the same samples one at a time;
//! * [`targets::mcu_equivalence`] — the `no_std` MCU core must be
//!   bit-identical to the host interpreter on the same program and
//!   sample stream;
//! * [`targets::cert_soundness`] — the static resource certificate must
//!   agree with the loader about what fits and dominate every measured
//!   arena high-water mark and emission count.

pub mod targets;

/// SplitMix64: tiny, seedable, and identical everywhere — the only
/// randomness the harness uses, so a `(seed, iteration)` pair fully
/// determines every generated input.
#[derive(Debug, Clone)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n` (`0` when `n == 0`).
    pub fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            (self.next_u64() % n as u64) as usize
        }
    }
}

/// FNV-1a over a byte string; used to give each target its own seed
/// stream so adding a target never perturbs another's inputs.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Maximum generated input length. Long enough to fill the fixtures'
/// largest windows when a target expands bytes into sample streams.
pub const MAX_INPUT: usize = 4096;

/// Derives one fuzz input from a corpus entry: a deterministic stack of
/// byte flips, truncations, extensions, and splices driven by `rng`.
/// An empty corpus entry yields a from-scratch random input.
pub fn mutate(base: &[u8], corpus: &[Vec<u8>], rng: &mut SplitMix64) -> Vec<u8> {
    let mut data = base.to_vec();
    let rounds = 1 + rng.below(4);
    for _ in 0..rounds {
        match rng.below(5) {
            // Flip a handful of bytes.
            0 if !data.is_empty() => {
                for _ in 0..=rng.below(8) {
                    let i = rng.below(data.len());
                    data[i] ^= (rng.next_u64() & 0xFF) as u8;
                }
            }
            // Truncate.
            1 if !data.is_empty() => {
                data.truncate(rng.below(data.len()) + 1);
            }
            // Extend with random bytes.
            2 => {
                let extra = rng.below(64) + 1;
                for _ in 0..extra {
                    data.push((rng.next_u64() & 0xFF) as u8);
                }
            }
            // Splice a slice of another corpus entry.
            3 if !corpus.is_empty() => {
                let other = &corpus[rng.below(corpus.len())];
                if !other.is_empty() {
                    let start = rng.below(other.len());
                    let end = start + rng.below(other.len() - start) + 1;
                    let at = rng.below(data.len() + 1);
                    data.splice(at..at, other[start..end].iter().copied());
                }
            }
            // Overwrite from scratch.
            _ => {
                let len = rng.below(256) + 1;
                data = (0..len).map(|_| (rng.next_u64() & 0xFF) as u8).collect();
            }
        }
    }
    data.truncate(MAX_INPUT);
    data
}

/// A fuzz target: arbitrary bytes in, panic on any violated invariant.
pub type Target = fn(&[u8]);

/// The registered targets, in the order `fuzzsmoke` runs them.
pub const TARGETS: [(&str, Target); 5] = [
    ("ir_totality", targets::ir_totality),
    ("fft_differential", targets::fft_differential),
    ("ingest_differential", targets::ingest_differential),
    ("mcu_equivalence", targets::mcu_equivalence),
    ("cert_soundness", targets::cert_soundness),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64(42);
        let mut b = SplitMix64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn mutation_is_deterministic_and_bounded() {
        let corpus = vec![b"hello".to_vec(), vec![0u8; 300]];
        let x = mutate(&corpus[0], &corpus, &mut SplitMix64(7));
        let y = mutate(&corpus[0], &corpus, &mut SplitMix64(7));
        assert_eq!(x, y);
        for seed in 0..50 {
            let out = mutate(&corpus[1], &corpus, &mut SplitMix64(seed));
            assert!(out.len() <= MAX_INPUT);
        }
    }

    /// Every target survives a small deterministic budget — the same
    /// property the CI fuzz-smoke job checks at a larger budget.
    #[test]
    fn all_targets_survive_a_smoke_budget() {
        for (name, target) in TARGETS {
            let mut rng = SplitMix64(fnv1a(name.as_bytes()));
            for _ in 0..8 {
                let data = mutate(&[], &[], &mut rng);
                target(&data);
            }
        }
    }
}
