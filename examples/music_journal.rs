//! Concurrent audio applications sharing one hub: registers the music
//! journal and phrase detection conditions together, demonstrates the
//! paper's §7 pipeline-fusion extension, and journals the songs heard in
//! a synthetic café scene.
//!
//! Run with: `cargo run --release --example music_journal`

use sidewinder::apps::{MusicJournalApp, PhraseDetectionApp};
use sidewinder::core::fusion::{FusedPlan, FusedRuntime};
use sidewinder::hub::runtime::ChannelRates;
use sidewinder::sensors::{EventKind, Micros, SensorChannel};
use sidewinder::sim::Application;
use sidewinder::tracegen::{audio_trace, AudioEnvironment, AudioTraceConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = audio_trace(&AudioTraceConfig {
        duration: Micros::from_secs(300),
        environment: AudioEnvironment::CoffeeShop,
        seed: 99,
        ..AudioTraceConfig::default()
    });
    let gt = trace.ground_truth();
    println!(
        "Scene: {} — {} songs, {} speech segments ({} with the phrase)\n",
        trace.name(),
        gt.count_of(EventKind::Music),
        gt.count_of(EventKind::Speech),
        gt.count_of(EventKind::Phrase),
    );

    let music = MusicJournalApp::new();
    let phrase = PhraseDetectionApp::new();
    let music_program = music.wake_condition();
    let phrase_program = phrase.wake_condition();

    // Fuse the two conditions: they share their feature branches.
    let report = FusedPlan::report(&[&music_program, &phrase_program], &ChannelRates::default())?;
    println!(
        "Fusion (paper S7): {} nodes -> {} shared instances ({:.0}% node saving, {:.0}% compute saving)\n",
        report.unfused_nodes,
        report.fused_nodes,
        report.node_saving() * 100.0,
        report.compute_saving() * 100.0,
    );

    // Run both conditions on one fused hub over the trace.
    let plan = FusedPlan::fuse(&[&music_program, &phrase_program])?;
    let mut hub = FusedRuntime::load(&plan, &ChannelRates::default())?;
    let mic = trace.channel(SensorChannel::Mic).expect("audio trace");
    let mut music_wakes = 0usize;
    let mut phrase_wakes = 0usize;
    for &sample in mic.samples() {
        for (which, _) in hub.push_sample(SensorChannel::Mic, sample)? {
            match which {
                0 => music_wakes += 1,
                _ => phrase_wakes += 1,
            }
        }
    }
    println!("Hub wake-ups: music condition {music_wakes}, phrase condition {phrase_wakes}");

    // On each music wake the main CPU would query the Echoprint stand-in;
    // here we just run the classifier over the full trace for the journal.
    let entries = music.classify(&trace, Micros::ZERO, trace.duration());
    println!("\nMusic journal ({} entries):", entries.len());
    for t in &entries {
        println!("  song heard at {t}");
    }
    let phrases = phrase.classify(&trace, Micros::ZERO, trace.duration());
    println!("Phrase detections: {}", phrases.len());
    Ok(())
}
