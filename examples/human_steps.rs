//! Step counting on a synthetic human day (the paper's §5.5 experiment
//! in miniature), including the §7 self-tuning extension: tighten the
//! wake-up threshold from false-positive feedback on a calibration
//! trace.
//!
//! Run with: `cargo run --release --example human_steps`

use sidewinder::apps::autotune::tune_final_threshold;
use sidewinder::apps::StepsApp;
use sidewinder::sensors::{EventKind, Micros};
use sidewinder::sim::{simulate, Application, PhonePowerProfile, SimConfig, Strategy};
use sidewinder::tracegen::{human_trace, HumanTraceConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = human_trace(&HumanTraceConfig {
        duration: Micros::from_secs(900),
        walking_fraction: 0.25,
        misc_fraction: 0.3,
        seed: 5,
        subject: "commute",
        ..HumanTraceConfig::default()
    });
    let app = StepsApp::new();
    println!(
        "Human trace: {} — {:.0}s walking, {} labeled steps",
        trace.name(),
        trace
            .ground_truth()
            .total_duration_of(EventKind::Walking)
            .as_secs_f64(),
        trace.ground_truth().count_of(EventKind::Step),
    );
    let counted = app.count_steps(&trace, Micros::ZERO, trace.duration());
    println!("Steps counted by the always-awake classifier: {counted}\n");

    let run = |label: &str, strategy: &Strategy| -> Result<f64, Box<dyn std::error::Error>> {
        let r = simulate(
            &trace,
            &app,
            strategy,
            &PhonePowerProfile::NEXUS4,
            &SimConfig::default(),
        )?;
        println!(
            "  {label:<22} {:>6.1} mW, recall {:>5.1}%, {} wake-ups",
            r.average_power_mw,
            r.recall() * 100.0,
            r.wake_ups
        );
        Ok(r.average_power_mw)
    };

    println!("Step detector under each strategy:");
    run("always awake", &Strategy::AlwaysAwake)?;
    run("oracle", &Strategy::Oracle)?;
    let stock = app.wake_condition();
    let stock_mw = run(
        "sidewinder (stock)",
        &Strategy::HubWake {
            program: stock.clone(),
            hub_mw: app.wake_condition_hub_mw(),
            label: "Sw",
        },
    )?;

    // §7 extension: use wake-up feedback to tighten the final threshold
    // while preserving 100% recall on the calibration trace.
    let tuned = tune_final_threshold(
        &stock,
        &trace,
        &[EventKind::Walking],
        &[2.0, 2.3, 2.6, 2.9, 3.2],
        Micros::from_secs(2),
    );
    match tuned {
        Ok(result) => {
            println!(
                "\nAuto-tuning swept {} candidates; chose threshold {} ({} wake-ups on calibration)",
                result.sweep.len(),
                result.chosen.threshold,
                result.chosen.wake_ups
            );
            let tuned_mw = run(
                "sidewinder (tuned)",
                &Strategy::HubWake {
                    program: result.program,
                    hub_mw: app.wake_condition_hub_mw(),
                    label: "Sw+",
                },
            )?;
            println!(
                "\nTuning saved {:.1} mW over the stock condition.",
                stock_mw - tuned_mw
            );
        }
        Err(e) => println!("\nAuto-tuning declined: {e}"),
    }
    Ok(())
}
