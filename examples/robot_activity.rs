//! The paper's robot experiment in miniature: generate a scripted AIBO
//! run, then compare all three accelerometer applications under the full
//! configuration sweep (a one-run slice of Fig. 5).
//!
//! Run with: `cargo run --release --example robot_activity`

use sidewinder::apps::{predefined, HeadbuttsApp, StepsApp, TransitionsApp};
use sidewinder::sensors::{EventKind, Micros};
use sidewinder::sim::report::savings_fraction;
use sidewinder::sim::{simulate, Application, PhonePowerProfile, SimConfig, Strategy};
use sidewinder::tracegen::{robot_run, RobotRunConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = robot_run(&RobotRunConfig {
        duration: Micros::from_secs(600),
        idle_fraction: 0.5,
        rate_hz: 50.0,
        seed: 42,
    });
    let gt = trace.ground_truth();
    println!(
        "Robot run: {} — {:.0}s walking, {} transitions, {} headbutts\n",
        trace.name(),
        gt.total_duration_of(EventKind::Walking).as_secs_f64(),
        gt.count_of(EventKind::SitToStand) + gt.count_of(EventKind::StandToSit),
        gt.count_of(EventKind::Headbutt),
    );

    let steps = StepsApp::new();
    let transitions = TransitionsApp::new();
    let headbutts = HeadbuttsApp::new();
    let apps: [&dyn Application; 3] = [&steps, &transitions, &headbutts];

    for app in apps {
        println!("== {} ==", app.name());
        let strategies = [
            Strategy::Oracle,
            Strategy::AlwaysAwake,
            Strategy::DutyCycle {
                sleep: Micros::from_secs(10),
            },
            Strategy::Batching {
                interval: Micros::from_secs(10),
                hub_mw: 3.6,
            },
            Strategy::HubWake {
                program: predefined::significant_motion(),
                hub_mw: predefined::hub_mw(),
                label: "PA",
            },
            Strategy::HubWake {
                program: app.wake_condition(),
                hub_mw: app.wake_condition_hub_mw(),
                label: "Sw",
            },
        ];
        let mut oracle_mw = f64::NAN;
        let mut aa_mw = f64::NAN;
        for strategy in strategies {
            let r = simulate(
                &trace,
                app,
                &strategy,
                &PhonePowerProfile::NEXUS4,
                &SimConfig::default(),
            )?;
            match r.strategy.as_str() {
                "Oracle" => oracle_mw = r.average_power_mw,
                "AA" => aa_mw = r.average_power_mw,
                _ => {}
            }
            let extra = if r.strategy == "Sw" {
                format!(
                    "  <- {:.1}% of possible savings",
                    savings_fraction(r.average_power_mw, aa_mw, oracle_mw) * 100.0
                )
            } else {
                String::new()
            };
            println!(
                "  {:<8} {:>7.1} mW  recall {:>5.1}%  precision {:>5.1}%{extra}",
                r.strategy,
                r.average_power_mw,
                r.recall() * 100.0,
                r.precision() * 100.0,
            );
        }
        println!();
    }
    Ok(())
}
