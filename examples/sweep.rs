//! The evaluation sweep on the parallel batch runner.
//!
//! Builds the Fig. 5-style grid — three accelerometer applications ×
//! ten sensing strategies × three robot traces — runs it once serially
//! (the reference path) and then on the [`BatchRunner`] worker pool at
//! increasing worker counts, verifying that every parallel run returns
//! bit-identical results in the same deterministic order.
//!
//! ```sh
//! cargo run --release --example sweep
//! SIDEWINDER_SWEEP_WORKERS=4 cargo run --release --example sweep
//! ```
//!
//! [`BatchRunner`]: sidewinder::sim::BatchRunner

use sidewinder::apps::{predefined, HeadbuttsApp, StepsApp, TransitionsApp};
use sidewinder::sensors::Micros;
use sidewinder::sim::{Application, BatchRunner, SharedApp, Strategy, SweepSpec};
use sidewinder::tracegen::{robot_group_runs, ActivityGroup};
use std::sync::Arc;
use std::time::Instant;

/// The Fig. 5 strategy sweep for one application.
fn strategies(app: &dyn Application) -> Vec<Strategy> {
    let mut out = vec![Strategy::Oracle, Strategy::AlwaysAwake];
    for sleep_s in [2u64, 5, 10, 20, 30] {
        out.push(Strategy::DutyCycle {
            sleep: Micros::from_secs(sleep_s),
        });
    }
    out.push(Strategy::Batching {
        interval: Micros::from_secs(10),
        hub_mw: 3.6,
    });
    out.push(Strategy::HubWake {
        program: predefined::significant_motion(),
        hub_mw: predefined::hub_mw(),
        label: "PA",
    });
    out.push(Strategy::HubWake {
        program: app.wake_condition(),
        hub_mw: app.wake_condition_hub_mw(),
        label: "Sw",
    });
    out
}

fn main() {
    let apps: Vec<SharedApp> = vec![
        Arc::new(HeadbuttsApp::new()),
        Arc::new(TransitionsApp::new()),
        Arc::new(StepsApp::new()),
    ];
    let spec = SweepSpec::new()
        .shared_apps(apps)
        .traces(robot_group_runs(
            ActivityGroup::Group1,
            3,
            Micros::from_secs(600),
            101,
        ))
        .strategies_per_app(strategies);

    let jobs = spec.jobs();
    println!(
        "sweep: 3 apps x 10 strategies x 3 traces = {} cells",
        jobs.len()
    );

    // Serial reference: every cell on the calling thread, in spec order.
    let started = Instant::now();
    let serial: Vec<_> = jobs.iter().map(|job| job.run()).collect();
    let serial_elapsed = started.elapsed();
    println!("serial reference: {serial_elapsed:?}");

    let available = BatchRunner::new().worker_count();
    let mut worker_counts = vec![2, 4, available];
    worker_counts.sort_unstable();
    worker_counts.dedup();

    for workers in worker_counts {
        let report = BatchRunner::new().workers(workers).run(&spec);
        assert_eq!(report.len(), serial.len());
        for (s, p) in serial.iter().zip(report.outcomes()) {
            assert_eq!(
                s.result.as_ref().ok(),
                p.result.as_ref().ok(),
                "parallel result diverged at cell {} ({} / {} / {})",
                p.index,
                p.trace,
                p.app,
                p.strategy,
            );
        }
        let speedup = serial_elapsed.as_secs_f64() / report.elapsed.as_secs_f64();
        println!(
            "{} workers: {:?} ({speedup:.2}x vs serial, results identical)",
            report.workers, report.elapsed,
        );
    }
}
