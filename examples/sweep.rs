//! The evaluation sweep on the parallel batch runner.
//!
//! Builds the Fig. 5-style grid — three accelerometer applications ×
//! ten sensing strategies × three robot traces — runs it once serially
//! (the reference path) and then on the [`BatchRunner`] worker pool at
//! increasing worker counts, verifying that every parallel run returns
//! bit-identical results in the same deterministic order.
//!
//! A second pass replays the Sidewinder cells under a seeded
//! [`FaultSchedule`] (corrupted and dropped frames, periodic hub
//! watchdog resets) with the hardened `Sw+` strategy alongside, and
//! checks the fault runs are just as bit-identical across worker
//! counts before printing the accumulated fault counters.
//!
//! ```sh
//! cargo run --release --example sweep
//! SIDEWINDER_SWEEP_WORKERS=4 cargo run --release --example sweep
//! ```
//!
//! [`BatchRunner`]: sidewinder::sim::BatchRunner

use sidewinder::apps::{predefined, HeadbuttsApp, StepsApp, TransitionsApp};
use sidewinder::sensors::Micros;
use sidewinder::sim::report::fault_totals;
use sidewinder::sim::{Application, BatchRunner, FaultSchedule, SharedApp, Strategy, SweepSpec};
use sidewinder::tracegen::{robot_group_runs, ActivityGroup};
use std::sync::Arc;
use std::time::Instant;

/// The Fig. 5 strategy sweep for one application.
fn strategies(app: &dyn Application) -> Vec<Strategy> {
    let mut out = vec![Strategy::Oracle, Strategy::AlwaysAwake];
    for sleep_s in [2u64, 5, 10, 20, 30] {
        out.push(Strategy::DutyCycle {
            sleep: Micros::from_secs(sleep_s),
        });
    }
    out.push(Strategy::Batching {
        interval: Micros::from_secs(10),
        hub_mw: 3.6,
    });
    out.push(Strategy::HubWake {
        program: predefined::significant_motion(),
        hub_mw: predefined::hub_mw(),
        label: "PA",
    });
    out.push(Strategy::HubWake {
        program: app.wake_condition(),
        hub_mw: app.wake_condition_hub_mw(),
        label: "Sw",
    });
    out
}

fn main() {
    let apps: Vec<SharedApp> = vec![
        Arc::new(HeadbuttsApp::new()),
        Arc::new(TransitionsApp::new()),
        Arc::new(StepsApp::new()),
    ];
    let spec = SweepSpec::new()
        .shared_apps(apps)
        .traces(robot_group_runs(
            ActivityGroup::Group1,
            3,
            Micros::from_secs(600),
            101,
        ))
        .strategies_per_app(strategies);

    let jobs = spec.jobs();
    println!(
        "sweep: 3 apps x 10 strategies x 3 traces = {} cells",
        jobs.len()
    );

    // Serial reference: every cell on the calling thread, in spec order.
    let started = Instant::now();
    let serial: Vec<_> = jobs.iter().map(|job| job.run()).collect();
    let serial_elapsed = started.elapsed();
    println!("serial reference: {serial_elapsed:?}");

    // A failed cell must fail the sweep — the parallel comparison below
    // only checks that workers agree with the serial run, and two runs
    // can agree on an error.
    let mut failed_cells = 0usize;
    for outcome in &serial {
        if let Err(e) = &outcome.result {
            eprintln!(
                "cell {} ({} / {} / {}) failed: {e}",
                outcome.index, outcome.trace, outcome.app, outcome.strategy
            );
            failed_cells += 1;
        }
    }

    let available = BatchRunner::new().worker_count();
    let mut worker_counts = vec![2, 4, available];
    worker_counts.sort_unstable();
    worker_counts.dedup();

    for workers in worker_counts {
        let report = BatchRunner::new().workers(workers).run(&spec);
        assert_eq!(report.len(), serial.len());
        for (s, p) in serial.iter().zip(report.outcomes()) {
            assert_eq!(
                s.result.as_ref().ok(),
                p.result.as_ref().ok(),
                "parallel result diverged at cell {} ({} / {} / {})",
                p.index,
                p.trace,
                p.app,
                p.strategy,
            );
        }
        let speedup = serial_elapsed.as_secs_f64() / report.elapsed.as_secs_f64();
        println!(
            "{} workers: {:?} ({speedup:.2}x vs serial, results identical)",
            report.workers, report.elapsed,
        );
    }

    // Second pass: the same applications and traces under a seeded fault
    // schedule — a flaky serial link plus a hub watchdog reset every
    // ~90 s — comparing plain Sidewinder against the hardened `Sw+`
    // fallback. The seed makes the whole run reproducible, so worker
    // counts must not change a single bit of the results.
    let faults = FaultSchedule::seeded(0xF0_07)
        .with_frame_corruption(0.15)
        .with_frame_drops(0.05)
        .with_hub_resets_every(Micros::from_secs(90));
    let fault_spec = SweepSpec::new()
        .shared_apps(vec![
            Arc::new(HeadbuttsApp::new()) as SharedApp,
            Arc::new(TransitionsApp::new()),
            Arc::new(StepsApp::new()),
        ])
        .traces(robot_group_runs(
            ActivityGroup::Group1,
            3,
            Micros::from_secs(600),
            101,
        ))
        .strategies_per_app(|app| {
            vec![
                Strategy::HubWake {
                    program: app.wake_condition(),
                    hub_mw: app.wake_condition_hub_mw(),
                    label: "Sw",
                },
                Strategy::HubWakeDegraded {
                    program: app.wake_condition(),
                    hub_mw: app.wake_condition_hub_mw(),
                    label: "Sw+",
                    fallback_sleep: Micros::from_secs(10),
                },
            ]
        })
        .faults(faults);
    println!(
        "\nfault sweep: {} cells under a seeded schedule",
        fault_spec.jobs().len()
    );
    let reference = BatchRunner::new().workers(1).run(&fault_spec).expect_all();
    for workers in [2, 4] {
        let report = BatchRunner::new().workers(workers).run(&fault_spec);
        assert_eq!(
            report.expect_all(),
            reference,
            "{workers}-worker fault sweep diverged from the single-worker run"
        );
        println!("{workers} workers: fault results identical");
    }
    let totals = fault_totals(&reference);
    println!(
        "fault totals: {} frames sent, {} corrupted, {} dropped, {} retried, {} lost",
        totals.frames_sent,
        totals.frames_corrupted,
        totals.frames_dropped,
        totals.frames_retried,
        totals.frames_lost,
    );
    println!(
        "              {} hub resets, {} re-downloads, {:.1} s degraded, {:.1} s recovering",
        totals.hub_resets,
        totals.redownloads,
        totals.degraded_s(),
        totals.recovery_time.as_secs_f64(),
    );

    if failed_cells > 0 {
        eprintln!("sweep: {failed_cells} cell(s) failed");
        std::process::exit(1);
    }
}
