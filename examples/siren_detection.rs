//! Siren detection end to end: synthesize an urban audio scene, run the
//! paper's siren detector under several sensing strategies, and compare
//! power and recall.
//!
//! Run with: `cargo run --release --example siren_detection`

use sidewinder::apps::SirenDetectorApp;
use sidewinder::sensors::Micros;
use sidewinder::sim::{simulate, Application, PhonePowerProfile, SimConfig, Strategy};
use sidewinder::tracegen::{audio_trace, AudioEnvironment, AudioTraceConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 5-minute outdoor scene with music (5%), speech (5%), and
    // sirens (2%) mixed in, as in the paper's trace collection (§4.1).
    let trace = audio_trace(&AudioTraceConfig {
        duration: Micros::from_secs(300),
        environment: AudioEnvironment::Outdoors,
        seed: 7,
        ..AudioTraceConfig::default()
    });
    let app = SirenDetectorApp::new();
    println!(
        "Trace: {} ({} sirens in ground truth)",
        trace.name(),
        trace
            .ground_truth()
            .count_of(sidewinder::sensors::EventKind::Siren)
    );

    // The wake-up condition and the MCU it needs (the FFT forces the
    // LM4F120, reproducing the paper's Table 2 footnote).
    let program = app.wake_condition();
    println!("\nWake-up condition:\n{program}");
    println!("Hub power: {} mW\n", app.wake_condition_hub_mw());

    let strategies = [
        Strategy::AlwaysAwake,
        Strategy::DutyCycle {
            sleep: Micros::from_secs(10),
        },
        Strategy::HubWake {
            program,
            hub_mw: app.wake_condition_hub_mw(),
            label: "Sw",
        },
        Strategy::Oracle,
    ];

    println!(
        "{:<10} {:>10} {:>8} {:>10}",
        "config", "power mW", "recall", "wake-ups"
    );
    for strategy in strategies {
        let result = simulate(
            &trace,
            &app,
            &strategy,
            &PhonePowerProfile::NEXUS4,
            &SimConfig::default(),
        )?;
        println!(
            "{:<10} {:>10.1} {:>7.0}% {:>10}",
            result.strategy,
            result.average_power_mw,
            result.recall() * 100.0,
            result.wake_ups
        );
    }
    Ok(())
}
