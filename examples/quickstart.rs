//! Quickstart: the paper's Fig. 2 significant-motion wake-up condition.
//!
//! Builds the pipeline with the developer API, shows the intermediate
//! language the sensor manager generates, registers it with the manager,
//! and feeds synthetic accelerometer samples: resting (gravity only),
//! then vigorous shaking.
//!
//! Run with: `cargo run --example quickstart`

use sidewinder::core::algorithm::{MinThreshold, MovingAverage, VectorMagnitude};
use sidewinder::core::{
    ProcessingBranch, ProcessingPipeline, SensorEvent, SidewinderSensorManager,
};
use sidewinder::sensors::SensorChannel;
use std::cell::Cell;
use std::rc::Rc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Fig. 2a: three accelerometer branches, each smoothed, joined by a
    // vector magnitude and gated by a minimum threshold of 15 m/s^2.
    let mut pipeline = ProcessingPipeline::new();
    let mut branches = [
        ProcessingBranch::new(SensorChannel::AccX),
        ProcessingBranch::new(SensorChannel::AccY),
        ProcessingBranch::new(SensorChannel::AccZ),
    ];
    for branch in &mut branches {
        branch.add(MovingAverage::new(10));
    }
    pipeline.add_branches(branches);
    pipeline.add(VectorMagnitude::new());
    pipeline.add(MinThreshold::new(15.0));

    // Fig. 2b: the conceptual representation of the condition.
    let program = pipeline.compile()?;
    println!("Conceptual representation (Fig. 2b):");
    println!("{}", sidewinder::ir::diagram::render(&program));

    // Fig. 2c: the intermediate code the sensor manager generates.
    println!("Intermediate representation (Fig. 2c):\n{program}");

    // Push to the sensor manager: validate, size onto an MCU, load.
    let mut manager = SidewinderSensorManager::new();
    let wakes = Rc::new(Cell::new(0u32));
    let counter = wakes.clone();
    let id = manager.push(&pipeline, move |event: &SensorEvent| {
        counter.set(counter.get() + 1);
        if counter.get() <= 3 {
            println!(
                "  wake-up #{}: |a| = {:.2} m/s^2",
                counter.get(),
                event.value
            );
        }
    })?;
    println!(
        "Condition {} sized onto the {} ({} mW always-on)\n",
        id,
        manager.mcu(id).expect("registered").name,
        manager.hub_power_mw()
    );

    // One second of rest: gravity on z only. No wake-ups.
    println!("Feeding 1 s of rest...");
    for _ in 0..50 {
        manager.on_sample(SensorChannel::AccX, 0.0)?;
        manager.on_sample(SensorChannel::AccY, 0.0)?;
        manager.on_sample(SensorChannel::AccZ, 9.81)?;
    }
    println!("  wake-ups so far: {}", wakes.get());
    assert_eq!(wakes.get(), 0);

    // One second of vigorous shaking: all axes at 12 m/s^2.
    println!("Feeding 1 s of vigorous shaking...");
    for _ in 0..50 {
        for channel in SensorChannel::ACCEL {
            manager.on_sample(channel, 12.0)?;
        }
    }
    println!("  total wake-ups: {}", wakes.get());
    assert!(wakes.get() > 0, "shaking must wake the main processor");
    Ok(())
}
